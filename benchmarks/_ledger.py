"""Shared helper: append benchmark artifacts to the unified perf ledger.

Each benchmark keeps writing its legacy ``BENCH_*.json`` artifact (CI and
humans read those), and additionally appends the same numbers as a
ledger entry to ``PERF_LEDGER.json`` so ``repro bench check`` can gate on
the trajectory. The metric extraction reuses the exact mappings the
one-time migration uses (:mod:`repro.obs.ledger`), so migrated history
and freshly appended entries chain into one comparable series.
"""

from __future__ import annotations

import subprocess
import time
from pathlib import Path
from typing import Any, Optional

from repro.obs import ledger as _ledger

REPO_ROOT = Path(__file__).resolve().parent.parent

#: series name -> extractor producing {metric: {value, unit, direction}}
_EXTRACTORS = {
    "engine": _ledger._engine_metrics,
    "campaign": _ledger._campaign_metrics,
    "tiers": _ledger._tiers_metrics,
}


def _commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def record_bench(
    series: str,
    doc: dict[str, Any],
    samples: int = 1,
    meta: Optional[dict[str, Any]] = None,
) -> None:
    """Append one ledger entry extracted from a legacy-shaped bench doc."""
    metrics = _EXTRACTORS[series](doc)
    if not metrics:
        return
    ledger = _ledger.PerfLedger(REPO_ROOT / _ledger.LEDGER_FILENAME)
    ledger.append(
        _ledger.make_entry(
            series,
            metrics,
            timestamp=time.time(),
            commit=_commit(),
            samples=samples,
            meta=meta,
        )
    )


def record_metrics(
    series: str,
    metrics: dict[str, dict[str, Any]],
    samples: int = 1,
    meta: Optional[dict[str, Any]] = None,
) -> None:
    """Append one ledger entry from already-shaped metrics."""
    ledger = _ledger.PerfLedger(REPO_ROOT / _ledger.LEDGER_FILENAME)
    ledger.append(
        _ledger.make_entry(
            series,
            metrics,
            timestamp=time.time(),
            commit=_commit(),
            samples=samples,
            meta=meta,
        )
    )
