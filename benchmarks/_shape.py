"""Shape assertions shared by the table benchmarks.

"Shape" is the reproduction criterion from DESIGN.md: we do not chase the
paper's absolute seconds (our substrate is a simulator, not the Argonne
SP), but who wins, in which direction, and by roughly what factor must
match.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult

__all__ = [
    "mean_error",
    "assert_coupling_beats_summation",
    "assert_summation_overestimates",
    "assert_errors_within",
]


def mean_error(result: ExperimentResult, predictor: str) -> float:
    """Average percent relative error of one predictor row."""
    errors = result.measured_errors[predictor]
    return sum(errors) / len(errors)


def assert_coupling_beats_summation(
    result: ExperimentResult, factor: float = 2.0
) -> None:
    """Every coupling row must beat Summation on average by >= factor."""
    summation = mean_error(result, "Summation")
    for name in result.measured_errors:
        if name == "Summation":
            continue
        coupling = mean_error(result, name)
        assert coupling * factor <= summation, (
            f"{name} ({coupling:.2f} %) does not beat Summation "
            f"({summation:.2f} %) by {factor}x in {result.experiment_id}"
        )


def assert_summation_overestimates(result: ExperimentResult) -> None:
    """Constructive coupling ⇒ actual < summation at every proc count."""
    for column in result.table.columns[1:]:
        actual_value = result.table.cell("Actual", column)
        summation_value, _err = result.table.cell("Summation", column)
        assert summation_value > actual_value, (
            f"summation does not overestimate at {column} in "
            f"{result.experiment_id}"
        )


def assert_errors_within(
    result: ExperimentResult, predictor: str, limit: float
) -> None:
    """Every per-column error of ``predictor`` must stay under ``limit`` %."""
    for err in result.measured_errors[predictor]:
        assert err <= limit, (
            f"{predictor} error {err:.2f} % exceeds {limit} % in "
            f"{result.experiment_id}"
        )
