"""Shared state for the table-regeneration benchmarks.

The benchmarks are the repository's experiment harness: each one
regenerates a table of the paper (via :mod:`repro.experiments`), asserts
its *shape* criteria (who wins, in which direction, by roughly what
factor), and records the rendered table so ``pytest benchmarks/
--benchmark-only`` output doubles as the reproduction log.

A session-scoped pipeline shares measurements between tables exactly the
way the paper reuses one experimental campaign (e.g. Tables 3a and 3b come
from the same runs).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig

#: Measurement protocol used by every table benchmark.
BENCH_MEASUREMENT = MeasurementConfig(repetitions=6, warmup=2, seed=0)

_rendered: list[str] = []


@pytest.fixture(scope="session")
def pipeline() -> ExperimentPipeline:
    """One measurement campaign shared by every table."""
    return ExperimentPipeline(
        ExperimentSettings(measurement=BENCH_MEASUREMENT)
    )


def record(result) -> None:
    """Stash a rendered table + comparison for the session summary."""
    _rendered.append(result.table.render() + "\n" + result.comparison())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every regenerated table after the benchmark summary."""
    if not _rendered:
        return
    terminalreporter.section("regenerated paper tables")
    for block in _rendered:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
