"""Ablation: which machine mechanism produces which coupling component.

DESIGN.md maps constructive coupling to cache adjacency reuse and the
destructive component to network contention + noise. Switching each off
must remove its component.
"""

import pytest

from repro.core import ControlFlow
from repro.instrument import ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


def couplings_on(machine, name="BT", cls="S", procs=4):
    bench = make_benchmark(name, cls, procs)
    flow = ControlFlow(bench.loop_kernel_names)
    runner = ChainRunner(
        bench, machine, MeasurementConfig(repetitions=4, warmup=2)
    )
    isolated = {
        k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
    }
    return {
        w: runner.measure(w).mean / sum(isolated[k] for k in w)
        for w in flow.windows(2)
    }


def test_cache_off_removes_constructive_coupling(benchmark):
    """With a cache so large everything always hits (and no flush effect
    difference), adjacency reuse disappears and couplings rise toward 1."""
    base = ibm_sp_argonne()
    flat_proc = base.processor.__class__(
        clock_hz=base.processor.clock_hz,
        flops_per_cycle=base.processor.flops_per_cycle,
        efficiency=base.processor.efficiency,
        cache_levels=base.processor.cache_levels,
        # Memory barely slower than L2: nothing to reuse.
        memory_byte_time=base.processor.cache_levels[-1].byte_time * 1.01,
        write_factor=1.0,
    )
    flat = base.with_(processor=flat_proc, noise_cv=0.0, noise_floor=0.0)

    def run():
        return couplings_on(base), couplings_on(flat)

    with_cache, without = benchmark.pedantic(run, rounds=1, iterations=1)
    pair = ("X_SOLVE", "Y_SOLVE")
    assert with_cache[pair] < without[pair]
    assert without[pair] == pytest.approx(1.0, abs=0.06)


def test_contention_adds_destructive_component(benchmark):
    """Boosting contention must push comm-heavy pair couplings upward."""
    base = ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)
    hot_net = base.network.__class__(
        **{**base.network.__dict__, "contention_coeff": 1.0}
    )
    hot = base.with_(network=hot_net)

    def run():
        return couplings_on(base), couplings_on(hot)

    calm, contended = benchmark.pedantic(run, rounds=1, iterations=1)
    pair = ("ADD", "COPY_FACES")  # COPY_FACES is the message-heavy kernel
    assert contended[pair] > calm[pair]
