"""Ablation: the measurement-context choice DESIGN.md calls out.

The coupling signal depends on what state the measured chain sees between
timed iterations. This ablation regenerates the BT class W pair couplings
under the three protocols and checks the documented behaviour:

* flush isolated + self-warming chains (default): strong constructive
  couplings, summation overestimates — the paper's regime;
* symmetric replay on both: couplings collapse to ~1 (no signal);
* self-warming on both: couplings ~1 too (isolated loops are as warm as
  chains when the working set fits cache).
"""

import pytest

from repro.core import ControlFlow
from repro.instrument import ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


def pair_couplings(isolated_context, chain_context):
    bench = make_benchmark("BT", "W", 4)
    flow = ControlFlow(bench.loop_kernel_names)
    runner = ChainRunner(
        bench,
        ibm_sp_argonne(),
        MeasurementConfig(
            repetitions=4,
            warmup=2,
            isolated_context=isolated_context,
            chain_context=chain_context,
        ),
    )
    isolated = {
        k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
    }
    out = {}
    for window in flow.windows(2):
        chain = runner.measure(window).mean
        out[window] = chain / sum(isolated[k] for k in window)
    return out


@pytest.mark.parametrize(
    "iso,chain,expect_signal",
    [
        ("flush", "none", True),
        ("replay", "replay", False),
        ("none", "none", False),
    ],
)
def test_context_ablation(benchmark, iso, chain, expect_signal):
    couplings = benchmark.pedantic(
        lambda: pair_couplings(iso, chain), rounds=1, iterations=1
    )
    solve_pair = couplings[("X_SOLVE", "Y_SOLVE")]
    if expect_signal:
        assert solve_pair < 0.92, couplings
    else:
        assert solve_pair == pytest.approx(1.0, abs=0.08), couplings
