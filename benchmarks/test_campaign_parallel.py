"""Wall-clock acceptance benchmarks for the parallel campaign executor.

Three runs of the same campaign — serial, cold cache with ``--jobs 4``,
and warm cache — must produce bit-identical predictions (REP001) while
the warm run amortises every simulation into memo lookups.  The measured
wall-clock numbers are written to ``BENCH_campaign.json`` at the repo
root so CI artifacts double as the speedup record.

The cold-cache parallel speedup needs real cores: on a single-core host
the worker pool can only add spawn overhead, so the ``>= 2x`` assertion
is gated on ``os.cpu_count()`` and the host's core count is recorded in
the artifact instead of being papered over.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks._ledger import record_bench
from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.simmachine import _backend

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Same protocol as the table benchmarks: the memo must pay for real runs.
CAMPAIGN_MEASUREMENT = MeasurementConfig(repetitions=6, warmup=2, seed=0)

CLASSES = ["S", "W"]
PROCS = [4, 9]
CHAINS = [2, 3]
JOBS = 4


def _campaign(memo=None, jobs=1):
    pipeline = ExperimentPipeline(
        ExperimentSettings(measurement=CAMPAIGN_MEASUREMENT),
        memo=memo,
        jobs=jobs,
    )
    start = time.perf_counter()
    results = [
        result
        for problem_class in CLASSES
        for result in pipeline.sweep(
            "BT", problem_class, PROCS, chain_lengths=CHAINS
        )
    ]
    return pipeline, results, time.perf_counter() - start


def _assert_identical(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert a.actual == b.actual
        assert a.summation == b.summation
        for length in CHAINS:
            assert a.coupling_prediction(length) == b.coupling_prediction(
                length
            )
        assert a.inputs == b.inputs


def test_parallel_campaign_speedup(tmp_path):
    cache = tmp_path / "memo"
    cpu_count = os.cpu_count() or 1

    _, serial, serial_s = _campaign()
    _, cold, cold_s = _campaign(memo=cache, jobs=JOBS)
    warm_pipeline, warm, warm_s = _campaign(memo=cache, jobs=JOBS)

    # REP001 pays off: all three runs are bit-identical.
    _assert_identical(serial, cold)
    _assert_identical(cold, warm)

    # The warm run resolved every simulation from the memo.
    memo_stats = warm_pipeline.memo.stats()
    assert memo_stats["misses"] == 0
    assert memo_stats["stores"] == 0
    assert memo_stats["hits"] > 0

    cold_speedup = serial_s / cold_s
    warm_speedup = serial_s / warm_s

    record = {
        "benchmark": "BT",
        "classes": CLASSES,
        "procs": PROCS,
        "chain_lengths": CHAINS,
        "cells": len(CLASSES) * len(PROCS),
        "jobs": JOBS,
        "cpu_count": cpu_count,
        "engine_backend": _backend.BACKEND_NAME,
        "serial_seconds": round(serial_s, 4),
        "parallel_cold_seconds": round(cold_s, 4),
        "parallel_warm_seconds": round(warm_s, 4),
        "cold_speedup": round(cold_speedup, 3),
        "warm_speedup": round(warm_speedup, 3),
        "warm_memo_stats": memo_stats,
        "note": (
            "cold_speedup is only meaningful with >= 2 cores; the "
            ">= 2x assertion is skipped below 4 cores and the host "
            "core count is recorded here instead"
        ),
    }
    (REPO_ROOT / "BENCH_campaign.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    record_bench("campaign", record, meta={"cpu_count": cpu_count})

    # Warm-cache speedup is hardware-independent: lookups beat simulation.
    assert warm_speedup >= 10.0, record
    # Cold-cache speedup needs cores for the pool to spread work across.
    if cpu_count >= 4:
        assert cold_speedup >= 2.0, record
