"""Extension: cross-validated chain-length selection (paper §3 open question)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_ext_best_chain(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_best_chain", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Held-out errors of the selected length stay small for every code.
    for row in result.table.rows:
        assert row[3] < 6.0, row
