"""Extension: fitted Eq. 3 composition models."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_ext_composition(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_composition", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    for row in result.table.rows:
        assert row[1].startswith("T = T_pre + ")
