"""Extension: relative performance of two systems (paper §1 motivation)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_ext_cross_machine(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_cross_machine", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Every per-machine prediction accurate, and the ranking correct.
    for row in result.table.rows:
        assert row[4] < 5.0, row  # error %
    assert all("ranking correct" in obs for obs in result.observations)
    # Couplings are memory-subsystem properties: the big-L2 SP shows
    # stronger constructive coupling than the small-L2 cluster.
    assert any("on the SP" in obs for obs in result.observations)
