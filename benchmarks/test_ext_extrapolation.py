"""Extension: zero-measurement extrapolation (Prophesy workflow)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_ext_extrapolation(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_extrapolation", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Targets are predicted with no measurements at all at the target
    # processor count; single-digit errors are the bar.
    for row in result.table.rows:
        assert row[5] < 12.0, row
