"""Extension: coupling over cache misses (paper §2 metric generality)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_ext_miss_coupling(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_miss_coupling", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    for row in result.table.rows:
        _, time_c, miss_c = row
        assert time_c < 1.0 and miss_c < 1.0
        # Misses are the shared resource itself: the miss coupling is the
        # stronger signal.
        assert miss_c < time_c
