"""Microbenchmarks of the simulation substrate itself.

These are true pytest-benchmark timing runs (multiple rounds) of the
engine's hot paths; they guard the event-throughput budget the experiment
harness depends on.
"""

from repro.npb import make_benchmark
from repro.simmachine import Machine, ibm_sp_argonne
from repro.simmpi import attach_world


def _ring_program(ctx):
    right = (ctx.rank + 1) % ctx.comm.size
    left = (ctx.rank - 1) % ctx.comm.size
    for _ in range(200):
        yield from ctx.comm.sendrecv(right, 40, send_tag=1, source=left)


def test_engine_message_throughput(benchmark):
    def run():
        machine = Machine(ibm_sp_argonne(), 8, seed=0)
        attach_world(machine)
        machine.run(_ring_program)
        return machine.sim.events_processed

    events = benchmark(run)
    # 200 ring exchanges on 8 ranks: ~3 events per message end.
    assert events > 4000


def test_collective_allreduce_cost(benchmark):
    def run():
        machine = Machine(ibm_sp_argonne(), 16, seed=0)
        attach_world(machine)

        def program(ctx):
            for _ in range(50):
                yield from ctx.comm.allreduce(1.0, 8)

        return machine.run(program)

    elapsed = benchmark(run)
    assert elapsed > 0


def test_bt_iteration_simulation_speed(benchmark):
    bench = make_benchmark("BT", "W", 9)

    def run():
        machine = Machine(ibm_sp_argonne(), 9, seed=0)
        attach_world(machine)

        def program(ctx):
            for _ in range(3):
                for kernel in bench.loop_kernel_names:
                    yield from bench.kernel(kernel)(ctx)

        return machine.run(program)

    assert benchmark(run) > 0


def test_lu_wavefront_simulation_speed(benchmark):
    bench = make_benchmark("LU", "W", 8)

    def run():
        machine = Machine(ibm_sp_argonne(), 8, seed=0)
        attach_world(machine)

        def program(ctx):
            yield from bench.kernel("SSOR_LT")(ctx)
            yield from bench.kernel("SSOR_UT")(ctx)

        return machine.run(program)

    assert benchmark(run) > 0
