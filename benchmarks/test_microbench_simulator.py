"""Microbenchmarks of the simulation substrate itself.

These are true pytest-benchmark timing runs (multiple rounds) of the
engine's hot paths; they guard the event-throughput budget the experiment
harness depends on.
"""

import importlib.util
import json
import time
from pathlib import Path

from benchmarks._ledger import record_bench, record_metrics
from repro.npb import make_benchmark
from repro.simmachine import Machine, Simulator, ibm_sp_argonne
from repro.simmachine import engine as _pure_engine
from repro.simmpi import attach_world

REPO_ROOT = Path(__file__).resolve().parent.parent


def _baseline_simulator_cls():
    """Load the vendored pre-optimization engine's Simulator."""
    path = Path(__file__).with_name("_engine_baseline.py")
    spec = importlib.util.spec_from_file_location(
        "repro_bench_engine_baseline", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.Simulator


def _compiled_simulator_cls():
    """The C extension's Simulator, or None in pure-only environments."""
    if importlib.util.find_spec("repro.simmachine._cengine") is None:
        return None
    from repro.simmachine import _cengine

    return _cengine.Simulator


def _timeout_heavy_events(simulator_cls=Simulator, n_procs=20,
                          n_timeouts=5000):
    """Compute-kernel-shaped load: processes that only yield timeouts."""
    sim = simulator_cls()

    def proc(i):
        for j in range(n_timeouts):
            yield sim.timeout(0.001 * ((i + j) % 7 + 1))

    for i in range(n_procs):
        sim.process(proc(i), name=f"p{i}")
    sim.run()
    return sim.events_processed


def _message_like_events(simulator_cls=Simulator, n_pairs=50, rounds=400):
    """Message-matching-shaped load: triggered events plus zero timeouts."""
    sim = simulator_cls()

    def proc(i):
        for j in range(rounds):
            event = sim.event()
            event.trigger_at(j, 1e-5)
            yield event
            yield sim.timeout(1e-6)

    for i in range(n_pairs):
        sim.process(proc(i), name=f"p{i}")
    sim.run()
    return sim.events_processed


def _ring_program(ctx):
    right = (ctx.rank + 1) % ctx.comm.size
    left = (ctx.rank - 1) % ctx.comm.size
    for _ in range(200):
        yield from ctx.comm.sendrecv(right, 40, send_tag=1, source=left)


def test_engine_message_throughput(benchmark):
    def run():
        machine = Machine(ibm_sp_argonne(), 8, seed=0)
        attach_world(machine)
        machine.run(_ring_program)
        return machine.sim.events_processed

    events = benchmark(run)
    # 200 ring exchanges on 8 ranks: ~3 events per message end.
    assert events > 4000


def test_engine_timeout_throughput(benchmark):
    events = benchmark(_timeout_heavy_events)
    # 20 processes x 5000 timeouts each, plus per-process bookkeeping.
    assert events >= 100_000


def test_engine_bench_artifact():
    """Record the engine ladder's ops/sec in ``BENCH_engine.json``.

    Interleaved best-of-five A/B/C across the vendored pre-optimization
    engine (``_engine_baseline.py``), the current pure-Python engine, and
    — when built — the compiled extension: each round times the same load
    on every side back to back, so host-speed drift and CPU throttling
    hit all sides equally and the recorded speedups are trustworthy even
    on noisy CI runners.

    ``current`` stays pinned to the *pure* engine so the ``engine``
    ledger series remains one comparable trajectory across the compiled
    tier landing; the compiled side gets its own keys and its own
    ``engine_compiled`` series.
    """
    baseline_cls = _baseline_simulator_cls()
    compiled_cls = _compiled_simulator_cls()
    sides = [("baseline", baseline_cls), ("current", _pure_engine.Simulator)]
    if compiled_cls is not None:
        sides.append(("compiled", compiled_cls))
    loads = {
        "timeout_heavy": _timeout_heavy_events,
        "message_like": _message_like_events,
    }
    best = {
        name: {side: 0.0 for side, _ in sides} for name in loads
    }
    for _ in range(5):
        for name, load in loads.items():
            for side, cls in sides:
                start = time.perf_counter()
                events = load(cls)
                rate = events / (time.perf_counter() - start)
                best[name][side] = max(best[name][side], rate)

    record = {
        "baseline_events_per_sec": {
            name: round(best[name]["baseline"], 0) for name in loads
        },
        "current_events_per_sec": {
            name: round(best[name]["current"], 0) for name in loads
        },
        "speedup": {
            name: round(best[name]["current"] / best[name]["baseline"], 3)
            for name in loads
        },
    }
    if compiled_cls is not None:
        record["compiled_events_per_sec"] = {
            name: round(best[name]["compiled"], 0) for name in loads
        }
        record["compiled_speedup_vs_pure"] = {
            name: round(best[name]["compiled"] / best[name]["current"], 3)
            for name in loads
        }
    (REPO_ROOT / "BENCH_engine.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    record_bench("engine", record, samples=5)
    if compiled_cls is not None:
        record_metrics(
            "engine_compiled",
            {
                **{
                    f"{name}.events_per_sec": {
                        "value": record["compiled_events_per_sec"][name],
                        "unit": "events/s",
                        "direction": "higher",
                    }
                    for name in loads
                },
                **{
                    f"{name}.speedup_vs_pure": {
                        "value": record["compiled_speedup_vs_pure"][name],
                        "unit": "x",
                        "direction": "higher",
                    }
                    for name in loads
                },
            },
            samples=5,
        )
    # Both loads must stay comfortably ahead of the old engine; the
    # timeout-heavy path is the one the pure-Python optimization targeted.
    assert record["speedup"]["timeout_heavy"] >= 1.15, record
    assert record["speedup"]["message_like"] >= 1.15, record
    # The compiled tier's contract: at least 2x the pure engine on both
    # workload shapes (interleaved measurement, so the ratio is robust).
    if compiled_cls is not None:
        assert record["compiled_speedup_vs_pure"]["timeout_heavy"] >= 2.0, record
        assert record["compiled_speedup_vs_pure"]["message_like"] >= 2.0, record


def test_collective_allreduce_cost(benchmark):
    def run():
        machine = Machine(ibm_sp_argonne(), 16, seed=0)
        attach_world(machine)

        def program(ctx):
            for _ in range(50):
                yield from ctx.comm.allreduce(1.0, 8)

        return machine.run(program)

    elapsed = benchmark(run)
    assert elapsed > 0


def test_bt_iteration_simulation_speed(benchmark):
    bench = make_benchmark("BT", "W", 9)

    def run():
        machine = Machine(ibm_sp_argonne(), 9, seed=0)
        attach_world(machine)

        def program(ctx):
            for _ in range(3):
                for kernel in bench.loop_kernel_names:
                    yield from bench.kernel(kernel)(ctx)

        return machine.run(program)

    assert benchmark(run) > 0


def test_lu_wavefront_simulation_speed(benchmark):
    bench = make_benchmark("LU", "W", 8)

    def run():
        machine = Machine(ibm_sp_argonne(), 8, seed=0)
        attach_world(machine)

        def program(ctx):
            yield from bench.kernel("SSOR_LT")(ctx)
            yield from bench.kernel("SSOR_UT")(ctx)

        return machine.run(program)

    assert benchmark(run) > 0
