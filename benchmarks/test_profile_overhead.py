"""Overhead guarantees for the sampling profiler (:mod:`repro.obs.profile`).

Two promises, each asserted directly:

1. **Disabled path is a pointer check.** When no profiler is installed,
   the only cost this subsystem adds to the hot path is one module-global
   ``is None`` check per span open/close (and per :func:`repro.obs.tag`).
   The microbenchmark bounds that check at <5 % of a minimal span's own
   lifecycle cost — the span path is the tightest loop the hooks live on.

2. **Enabled overhead is measured, not guessed.** A real campaign cell is
   timed with the profiler off and on (thread backend, default interval);
   the relative slowdown is recorded to ``BENCH_profile.json`` — written
   directly in the perf-ledger entry schema — and appended to
   ``PERF_LEDGER.json`` as the ``profile`` series so ``repro bench
   check`` gates on its trajectory.
"""

from __future__ import annotations

import json
import time

from benchmarks._ledger import REPO_ROOT, _commit, record_metrics
from repro import obs
from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.obs import ledger as ledger_mod
from repro.obs import profile

PROFILE_MEASUREMENT = MeasurementConfig(repetitions=3, warmup=1, seed=0)

#: Per-trial span count for the guard microbenchmark.
SPAN_ROUNDS = 20_000
TRIALS = 5


def _best_of(fn, trials=TRIALS):
    """Min-of-trials wall clock: rejects scheduler noise, keeps the floor."""
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _workload():
    pipeline = ExperimentPipeline(
        ExperimentSettings(measurement=PROFILE_MEASUREMENT)
    )
    return list(pipeline.sweep("BT", "S", [4], chain_lengths=[2]))


def test_disabled_guard_under_5_percent():
    """The idle-profiler hook costs <5 % of a minimal span's lifecycle.

    ``profile.active()`` is the exact check the span enter/exit hooks
    perform (a module-global load and an ``is None`` test). Two of those
    ride on every span; their combined floor must stay under 5 % of what
    the span itself costs.
    """
    assert profile.active() is None  # the disabled path is what we time

    def _spans():
        for _ in range(SPAN_ROUNDS):
            with obs.span("bench.guard"):
                pass

    def _checks():
        for _ in range(SPAN_ROUNDS):
            profile.active()
            profile.active()

    def _empty():
        for _ in range(SPAN_ROUNDS):
            pass

    span_seconds = _best_of(_spans)
    # Subtract the loop scaffolding so both sides measure only the body.
    check_seconds = _best_of(_checks) - _best_of(_empty)
    ratio = max(check_seconds, 0.0) / span_seconds
    print(
        f"\nspan: {span_seconds / SPAN_ROUNDS * 1e9:.0f} ns, guard pair: "
        f"{max(check_seconds, 0.0) / SPAN_ROUNDS * 1e9:.0f} ns "
        f"-> {100 * ratio:.2f}% of span cost"
    )
    assert ratio < 0.05


def test_profile_overhead_recorded():
    """Time a real cell off/on and persist the overhead to the ledger."""
    assert profile.active() is None
    off_seconds = _best_of(_workload, trials=3)

    profiler = obs.SamplingProfiler(backend="thread").start()
    try:
        on_seconds = _best_of(_workload, trials=3)
    finally:
        data = profiler.stop()

    overhead = on_seconds / off_seconds - 1.0
    samples = sum(data.samples.values())
    print(
        f"\nprofiler off: {off_seconds:.3f}s, on: {on_seconds:.3f}s -> "
        f"{100 * overhead:+.1f}% overhead, {samples} samples"
    )
    # The sampler actually saw the workload, and didn't distort it: the
    # thread backend at the default interval must stay well under 2x.
    assert samples > 0
    assert overhead < 1.0

    metrics = {
        "overhead_frac": {
            "value": round(max(overhead, 0.0), 4),
            "unit": "frac",
            "direction": ledger_mod.LOWER,
        },
        "workload_seconds": {
            "value": round(off_seconds, 4),
            "unit": "s",
            "direction": ledger_mod.LOWER,
        },
        "samples_per_sec": {
            "value": round(samples / max(on_seconds, 1e-9), 1),
            "unit": "samples/s",
            "direction": ledger_mod.HIGHER,
        },
    }
    entry = ledger_mod.make_entry(
        "profile",
        metrics,
        timestamp=time.time(),
        commit=_commit(),
        samples=3,
        meta={"backend": "thread", "interval": data.interval},
    )
    (REPO_ROOT / "BENCH_profile.json").write_text(
        json.dumps(entry, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    record_metrics(
        "profile",
        metrics,
        samples=3,
        meta={"backend": "thread", "interval": data.interval},
    )
