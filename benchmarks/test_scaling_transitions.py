"""Scaling experiment: finite coupling transitions (paper §4.1.4 / §6)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_scaling_transitions(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("scaling", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # The headline claim: the number of major coupling transitions along a
    # monotone sweep is finite — bounded by the memory subsystem (at most
    # one regime change per cache level).
    for row in result.table.rows:
        assert row[5] == "True", row
