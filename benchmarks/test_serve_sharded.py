"""Serving throughput: single-process server vs. the sharded tier.

Drives the same warm-path workload — four distinct cells, prewarmed,
cycled from one client connection — through

* the single-process :func:`~repro.service.serve_socket` server, and
* ``--shards 2`` (a real :class:`~repro.service.ProcessShardManager`
  process group behind the asyncio frontend),

and records sustained req/s plus p99 latency for both into
``BENCH_serve.json`` (perf-ledger entry schema) and the ``serve`` series
of ``PERF_LEDGER.json``, so ``repro bench check`` gates the sharded
tier's overhead trajectory.

On a single-core CI runner the sharded tier *loses* the head-to-head —
an extra network hop plus frontend scheduling on the same core — so the
assertions bound sanity (everything answers, latency stays sub-second),
not a speedup. The ledger is what watches the trend.
"""

from __future__ import annotations

import json
import threading
import time

from benchmarks._ledger import REPO_ROOT, _commit, record_metrics
from repro.instrument import MeasurementConfig
from repro.obs import ledger as ledger_mod
from repro.service import (
    LineClient,
    PredictionService,
    ProcessShardManager,
    ShardedServer,
    make_shard_configs,
    serve_socket,
)

MEASUREMENT = MeasurementConfig(repetitions=2, warmup=1, seed=0)

#: The warm-path workload: four distinct cells, cycled.
CELLS = [
    {"benchmark": "BT", "problem_class": "S", "nprocs": 4, "chain_length": 2},
    {"benchmark": "BT", "problem_class": "S", "nprocs": 4, "chain_length": 3},
    {"benchmark": "BT", "problem_class": "S", "nprocs": 1, "chain_length": 2},
    {"benchmark": "SP", "problem_class": "S", "nprocs": 4, "chain_length": 2},
]
REQUESTS = 400


def _drive(host, port) -> dict[str, float]:
    """Prewarm, then measure sustained req/s and latency quantiles."""
    with LineClient(host, port) as client:
        for cell in CELLS:
            response = client.predict(cell)
            assert response["ok"], response
        latencies = []
        started = time.perf_counter()
        for i in range(REQUESTS):
            t0 = time.perf_counter()
            response = client.predict(CELLS[i % len(CELLS)])
            latencies.append(time.perf_counter() - t0)
            assert response["ok"], response
        elapsed = time.perf_counter() - started
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return {
        "rps": REQUESTS / elapsed,
        "p50_ms": 1e3 * latencies[len(latencies) // 2],
        "p99_ms": 1e3 * p99,
    }


def _measure_single() -> dict[str, float]:
    service = PredictionService(measurement=MEASUREMENT, max_workers=2)
    ready = threading.Event()
    bound: list = []
    control: list = []
    thread = threading.Thread(
        target=serve_socket,
        args=(service,),
        kwargs={
            "host": "127.0.0.1",
            "port": 0,
            "ready": ready,
            "bound": bound,
            "control": control,
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(30.0)
    try:
        return _drive(*bound[0])
    finally:
        control[0].shutdown()
        control[0].server_close()
        thread.join(10.0)
        service.close()


def _measure_sharded() -> dict[str, float]:
    configs = make_shard_configs(2, measurement=MEASUREMENT, max_workers=2)
    with ProcessShardManager(configs) as manager:
        server = ShardedServer(manager)
        host, port = server.start()
        try:
            return _drive(host, port)
        finally:
            server.stop()


def test_sharded_serving_throughput_ledger():
    single = _measure_single()
    sharded = _measure_sharded()

    # sanity floor, not a horse race: a warm request must stay cheap on
    # both paths even on a one-core runner
    assert single["rps"] > 20, single
    assert sharded["rps"] > 20, sharded
    assert single["p99_ms"] < 1000, single
    assert sharded["p99_ms"] < 1000, sharded

    metrics = {
        "single_rps": {
            "value": round(single["rps"], 1),
            "unit": "req/s",
            "direction": ledger_mod.HIGHER,
        },
        "sharded_rps": {
            "value": round(sharded["rps"], 1),
            "unit": "req/s",
            "direction": ledger_mod.HIGHER,
        },
        "single_p99_ms": {
            "value": round(single["p99_ms"], 3),
            "unit": "ms",
            "direction": ledger_mod.LOWER,
        },
        "sharded_p99_ms": {
            "value": round(sharded["p99_ms"], 3),
            "unit": "ms",
            "direction": ledger_mod.LOWER,
        },
    }
    meta = {
        "requests": REQUESTS,
        "cells": len(CELLS),
        "shards": 2,
        "single_p50_ms": round(single["p50_ms"], 3),
        "sharded_p50_ms": round(sharded["p50_ms"], 3),
    }
    entry = ledger_mod.make_entry(
        "serve",
        metrics,
        timestamp=time.time(),
        commit=_commit(),
        samples=REQUESTS,
        meta=meta,
    )
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps(entry, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    record_metrics("serve", metrics, samples=REQUESTS, meta=meta)
