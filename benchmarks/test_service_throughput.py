"""Throughput of the prediction service vs. cold one-shot pipelines.

The serving subsystem exists so that a repeated workload — the same few
(benchmark, class, nprocs) cells asked for over and over — does not pay
for a fresh measurement campaign per question.  This benchmark drives a
100-request workload cycling over four distinct configurations through

* a single warm :class:`~repro.service.PredictionService` (batched,
  cached, single-flight), and
* 100 cold one-shots, each building a fresh pipeline with the same
  measurement protocol,

and asserts the service answers at least 10x faster, backed by the
service's own metrics (cache hit ratio, batch sizes).
"""

from __future__ import annotations

import time

import pytest

from repro import quick_prediction
from repro.experiments import ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.service import PredictRequest, PredictionService

MEASUREMENT = MeasurementConfig(repetitions=2, warmup=1, seed=0)

#: Four distinct questions, cycled 25 times = 100 requests. Two share a
#: measurement cell (chain lengths 2 and 3 of BT/S/4) so batching has
#: something to coalesce even on the cold pass.
DISTINCT = [
    PredictRequest("BT", "S", 4, chain_length=2),
    PredictRequest("BT", "S", 4, chain_length=3),
    PredictRequest("BT", "S", 1, chain_length=2),
    PredictRequest("BT", "S", 9, chain_length=2),
]
CYCLES = 25
TOTAL = CYCLES * len(DISTINCT)


def _cold_one_shot(request: PredictRequest) -> float:
    """A fresh pipeline per request — no shared state whatsoever."""
    report = quick_prediction(
        request.benchmark,
        request.problem_class,
        request.nprocs,
        request.chain_length,
        settings=ExperimentSettings(measurement=MEASUREMENT),
    )
    return report.actual


def test_warm_service_beats_cold_one_shots_10x():
    # Cold baseline: every request rebuilds the world.
    t0 = time.perf_counter()
    cold_actuals = [
        _cold_one_shot(DISTINCT[i % len(DISTINCT)]) for i in range(TOTAL)
    ]
    cold_seconds = time.perf_counter() - t0

    # Warm service: one process-lifetime service, bursts of requests.
    with PredictionService(
        measurement=MEASUREMENT, max_workers=2, batch_window=0.005
    ) as service:
        t0 = time.perf_counter()
        warm_reports = []
        for _ in range(CYCLES):
            warm_reports.extend(service.predict_many(DISTINCT, timeout=120))
        warm_seconds = time.perf_counter() - t0
        stats = service.stats()

    assert len(warm_reports) == TOTAL
    # Same answers as the cold pipelines (same measurement protocol).
    for i, report in enumerate(warm_reports):
        assert report.actual == pytest.approx(cold_actuals[i])

    speedup = cold_seconds / warm_seconds
    print(
        f"\ncold: {cold_seconds:.2f}s for {TOTAL} one-shots, "
        f"warm: {warm_seconds:.3f}s via service -> {speedup:.0f}x, "
        f"hit ratio {stats['cache_hit_ratio']:.2f}"
    )
    assert speedup >= 10.0

    # The metrics must corroborate *why* it was fast.
    assert stats["requests"] == TOTAL
    # Only the first cycle can miss; everything after is served from L1.
    assert stats["cache_hit_ratio"] >= 0.9
    assert stats["l1_hits"] >= TOTAL - len(DISTINCT)
    # Batching actually grouped the distinct cold requests: the two
    # chain lengths of BT/S/4 share one measurement plan.
    assert stats["batches"] >= 1
    assert stats["batch_size"]["max"] >= 2.0
    assert stats["simulations"] > 0  # the cold pass did real work


def test_observability_overhead_under_10_percent():
    """Registry + spans cost <10 % on the warm-service hot path.

    Drives the same warm workload (the L1-cache hit path — the hottest
    the service gets) with the obs substrate enabled and disabled, and
    bounds the relative slowdown. Tracing/export is off in both passes;
    this measures exactly the always-on instrumentation: span timing,
    the span_seconds histogram, and the service counters.
    """
    from repro import obs

    requests = DISTINCT
    rounds = 50

    def _drive(service: PredictionService) -> float:
        # Warm every cell first so the timed loop is pure cache hits.
        service.predict_many(requests, timeout=120)
        best = float("inf")
        for _ in range(5):  # min-of-trials rejects scheduler noise
            t0 = time.perf_counter()
            for _ in range(rounds):
                for request in requests:
                    service.predict(request, timeout=120)
            best = min(best, time.perf_counter() - t0)
        return best

    with PredictionService(
        measurement=MEASUREMENT, max_workers=2, batch_window=0.0
    ) as service:
        enabled_seconds = _drive(service)

    obs.disable()
    try:
        with PredictionService(
            measurement=MEASUREMENT, max_workers=2, batch_window=0.0
        ) as service:
            disabled_seconds = _drive(service)
    finally:
        obs.enable()
        obs.reset()

    overhead = enabled_seconds / disabled_seconds - 1.0
    per_request = enabled_seconds / (rounds * len(requests)) * 1e6
    print(
        f"\nobs enabled: {enabled_seconds:.4f}s, disabled: "
        f"{disabled_seconds:.4f}s -> {100 * overhead:+.1f}% overhead "
        f"({per_request:.0f} us/request)"
    )
    assert overhead < 0.10


def test_single_flight_under_concurrent_identical_load():
    """Eight threads asking the same question cost one simulation."""
    import threading

    from repro.service.workers import execute_cell

    calls = []
    lock = threading.Lock()

    def counting(task, database=None):
        with lock:
            calls.append(task)
        return execute_cell(task, database)

    with PredictionService(
        measurement=MEASUREMENT, execute=counting, batch_window=0.02
    ) as service:
        request = PredictRequest("BT", "S", 4)
        results = [None] * 8

        def worker(i):
            results[i] = service.predict(request, timeout=120)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(r == results[0] for r in results)
