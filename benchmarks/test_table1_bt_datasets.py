"""Table 1: BT data sets (S/W/A grid sizes)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table1_bt_datasets(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    assert result.table.cell("S", "Size") == "12 x 12 x 12"
    assert result.table.cell("W", "Size") == "32 x 32 x 32"
    assert result.table.cell("A", "Size") == "64 x 64 x 64"
