"""Table 2a: BT class S pairwise coupling values (4/9/16 procs)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table2a_bt_pair_couplings(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table2a", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Five kernel pairs (the cyclic adjacencies of the BT loop).
    assert len(result.table.rows) == 5
    # Paper trend: couplings generally get larger as processors increase
    # (9 -> 16 procs); allow one exception, as the paper itself observed
    # one ({Add, Copy_Faces} at 9 procs).
    rising = sum(
        1
        for row in result.table.rows
        if row[3] >= row[2] - 0.005  # 16 procs vs 9 procs
    )
    assert rising >= 4
