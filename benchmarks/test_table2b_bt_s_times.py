"""Table 2b: BT class S execution times (actual / summation / coupling-2)."""

from benchmarks._shape import assert_coupling_beats_summation, mean_error
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table2b_bt_s_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table2b", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: summation ~30 % average error at class S. Our simulator's
    # class-S noise is milder than the real machine's, so the coupling
    # predictor does better than the paper's 28 % — the required shape is
    # that summation is far off and coupling is the better predictor.
    assert mean_error(result, "Summation") > 10.0
    assert_coupling_beats_summation(result, factor=2.0)
