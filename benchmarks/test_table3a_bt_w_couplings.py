"""Table 3a: BT class W three-kernel coupling values."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table3a_bt_w_couplings(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table3a", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    values = [v for row in result.table.rows for v in row[1:]]
    # Paper: "a large amount of constructive coupling ... all values below"
    # a constant bound, changing very little with processor count.
    assert all(v < 1.0 for v in values)
    for row in result.table.rows:
        series = row[1:]
        spread = (max(series) - min(series)) / min(series)
        assert spread < 0.15, (row[0], series)
