"""Table 3b: BT class W execution times with the 3-kernel predictor."""

from benchmarks._shape import (
    assert_coupling_beats_summation,
    assert_errors_within,
    assert_summation_overestimates,
    mean_error,
)
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table3b_bt_w_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table3b", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: summation 18-24 % (avg 22.4), coupling-3 1.2-3.0 % (avg ~2).
    assert 12.0 < mean_error(result, "Summation") < 35.0
    assert_errors_within(result, "Coupling: 3 kernels", 5.0)
    assert_coupling_beats_summation(result, factor=5.0)
    assert_summation_overestimates(result)
