"""Table 4a: BT class A four-kernel coupling values."""

from benchmarks.conftest import record
from repro.experiments import run_experiment
from repro.util.stats import mean


def test_table4a_bt_a_couplings(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table4a", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: ~0.9 at 4 procs (working set far beyond the caches) dropping
    # toward ~0.8 as the per-processor problem shrinks.
    at4 = mean([row[1] for row in result.table.rows])
    at25 = mean([row[4] for row in result.table.rows])
    assert at4 > 0.9
    assert at25 < at4 - 0.05
    assert 0.7 < at25 < 0.95
