"""Table 4b: BT class A execution times with the 4-kernel predictor."""

from benchmarks._shape import (
    assert_coupling_beats_summation,
    assert_errors_within,
    mean_error,
)
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table4b_bt_a_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table4b", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    errors = result.measured_errors["Summation"]
    # Paper trend: summation error grows with processor count at class A
    # (10.6 % at 4 procs up to ~23-27 % beyond) because the shrinking
    # per-processor working set lets the application reuse more.
    assert errors[0] < errors[-1]
    assert mean_error(result, "Summation") > 8.0
    assert_errors_within(result, "Coupling: 4 kernels", 4.0)
    assert_coupling_beats_summation(result, factor=4.0)
