"""Table 5: SP data sets (W/A/B grid sizes)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table5_sp_datasets(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table5", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    assert result.table.cell("W", "Size") == "36 x 36 x 36"
    assert result.table.cell("B", "Size") == "102 x 102 x 102"
