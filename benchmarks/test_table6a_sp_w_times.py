"""Table 6a: SP class W execution times (4- and 5-kernel predictors)."""

from benchmarks._shape import (
    assert_coupling_beats_summation,
    assert_errors_within,
    mean_error,
)
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table6a_sp_w_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table6a", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: summation avg 15.95 %, coupling-4 avg 1.63 %, coupling-5 0.70 %.
    assert mean_error(result, "Summation") > 10.0
    assert_errors_within(result, "Coupling: 4 kernels", 5.0)
    assert_errors_within(result, "Coupling: 5 kernels", 5.0)
    assert_coupling_beats_summation(result, factor=4.0)
