"""Table 6b: SP class A execution times (4- and 5-kernel predictors)."""

from benchmarks._shape import (
    assert_coupling_beats_summation,
    assert_errors_within,
    mean_error,
)
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table6b_sp_a_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table6b", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: summation avg 20.5 %, coupling-4 1.97 %, coupling-5 1.18 %.
    assert mean_error(result, "Summation") > 5.0
    assert_errors_within(result, "Coupling: 4 kernels", 5.0)
    assert_errors_within(result, "Coupling: 5 kernels", 5.0)
    assert_coupling_beats_summation(result, factor=3.0)
