"""Table 6c: SP class B execution times (4- and 5-kernel predictors)."""

from benchmarks._shape import (
    assert_coupling_beats_summation,
    assert_errors_within,
)
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table6c_sp_b_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table6c", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: worst coupling error 1.85 % vs best summation error 18.61 %.
    worst_coupling = max(
        max(errs)
        for name, errs in result.measured_errors.items()
        if name != "Summation"
    )
    best_summation = min(result.measured_errors["Summation"])
    assert worst_coupling < best_summation
    assert_errors_within(result, "Coupling: 4 kernels", 6.0)
    assert_coupling_beats_summation(result, factor=3.0)
