"""Table 7: LU data sets (W/A/B grid sizes)."""

from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table7_lu_datasets(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table7", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    assert result.table.cell("W", "Size") == "33 x 33 x 33"
    assert result.table.cell("A", "Size") == "64 x 64 x 64"
