"""Table 8a: LU class W execution times with the 3-kernel predictor."""

from benchmarks._shape import assert_coupling_beats_summation, assert_errors_within
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table8a_lu_w_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table8a", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: LU summation errors are smaller than BT/SP's (avg 12.9 % with
    # one 37.7 % outlier); coupling-3 still noticeably better (avg 3.6 %).
    assert_errors_within(result, "Coupling: 3 kernels", 6.0)
    assert_coupling_beats_summation(result, factor=1.5)
