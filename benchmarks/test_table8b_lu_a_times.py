"""Table 8b: LU class A execution times with the 3-kernel predictor."""

from benchmarks._shape import assert_coupling_beats_summation, assert_errors_within, mean_error
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table8b_lu_a_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table8b", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: summation avg 4.56 %, coupling-3 avg 1.47 %.
    assert mean_error(result, "Summation") < 20.0
    assert_errors_within(result, "Coupling: 3 kernels", 4.0)
    assert_coupling_beats_summation(result, factor=1.5)
