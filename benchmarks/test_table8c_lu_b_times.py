"""Table 8c: LU class B execution times with the 3-kernel predictor."""

from benchmarks._shape import assert_coupling_beats_summation, assert_errors_within
from benchmarks.conftest import record
from repro.experiments import run_experiment


def test_table8c_lu_b_times(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: run_experiment("table8c", pipeline=pipeline),
        rounds=1,
        iterations=1,
    )
    record(result)
    # Paper: worst coupling error 1.44 % vs best summation error 2.28 % —
    # LU class B is the closest race in the paper; require the same
    # ordering without a large factor.
    worst_coupling = max(result.measured_errors["Coupling: 3 kernels"])
    best_summation = min(result.measured_errors["Summation"])
    assert worst_coupling < best_summation or worst_coupling < 2.0
    assert_errors_within(result, "Coupling: 3 kernels", 5.0)
    assert_coupling_beats_summation(result, factor=1.2)
