"""Wall-clock acceptance benchmark for the tiered-serving ladder.

For the golden class-A cells the analytic rung must answer at least 100x
faster than the discrete-event simulation while staying within the
documented accuracy bound (:data:`ANALYTIC_REL_ERROR_BOUND`) of the
simulated per-kernel ``E_k`` and application totals.  Per-tier latency,
speedup, and signed relative error are written to ``BENCH_tiers.json`` at
the repo root so CI artifacts double as the accuracy/latency record.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks._ledger import record_bench
from repro.analytic.model import ANALYTIC_REL_ERROR_BOUND, AnalyticPredictor
from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.simmachine.machine import ibm_sp_argonne

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Same protocol as the table benchmarks.
TIER_MEASUREMENT = MeasurementConfig(repetitions=6, warmup=2, seed=0)

#: The golden cells: one per supported benchmark, at the paper tables'
#: class-A process counts.
GOLDEN_CELLS = [("BT", "A", 16), ("SP", "A", 16), ("LU", "A", 8)]

MIN_SPEEDUP = 100.0


def test_analytic_tier_speedup_and_accuracy():
    machine = ibm_sp_argonne()
    cells = []
    for bench, problem_class, nprocs in GOLDEN_CELLS:
        pipeline = ExperimentPipeline(
            ExperimentSettings(measurement=TIER_MEASUREMENT)
        )
        start = time.perf_counter()
        simulated = pipeline.config_result(bench, problem_class, nprocs, (2,))
        sim_s = time.perf_counter() - start

        start = time.perf_counter()
        analytic = AnalyticPredictor.for_config(
            machine, bench, problem_class, nprocs
        ).report((2,))
        ana_s = time.perf_counter() - start

        speedup = sim_s / ana_s
        kernel_errors = {
            kernel: (analytic.inputs.loop_times[kernel] - actual) / actual
            for kernel, actual in simulated.inputs.loop_times.items()
        }
        app_error = (analytic.actual - simulated.actual) / simulated.actual
        cells.append(
            {
                "benchmark": bench,
                "problem_class": problem_class,
                "nprocs": nprocs,
                "simulation_seconds": round(sim_s, 4),
                "analytic_seconds": round(ana_s, 6),
                "speedup": round(speedup, 1),
                "signed_app_rel_error": round(app_error, 4),
                "signed_kernel_rel_errors": {
                    k: round(v, 4) for k, v in kernel_errors.items()
                },
                "max_abs_kernel_rel_error": round(
                    max(abs(v) for v in kernel_errors.values()), 4
                ),
                "expected_rel_error": round(analytic.expected_rel_error, 4),
            }
        )

    record = {
        "golden_cells": cells,
        "min_speedup_required": MIN_SPEEDUP,
        "rel_error_bound": ANALYTIC_REL_ERROR_BOUND,
        "chain_length": 2,
        "note": (
            "speedup = wall-clock of one full simulated cell (isolated + "
            "chains + application) over one full analytic report for the "
            "same cell; errors are signed analytic-vs-simulation relative "
            "errors"
        ),
    }
    (REPO_ROOT / "BENCH_tiers.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    record_bench("tiers", record, samples=TIER_MEASUREMENT.repetitions)

    for cell in cells:
        assert cell["speedup"] >= MIN_SPEEDUP, cell
        assert (
            cell["max_abs_kernel_rel_error"] <= ANALYTIC_REL_ERROR_BOUND
        ), cell
        assert abs(cell["signed_app_rel_error"]) <= ANALYTIC_REL_ERROR_BOUND, (
            cell
        )
