"""Regenerate the paper's BT class W results (Tables 3a and 3b).

This is the paper's §4.1.2 case study end-to-end: coupling values of the
three-kernel chains across 4/9/16/25 processors, and the execution-time
comparison of the summation and coupling predictors.

Run:  python examples/bt_class_w_tables.py
"""

from repro.experiments import ExperimentPipeline, run_experiment


def main() -> None:
    pipeline = ExperimentPipeline()  # shared measurements for both tables
    for table_id in ("table3a", "table3b"):
        result = run_experiment(table_id, pipeline=pipeline)
        print(result.table.render())
        print()
        print(result.comparison())
        print("\n" + "=" * 72 + "\n")


if __name__ == "__main__":
    main()
