"""Reusing coupling values across configurations (paper §6 future work).

"Future work is focused on determining which coupling values must be
obtained and which values can be reused, thereby reducing the number of
needed experiments." Coupling values are ratios and drift slowly across
processor counts, so a new configuration can often be predicted from a
*neighbor's* couplings plus only fresh isolated measurements — skipping the
expensive chain measurements entirely.

This example measures BT class W chains at 4 and 25 processors, stores the
coupling sets, and predicts 9 and 16 processors with borrowed couplings.

Run:  python examples/coupling_reuse.py
"""

from repro.core import ControlFlow, CouplingPredictor, CouplingStore
from repro.experiments import ExperimentPipeline

CHAIN_LENGTH = 3


def main() -> None:
    pipeline = ExperimentPipeline()
    flow = None
    store = None

    print("Measuring full chain sets at 4 and 25 processors ...")
    for procs in (4, 25):
        result = pipeline.config_result("BT", "W", procs, (CHAIN_LENGTH,))
        if store is None:
            flow = result.flow
            store = CouplingStore(flow, CHAIN_LENGTH)
        store.add(
            "W", procs, CouplingPredictor(CHAIN_LENGTH).coupling_set(result.inputs)
        )

    print("Predicting 9 and 16 processors with borrowed couplings "
          "(only isolated kernels measured there):\n")
    header = (
        f"{'procs':>5} {'actual':>10} {'borrowed-from':>14} "
        f"{'reused pred':>12} {'err':>7} {'full pred':>10} {'err':>7}"
    )
    print(header)
    for procs in (9, 16):
        result = pipeline.config_result("BT", "W", procs, (CHAIN_LENGTH,))
        reused = store.predict(
            "W",
            procs,
            iterations=result.inputs.iterations,
            loop_times=result.inputs.loop_times,
            pre_times=result.inputs.pre_times,
            post_times=result.inputs.post_times,
        )
        full = result.coupling_prediction(CHAIN_LENGTH)
        err_reused = 100 * abs(reused.predicted - result.actual) / result.actual
        err_full = 100 * abs(full - result.actual) / result.actual
        print(
            f"{procs:>5} {result.actual:10.2f} "
            f"{reused.source_nprocs:>12}p {reused.predicted:12.2f} "
            f"{err_reused:6.2f}% {full:10.2f} {err_full:6.2f}%"
        )

    print(
        "\nBorrowed-coupling predictions stay within a few percent — the "
        "chain measurements at the new configurations were unnecessary."
    )


if __name__ == "__main__":
    main()
