"""How coupling values move with problem size and processor count.

Aspects (2) and (3) of the paper: sweep BT's {X_SOLVE, Y_SOLVE} pair
coupling across problem classes and processor counts, count the major value
transitions, and compare against the machine's cache-capacity crossings —
the paper's "finite number of major value changes that is dependent on the
memory subsystem".

Run:  python examples/coupling_scaling_study.py
"""

from repro.core import CouplingScalingStudy
from repro.instrument import MeasurementConfig
from repro.simmachine import ibm_sp_argonne

WINDOW = ("X_SOLVE", "Y_SOLVE")


def describe(study: CouplingScalingStudy, label: str, points) -> None:
    analysis = study.transition_analysis(WINDOW, points)
    print(f"{label}:")
    for pt, coupling in zip(points, analysis.couplings):
        footprint_mb = pt.footprint_bytes / 2**20
        print(
            f"  class {pt.problem_class} on {pt.nprocs:>2} procs: "
            f"C = {coupling:.3f}   (working set {footprint_mb:7.2f} MiB/proc)"
        )
    print(
        f"  -> {analysis.observed} observed major transition(s); "
        f"{analysis.expected} cache-capacity crossing(s); "
        f"finite = {analysis.finite}\n"
    )


def main() -> None:
    machine = ibm_sp_argonne()
    caps = ", ".join(
        f"{lv.name}={lv.capacity_bytes // 1024} KiB"
        for lv in machine.processor.cache_levels
    )
    print(f"Machine cache capacities: {caps}\n")

    study = CouplingScalingStudy(
        "BT",
        machine,
        chain_length=2,
        measurement=MeasurementConfig(repetitions=4, warmup=2),
    )

    by_class = study.sweep_classes(["S", "W", "A"], nprocs=4)
    describe(study, "Problem-size scaling (fixed 4 processors)", by_class)

    by_procs = study.sweep_procs("A", [4, 9, 16, 25])
    describe(study, "Processor scaling (fixed class A)", by_procs)


if __name__ == "__main__":
    main()
