"""Apply the coupling methodology to your own application.

Describes a small bulk-synchronous stencil code (flux computation +
state update + diagnostics) declaratively, measures its kernels on the
simulated machine with the paper's protocol, and predicts the full run —
demonstrating that nothing in the library is NPB-specific.

Run:  python examples/custom_application.py
"""

from repro.core import ControlFlow, CouplingPredictor, PredictionInputs, SummationPredictor
from repro.instrument import ApplicationRunner, ChainRunner, MeasurementConfig
from repro.npb.custom import CustomApplication, CustomSpec
from repro.simmachine import ibm_sp_argonne
from repro.simmpi import CartGrid


def build_app() -> CustomApplication:
    spec = CustomSpec(
        name="SHALLOW",            # a toy shallow-water-style solver
        nx=48, ny=48, nz=32,
        iterations=150,
        grid=CartGrid(2, 2),
        fields={
            "state": 64,           # 8 doubles/point of prognostic state
            "flux": 48,            # 6 doubles/point of face fluxes
            "tend": 64,            # tendencies
            "scratch": 240,        # reconstruction workspace (solver scratch)
        },
        pre_kernels=("INIT",),
        loop_kernels=("RECON", "FLUX", "TENDENCY", "UPDATE"),
        post_kernels=("DIAGNOSTICS",),
        kernel_fields={
            "INIT": ("state",),
            "RECON": ("state", "scratch"),
            "FLUX": ("scratch", "flux"),
            "TENDENCY": ("flux", "tend"),
            "UPDATE": ("tend", "state"),
            "DIAGNOSTICS": ("state",),
        },
        flops_per_point={
            "INIT": 40.0,
            "RECON": 420.0,
            "FLUX": 310.0,
            "TENDENCY": 120.0,
            "UPDATE": 25.0,
            "DIAGNOSTICS": 60.0,
        },
        halo_bytes_per_point={"RECON": 64},  # ghost exchange of state
    )
    return CustomApplication(spec, nprocs=4)


def main() -> None:
    machine = ibm_sp_argonne()
    app = build_app()
    flow = ControlFlow(app.loop_kernel_names)
    runner = ChainRunner(app, machine, MeasurementConfig(repetitions=6, warmup=2))

    print(f"Measuring {app.name} kernels in isolation ...")
    isolated = {
        k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
    }
    for kernel, t in isolated.items():
        print(f"  {kernel:<10} {1e3 * t:8.2f} ms / invocation")

    print("Measuring length-2 chains ...")
    chains = {w: runner.measure(w).mean for w in flow.windows(2)}
    pre = {k: runner.measure((k,)).mean for k in app.pre_kernel_names}
    post = {k: runner.measure((k,)).mean for k in app.post_kernel_names}

    inputs = PredictionInputs(
        flow=flow,
        iterations=app.iterations,
        loop_times=isolated,
        pre_times=pre,
        post_times=post,
        chain_times=chains,
    )
    actual = ApplicationRunner(app, machine).run().total_time
    summation = SummationPredictor().predict(inputs)
    predictor = CouplingPredictor(2)
    coupled = predictor.predict(inputs)

    print(f"\nActual:               {actual:8.2f} s")
    print(
        f"Summation:            {summation:8.2f} s "
        f"({100 * abs(summation - actual) / actual:5.2f} % error)"
    )
    print(
        f"Coupling (2 kernels): {coupled:8.2f} s "
        f"({100 * abs(coupled - actual) / actual:5.2f} % error)"
    )
    print("\nPair couplings (producer-consumer chains are constructive):")
    for chain in predictor.coupling_set(inputs):
        print(f"  {{{', '.join(chain.window)}}}: {chain.value:.3f}")


if __name__ == "__main__":
    main()
