"""Measure REAL kernel couplings on THIS machine.

Everything else in the repository runs on the simulated IBM SP. This
example applies the paper's Eq. 1-2 to actual NumPy kernels (the x/y/z
sweeps of an ADI diffusion solver) timed on the host CPU — the coupling
values you see come from your machine's real cache hierarchy.

Run:  python examples/host_couplings.py
"""

from repro.core import CouplingPredictor, PredictionInputs, SummationPredictor
from repro.npb.miniapp import HostMiniApp


def main() -> None:
    app = HostMiniApp(n=96, repetitions=7)
    print(f"ADI mini-app on a {app.grid.nx}^3 grid, host CPU timings.\n")

    couplings = app.coupling_set(chain_length=2)
    print("Pair couplings (C < 1: the next sweep reuses cached data):")
    isolated = {}
    for chain in couplings:
        print(
            f"  {{{', '.join(chain.window)}}}: C = {chain.value:.3f} "
            f"({1e3 * chain.chain_performance:.1f} ms together vs "
            f"{1e3 * chain.isolated_sum:.1f} ms summed)"
        )

    iterations = 10
    isolated = {k: app.measure((k,)).mean for k in app.flow.names}
    inputs = PredictionInputs(
        flow=app.flow,
        iterations=iterations,
        loop_times=isolated,
        chain_times={
            c.window: c.chain_performance for c in couplings
        },
    )
    actual = app.application_time(iterations)
    summation = SummationPredictor().predict(inputs)
    coupled = CouplingPredictor(2).predict(inputs)
    print(f"\n{iterations} full iterations on the host:")
    print(f"  actual:    {1e3 * actual:8.1f} ms")
    print(
        f"  summation: {1e3 * summation:8.1f} ms "
        f"({100 * abs(summation - actual) / actual:5.1f} % error)"
    )
    print(
        f"  coupling:  {1e3 * coupled:8.1f} ms "
        f"({100 * abs(coupled - actual) / actual:5.1f} % error)"
    )
    print(
        "\n(Host timings are noisy; rerun a few times. The coupling "
        "prediction should track the actual time more closely than the "
        "summation whenever your cache holds a useful fraction of the "
        "field between sweeps.)"
    )


if __name__ == "__main__":
    main()
