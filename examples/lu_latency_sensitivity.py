"""LU's sensitivity to small-message latency (paper §4.3).

LU's SSOR sweeps pipeline "a relatively large number of small
communications of five words each" and are therefore "very sensitive to the
small-message communication performance". This example sweeps the network
latency of the simulated machine and shows the wavefront kernels slowing
down much faster than the local kernels, plus the per-kernel profile of a
full run.

Run:  python examples/lu_latency_sensitivity.py
"""

from repro.instrument import ChainRunner, MeasurementConfig, profile_application
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


def with_latency(machine, latency):
    return machine.with_(
        network=machine.network.__class__(
            **{**machine.network.__dict__, "latency": latency}
        )
    )


def main() -> None:
    base = ibm_sp_argonne()
    # Small per-processor planes make the wavefront latency-bound — the
    # regime where the paper's "very sensitive to the small-message
    # communication performance" bites hardest.
    bench = make_benchmark("LU", "S", 16)
    measurement = MeasurementConfig(repetitions=6, warmup=2)

    print("Per-invocation kernel times vs network latency (LU class S, 16 procs)")
    print(f"{'latency':>10} {'SSOR_LT (wavefront)':>22} {'SSOR_RS (halo)':>18}")
    baseline = {}
    for factor in (1, 2, 5, 10):
        machine = with_latency(base, base.network.latency * factor)
        runner = ChainRunner(bench, machine, measurement)
        times = {
            k: runner.measure((k,)).mean for k in ("SSOR_LT", "SSOR_RS")
        }
        if factor == 1:
            baseline = dict(times)
        cells = [
            f"{1e3 * times[k]:8.2f} ms ({times[k] / baseline[k]:4.2f}x)"
            for k in ("SSOR_LT", "SSOR_RS")
        ]
        print(f"{1e6 * base.network.latency * factor:8.0f} us " + " ".join(cells))

    print("\nWhere a full LU class W run spends its time (per kernel, "
          "rank-summed, 8 procs):\n")
    report = profile_application(make_benchmark("LU", "W", 8), base)
    print(report.render())

    # A traced SSOR iteration, rendered as a per-rank timeline: watch the
    # lower sweep staircase across the process grid, then reverse.
    from repro.instrument import render_timeline
    from repro.simmachine import Machine
    from repro.simmpi import attach_world

    small = make_benchmark("LU", "S", 4)
    machine = Machine(base.with_(noise_cv=0.0, noise_floor=0.0), 4, trace=True)
    attach_world(machine)

    def one_iteration(ctx):
        for kernel in small.loop_kernel_names:
            yield from small.kernel(kernel)(ctx)

    machine.run(one_iteration)
    print("\nOne traced SSOR iteration (LU class S, 4 procs):\n")
    print(render_timeline(machine.trace, 4, width=68))


if __name__ == "__main__":
    main()
