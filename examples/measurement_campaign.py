"""A persistent measurement campaign with prediction error bars.

Combines three production features:

* :class:`~repro.instrument.sweeps.Campaign` — sweep (class, procs) cells,
  memoizing every measurement in a sqlite database so re-runs are free
  (the Prophesy workflow the paper's group built);
* :func:`~repro.core.uncertainty.prediction_interval` — propagate the
  measurement noise through the coupling pipeline into an error bar, so
  the class-S "measuring errors get magnified" effect is quantified
  rather than guessed;
* predictor comparison per cell.

Run:  python examples/measurement_campaign.py
"""

import os
import tempfile

from repro.core import (
    CouplingPredictor,
    MeasuredQuantity,
    SummationPredictor,
    prediction_interval,
)
from repro.instrument import (
    Campaign,
    CampaignPlan,
    ChainRunner,
    MeasurementConfig,
    PerformanceDatabase,
)
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne

CHAIN = 2


def main() -> None:
    db_path = os.path.join(tempfile.gettempdir(), "repro_campaign.sqlite")
    plan = CampaignPlan(
        benchmark="BT",
        problem_classes=("S", "W"),
        proc_counts=(4, 16),
        chain_lengths=(CHAIN,),
    )
    machine = ibm_sp_argonne()
    measurement = MeasurementConfig(repetitions=8, warmup=2)
    campaign = Campaign(
        plan=plan,
        machine=machine,
        measurement=measurement,
        database=PerformanceDatabase(db_path),
    )
    results = campaign.run()
    print(
        f"campaign: {campaign.measurements_run} measurements run, "
        f"{campaign.measurements_reused} reused from {db_path}\n"
    )

    print(f"{'cell':>8} {'summation':>11} {'coupling':>10} {'95% interval':>24}")
    for (cls, procs), inputs in results.items():
        # Re-derive per-measurement noise for the interval (mean + sem).
        bench = make_benchmark("BT", cls, procs)
        runner = ChainRunner(bench, machine, measurement)
        loop_q = {
            k: MeasuredQuantity.from_measurement(runner.measure((k,)))
            for k in inputs.flow.names
        }
        chain_q = {
            w: MeasuredQuantity.from_measurement(runner.measure(w))
            for w in inputs.flow.windows(CHAIN)
        }
        interval = prediction_interval(
            inputs.flow,
            inputs.iterations,
            loop_q,
            chain_q,
            CHAIN,
            draws=300,
        )
        summation = SummationPredictor().predict(inputs)
        coupled = CouplingPredictor(CHAIN).predict(inputs)
        print(
            f"{cls}/{procs:>2}p {summation:>11.3f} {coupled:>10.3f} "
            f"[{interval.lo95:.3f}, {interval.hi95:.3f}] "
            f"(+-{100 * interval.relative_halfwidth:.2f} %)"
        )
    print(
        "\nRe-run this script: every measurement comes back from the "
        "database instantly."
    )


if __name__ == "__main__":
    main()
