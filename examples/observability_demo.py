"""The observability substrate end-to-end on one served prediction.

Drives a BT class S prediction through the serving layer with a
correlation ID bound, then shows everything the substrate captured:

* structured log lines stamped with the correlation/trace/span IDs;
* the span tree (client.predict -> service.predict -> service.dispatch
  -> service.cell -> campaign.run -> measure.chain ...);
* the merged Prometheus text exposition — the same bytes a running
  ``repro serve --port N`` answers to the ``{"cmd": "metrics"}`` command
  (or ``repro metrics --port N``).

Run:  python examples/observability_demo.py
"""

import sys

from repro import obs
from repro.instrument import MeasurementConfig
from repro.service import PredictionService, ServiceClient


def main() -> None:
    obs.configure_logging(stream=sys.stderr)

    service = PredictionService(
        measurement=MeasurementConfig(repetitions=2, warmup=1),
        max_workers=2,
    )
    with ServiceClient(service) as client:
        report = client.predict(
            "BT", "S", 4, chain_length=2, correlation_id="demo-1"
        )
        obs.log(
            "demo.predicted",
            actual=round(report.actual, 4),
            best=report.best(),
        )
        # A repeat of the same question: served from the L1 cache.
        client.predict("BT", "S", 4, chain_length=2, correlation_id="demo-2")

        print("\n--- span tree (name, trace, parent) ---")
        for span in obs.get_tracer().spans():
            print(
                f"{span.name:<20} trace={span.trace_id:<8} "
                f"parent={span.parent_id or '-':<6} "
                f"{span.duration * 1e3:8.2f} ms"
            )

        print("\n--- Prometheus exposition ---")
        print(obs.to_prometheus(*service.metrics_registries()), end="")


if __name__ == "__main__":
    main()
