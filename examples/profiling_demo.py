"""Profile a campaign, render a flamegraph, and read the serving SLOs.

End-to-end tour of the observability stack added with the continuous
profiling PR:

1. run a small BT/S sweep under the sampling profiler and print the
   hottest frames (self and cumulative) plus the span/tag attribution;
2. write the collapsed-stack file a flamegraph renders from
   (``flamegraph.pl profile.folded > profile.svg``, or paste into
   https://www.speedscope.app);
3. drive a short served workload and print the SLO report — per-tier
   latency quantiles, objective compliance, and error-budget burn.

Run:  python examples/profiling_demo.py
"""

from repro import obs
from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.service import PredictionService, PredictRequest

MEASUREMENT = MeasurementConfig(repetitions=3, warmup=1, seed=0)


def profile_campaign() -> None:
    print("=== 1. sampling profiler over a BT/S sweep ===\n")
    profiler = obs.SamplingProfiler(interval=0.002).start()
    try:
        pipeline = ExperimentPipeline(
            ExperimentSettings(measurement=MEASUREMENT)
        )
        list(pipeline.sweep("BT", "S", [4], chain_lengths=[2]))
    finally:
        data = profiler.stop()

    total = sum(data.samples.values())
    print(
        f"{total} samples over {data.duration:.2f}s "
        f"({profiler.backend} backend)\n"
    )
    print("hottest frames (self time):")
    for stack, seconds in sorted(
        data.self_seconds().items(), key=lambda kv: -kv[1]
    )[:8]:
        print(f"  {seconds:8.3f}s  {stack}")
    print("\nby span/tag:")
    for name, seconds in sorted(
        data.span_seconds().items(), key=lambda kv: -kv[1]
    )[:8]:
        print(f"  {seconds:8.3f}s  {name}")

    with open("profile.folded", "w", encoding="utf-8") as fh:
        fh.write(data.collapsed())
    print(
        "\nwrote profile.folded — render with "
        "`flamegraph.pl profile.folded > profile.svg` or speedscope"
    )


def serve_and_report_slo() -> None:
    print("\n=== 2. serving SLOs for a short workload ===\n")
    with PredictionService(
        measurement=MEASUREMENT, max_workers=2, batch_window=0.0
    ) as service:
        for nprocs in (4, 9, 4, 4, 9, 4):
            service.predict(
                PredictRequest("BT", "S", nprocs, chain_length=2),
                timeout=120,
            )
        report = service.slo_report()

    window = report["window"]
    print(f"window: {window['requests']} requests")
    for tier, doc in sorted(report["tiers"].items()):
        if not doc["requests"]:
            continue
        print(
            f"  {tier:12s} {doc['requests']:4d} req  "
            f"p50 {doc['p50'] * 1e3:8.2f}ms  p95 {doc['p95'] * 1e3:8.2f}ms"
        )
    print("\nobjectives:")
    for verdict in report["objectives"]:
        status = "met" if verdict["met"] else "BREACHED"
        print(
            f"  {verdict['name']:18s} target {verdict['target']:.0%}  "
            f"compliance {verdict['compliance']:.1%}  "
            f"burn {verdict['burn_rate']:.2f}  [{status}]"
        )
    print(f"breaches: {report['breaches']}")


def main() -> None:
    profile_campaign()
    serve_and_report_slo()


if __name__ == "__main__":
    main()
