"""Quickstart: predict a parallel application's run time from kernel couplings.

Measures NAS BT (class W, 4 processors) on the simulated IBM SP, computes
the chain coupling values, and compares the paper's two predictors against
the actual (simulated) execution time.

Run:  python examples/quickstart.py
"""

from repro import (
    CouplingPredictor,
    ExperimentPipeline,
    SummationPredictor,
)


def main() -> None:
    pipeline = ExperimentPipeline()
    print("Measuring BT class W on 4 simulated processors ...")
    result = pipeline.config_result("BT", "W", 4, chain_lengths=(3,))

    print(f"\nActual execution time:      {result.actual:9.2f} s")
    summation = SummationPredictor().predict(result.inputs)
    err = 100 * abs(summation - result.actual) / result.actual
    print(f"Summation prediction:       {summation:9.2f} s  ({err:5.2f} % error)")

    predictor = CouplingPredictor(3)
    coupled = predictor.predict(result.inputs)
    err = 100 * abs(coupled - result.actual) / result.actual
    print(f"Coupling (3 kernels):       {coupled:9.2f} s  ({err:5.2f} % error)")

    print("\nChain coupling values (C_S = P_S / sum P_k; < 1 constructive):")
    for chain in predictor.coupling_set(result.inputs):
        kernels = ", ".join(chain.window)
        print(f"  {{{kernels}}}: {chain.value:.3f}  [{chain.coupling_class.value}]")

    print("\nPer-kernel coefficients (the paper's composition algebra):")
    for kernel, coeff in predictor.coefficients(result.inputs).items():
        print(f"  {kernel:<12} {coeff:.3f}")


if __name__ == "__main__":
    main()
