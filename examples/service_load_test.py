"""Load-test the prediction service and read its metrics.

Drives a repeated workload — four distinct questions cycled from several
client threads — through one :class:`~repro.service.PredictionService`
and prints the metrics that explain where the time went:

* the first cycle misses and runs real measurement campaigns (batched so
  chain lengths of one configuration share a cell);
* concurrent identical requests coalesce onto a single flight;
* everything afterwards is an L1 cache hit;
* re-running this script reuses the sqlite tier: the service answers the
  whole workload with zero new simulations (``l2_hits`` instead of
  ``misses``).

Run:  python examples/service_load_test.py
"""

import os
import tempfile
import threading
import time

from repro.instrument import MeasurementConfig
from repro.service import PredictRequest, PredictionService, render_stats

WORKLOAD = [
    PredictRequest("BT", "S", 4, chain_length=2),
    PredictRequest("BT", "S", 4, chain_length=3),
    PredictRequest("BT", "S", 1, chain_length=2),
    PredictRequest("BT", "S", 9, chain_length=2),
]
CLIENTS = 4
CYCLES = 10


def client(service: PredictionService, reports: list) -> None:
    for _ in range(CYCLES):
        for request in WORKLOAD:
            reports.append(service.predict(request, timeout=120))


def main() -> None:
    db_path = os.path.join(tempfile.gettempdir(), "repro_service.sqlite")
    with PredictionService(
        db_path=db_path,
        measurement=MeasurementConfig(repetitions=4, warmup=2, seed=0),
        max_workers=2,
        batch_window=0.01,
    ) as service:
        reports: list = []
        threads = [
            threading.Thread(target=client, args=(service, reports))
            for _ in range(CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        total = CLIENTS * CYCLES * len(WORKLOAD)
        print(
            f"{total} requests from {CLIENTS} threads in {elapsed:.2f}s "
            f"({total / elapsed:,.0f} req/s)\n"
        )
        print(render_stats(service.stats()))

        best = reports[0].best()
        print(
            f"\nsample answer: {WORKLOAD[0].benchmark}/"
            f"{WORKLOAD[0].problem_class}/{WORKLOAD[0].nprocs}p -> "
            f"best predictor {best} "
            f"({reports[0].relative_error(best):+.2f} % error)"
        )
    print(
        f"\nRe-run this script: the database at {db_path} lets the service "
        "answer everything without a single new simulation."
    )


if __name__ == "__main__":
    main()
