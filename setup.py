"""Legacy setup shim.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 517 editable installs are unavailable;
``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``python setup.py develop``) uses this shim instead. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
