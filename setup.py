"""Legacy setup shim, plus the optional compiled-engine extension.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 517 editable installs are unavailable;
``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``python setup.py develop``) uses this shim instead. All metadata lives in
pyproject.toml.

The compiled discrete-event engine is opt-in: a plain install stays
pure-Python (existing CI jobs keep exercising the pure fallback), while

    REPRO_BUILD_EXT=1 python setup.py build_ext --inplace

compiles ``repro.simmachine._cengine`` in place.  The build is
failure-tolerant — a missing compiler or headers degrades to the pure
backend instead of breaking the install.  When mypyc is importable,
``REPRO_BUILD_MYPYC=1`` additionally compiles the typed hot modules
(engine/memory/network and the simmpi collectives) through mypyc; the
REP015 lint rule keeps those modules free of mypyc-hostile dynamics.
"""

import os

from setuptools import setup

ext_modules = []
cmdclass = {}

if os.environ.get("REPRO_BUILD_EXT"):
    from setuptools import Extension
    from setuptools.command.build_ext import build_ext

    class optional_build_ext(build_ext):
        """Build the engine extension; degrade to pure Python on failure."""

        def run(self):
            try:
                super().run()
            except Exception as exc:  # pragma: no cover - toolchain-dependent
                self._warn(exc)

        def build_extension(self, ext):
            try:
                super().build_extension(ext)
            except Exception as exc:  # pragma: no cover - toolchain-dependent
                self._warn(exc)

        @staticmethod
        def _warn(exc):
            print(
                "warning: compiled engine build failed; the pure-Python "
                f"backend will be used ({exc})"
            )

    ext_modules.append(
        Extension(
            "repro.simmachine._cengine",
            sources=["src/repro/simmachine/_cengine.c"],
            optional=True,
        )
    )
    cmdclass["build_ext"] = optional_build_ext

    if os.environ.get("REPRO_BUILD_MYPYC"):
        try:
            from mypyc.build import mypycify
        except ImportError:
            print("warning: REPRO_BUILD_MYPYC set but mypyc is unavailable")
        else:  # pragma: no cover - mypyc not in the baseline toolchain
            ext_modules.extend(
                mypycify(
                    [
                        "src/repro/simmachine/memory.py",
                        "src/repro/simmachine/network.py",
                        "src/repro/simmpi/comm.py",
                    ]
                )
            )

setup(ext_modules=ext_modules, cmdclass=cmdclass)
