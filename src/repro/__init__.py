"""repro — kernel-coupling performance prediction for parallel applications.

A full reproduction of *Taylor, Wu, Geisler, Stevens: "Using Kernel
Couplings to Predict Parallel Application Performance" (HPDC 2002)*:

* :mod:`repro.core` — the paper's contribution: coupling values (Eq. 1-2),
  the weighted-average composition algebra (§3), coupling and summation
  predictors, scaling/transition analysis;
* :mod:`repro.simmachine` / :mod:`repro.simmpi` — a discrete-event
  simulated parallel machine (caches, interconnect, noise) with an
  MPI-like layer, standing in for the paper's IBM SP;
* :mod:`repro.npb` — BT/SP/LU work-alikes decomposed into the paper's
  kernels, plus real NumPy implementations of the underlying numerics;
* :mod:`repro.instrument` — the kernel-isolation measurement protocol;
* :mod:`repro.experiments` — drivers that regenerate every table of the
  paper's evaluation.

Quickstart::

    from repro import quick_prediction
    report = quick_prediction("BT", "W", nprocs=4, chain_length=3)
    print(report.errors())
"""

from repro._version import __version__
from repro.core import (
    ControlFlow,
    CouplingPredictor,
    CouplingSet,
    Kernel,
    PredictionInputs,
    PredictionReport,
    SummationPredictor,
    coupling_value,
    kernel_coefficients,
)
from repro.errors import ReproError
from repro.experiments import ExperimentPipeline, ExperimentSettings, run_experiment
from repro.instrument import ApplicationRunner, ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine import Machine, MachineConfig, ibm_sp_argonne

__all__ = [
    "ApplicationRunner",
    "ChainRunner",
    "ControlFlow",
    "CouplingPredictor",
    "CouplingSet",
    "ExperimentPipeline",
    "ExperimentSettings",
    "Kernel",
    "Machine",
    "MachineConfig",
    "MeasurementConfig",
    "PredictionInputs",
    "PredictionReport",
    "ReproError",
    "SummationPredictor",
    "__version__",
    "coupling_value",
    "ibm_sp_argonne",
    "kernel_coefficients",
    "make_benchmark",
    "quick_prediction",
    "run_experiment",
]


def quick_prediction(
    benchmark: str,
    problem_class: str,
    nprocs: int,
    chain_length: int = 3,
    settings: "ExperimentSettings | None" = None,
    tier: str = "exact",
) -> PredictionReport:
    """Measure one configuration and compare all predictors to actual.

    The one-call entry point: runs the full measurement protocol on the
    simulated IBM SP and returns a :class:`PredictionReport` with the
    actual time, the summation prediction, and the coupling prediction for
    ``chain_length``. ``tier`` selects the serving-ladder policy
    (``"fast"`` / ``"balanced"`` / ``"exact"``): under ``fast``/``balanced``
    the analytic closed forms answer in microseconds when their
    self-reported confidence fits the policy's error budget; the default
    ``exact`` always runs the simulation protocol.
    """
    pipeline = ExperimentPipeline(settings, tier_policy=tier)
    result = pipeline.config_result(
        benchmark, problem_class, nprocs, (chain_length,)
    )
    return PredictionReport(
        actual=result.actual,
        predictions={
            "Summation": result.summation,
            f"Coupling: {chain_length} kernels": result.coupling_prediction(
                chain_length
            ),
        },
        tier=result.tier,
    )
