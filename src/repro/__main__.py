"""``python -m repro`` entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        # Long-lived subcommands (``repro serve``) end with ctrl-c; exit
        # with the conventional 128+SIGINT code instead of a traceback.
        sys.exit(130)
