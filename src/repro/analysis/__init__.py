"""AST-based invariant checking for the repro codebase.

The paper's methodology rests on reproducible measurements; this package
statically enforces the conventions that keep them reproducible — in the
spirit of Kerncraft/PPT-style static modeling, applied to our own source:

========  ==================================================================
REP001    determinism: no wall clocks / global RNGs in the deterministic tier
REP002    lock discipline: guarded classes mutate state under their lock
REP003    blocking calls in service/ carry timeouts (deadlock hygiene)
REP004    fault-site strings match the registered ``faults.SITES`` table
REP005    wire-path raises use the ``repro.errors`` taxonomy
REP006    broad excepts in service/ carry an inline justification
REP007    pool-submitted callables and arguments must be picklable
REP008    tier purity: the analytic fast path never imports the simulator
REP009    observability discipline: no spans/logging in the engine hot path
REP010    transitive determinism: prediction tiers must not *reach* wall
          clocks / global RNG / env reads through project calls (graph
          rule; findings carry a witness call path)
REP011    async safety: no await while holding a synchronous lock
REP012    async safety: no blocking calls inside ``async def`` outside an
          executor handoff
REP013    async safety: create_task/ensure_future results must be retained
REP014    engine API parity: tier-ladder engines keep identical public
          signatures for every shared method name (graph rule)
========  ==================================================================

Analysis runs in two phases: phase 1 walks each file's AST once for the
per-file rules and builds a project-wide call graph
(:mod:`repro.analysis.graph`); phase 2 runs dataflow rules
(:mod:`repro.analysis.dataflow`) over that graph.

Run it as ``repro lint src/`` (exit 0 = clean, 1 = findings / stale
baseline entries / stale suppressions, 2 = usage error).  Findings can be
suppressed inline (``# repro: ignore[REP001]``) or grandfathered in
``analysis-baseline.json``; see docs/DEVELOPMENT.md.
"""

from repro.analysis.baseline import Baseline, split_against_baseline
from repro.analysis.dataflow import TaintAnalysis
from repro.analysis.findings import Finding, assign_stable_ids
from repro.analysis.graph import (
    CallEdge,
    ExternalRef,
    FunctionInfo,
    ProjectGraph,
    UnresolvedCall,
    build_graph,
    load_cached,
)
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import (
    FileContext,
    Rule,
    all_rules,
    register,
    select_rules,
)
from repro.analysis.visitor import (
    Analyzer,
    UnusedSuppression,
    analyze_paths,
    iter_python_files,
)

__all__ = [
    "Analyzer",
    "Baseline",
    "CallEdge",
    "ExternalRef",
    "FileContext",
    "Finding",
    "FunctionInfo",
    "ProjectGraph",
    "Rule",
    "TaintAnalysis",
    "UnresolvedCall",
    "UnusedSuppression",
    "all_rules",
    "analyze_paths",
    "assign_stable_ids",
    "build_graph",
    "iter_python_files",
    "load_cached",
    "register",
    "render_json",
    "render_text",
    "select_rules",
    "split_against_baseline",
]
