"""AST-based invariant checking for the repro codebase.

The paper's methodology rests on reproducible measurements; this package
statically enforces the conventions that keep them reproducible — in the
spirit of Kerncraft/PPT-style static modeling, applied to our own source:

========  ==================================================================
REP001    determinism: no wall clocks / global RNGs in the deterministic tier
REP002    lock discipline: guarded classes mutate state under their lock
REP003    blocking calls in service/ carry timeouts (deadlock hygiene)
REP004    fault-site strings match the registered ``faults.SITES`` table
REP005    wire-path raises use the ``repro.errors`` taxonomy
REP006    broad excepts in service/ carry an inline justification
========  ==================================================================

Run it as ``repro lint src/`` (exit 0 = clean, 1 = findings, 2 = usage
error).  Findings can be suppressed inline (``# repro: ignore[REP001]``)
or grandfathered in ``analysis-baseline.json``; see docs/DEVELOPMENT.md.
"""

from repro.analysis.baseline import Baseline, split_against_baseline
from repro.analysis.findings import Finding, assign_stable_ids
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import (
    FileContext,
    Rule,
    all_rules,
    register,
    select_rules,
)
from repro.analysis.visitor import Analyzer, analyze_paths, iter_python_files

__all__ = [
    "Analyzer",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "assign_stable_ids",
    "iter_python_files",
    "register",
    "render_json",
    "render_text",
    "select_rules",
    "split_against_baseline",
]
