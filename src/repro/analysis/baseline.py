"""Committed baseline of grandfathered findings.

The baseline file is a JSON document listing the stable IDs of findings a
repo has chosen to tolerate (typically: pre-existing violations at the
moment a rule was introduced).  ``repro lint`` subtracts baselined findings
before deciding its exit code, and reports baseline entries that no longer
match anything as *stale* so the file shrinks as debt is paid down.

Regenerate with ``repro lint src/ --update-baseline`` after deliberately
accepting new findings; the file is meant to be reviewed in the diff like
any other code change.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.findings import Finding
from repro.errors import ConfigurationError

__all__ = ["Baseline", "split_against_baseline"]

_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """The set of grandfathered finding IDs (plus their display info)."""

    ids: frozenset[str]
    entries: tuple[dict, ...] = ()

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(ids=frozenset(), entries=())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls.empty()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"invalid baseline {path}: {exc}") from None
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise ConfigurationError(
                f"baseline {path} must be a v{_VERSION} JSON object"
            )
        entries = tuple(data.get("findings", ()))
        ids = frozenset(
            entry["id"] for entry in entries if isinstance(entry, dict)
        )
        return cls(ids=ids, entries=entries)

    @staticmethod
    def save(path: str, findings: Sequence[Finding]) -> None:
        """Write ``findings`` as the new baseline (sorted, reviewable)."""
        document = {
            "version": _VERSION,
            "findings": [
                {
                    "id": f.stable_id,
                    "rule": f.rule,
                    "path": f.path,
                    "message": f.message,
                }
                for f in findings
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")


def split_against_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition findings into (new, grandfathered) plus stale baseline IDs."""
    fresh: list[Finding] = []
    known: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        if finding.stable_id in baseline.ids:
            known.append(finding)
            seen.add(finding.stable_id)
        else:
            fresh.append(finding)
    stale = sorted(baseline.ids - seen)
    return fresh, known, stale
