"""Built-in rules; importing this package registers them all."""

from repro.analysis.checks import (  # noqa: F401
    apiparity,
    asyncsafety,
    blocking,
    compiledsurface,
    determinism,
    faultsites,
    locks,
    obsdiscipline,
    picklable,
    taxonomy,
    tierpurity,
    transitive,
)
