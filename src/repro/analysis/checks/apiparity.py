"""REP014 — engine API parity across the prediction-tier ladder.

The ROADMAP's "typed core → compiled hot loops" plan swaps engines
underneath the service layer; that only works while the rungs of the
tier ladder keep *machine-checkable* signature parity.  This graph rule
takes declared parity groups — sets of classes (or modules) that must
agree on their shared public surface — and compares the canonical
signature tokens (parameter names, order, kind, optionality; see
:func:`repro.analysis.graph.signature_tokens`) of every public method
name that two or more members both expose.  Any divergence is reported
against *both* definitions so the drifting side is obvious.

The committed group covers the three tier engines (analytic fast path,
memo store, discrete-event simulator).  Their public vocabularies are
disjoint today — the rule's value is the tripwire: the moment a
compiled `Simulator` twin (or an alternate memo tier) lands claiming an
existing name, its signature must match token-for-token or CI fails.
``self``/``cls`` receivers are dropped before comparison so module-level
functions can sit in a group next to methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.graph import FunctionInfo, ProjectGraph
from repro.analysis.rules import Rule, register

__all__ = ["ApiParityRule", "ParityGroup", "PARITY_GROUPS"]


@dataclass(frozen=True)
class ParityGroup:
    """A named set of class/module prefixes that share a public API."""

    name: str
    members: tuple[str, ...]


#: The committed parity contract for the real tree.
PARITY_GROUPS: tuple[ParityGroup, ...] = (
    ParityGroup(
        name="tier-engines",
        members=(
            "repro.analytic.model.AnalyticPredictor",
            "repro.parallel.memo.SimulationMemoStore",
            "repro.simmachine.engine.Simulator",
        ),
    ),
)


def _comparable_signature(info: FunctionInfo) -> tuple[str, ...]:
    """Signature tokens with the method receiver dropped."""
    tokens = info.signature
    if info.class_name is not None and tokens and tokens[0] in (
        "self", "cls"
    ):
        tokens = tokens[1:]
    return tokens


@register
class ApiParityRule(Rule):
    rule_id = "REP014"
    name = "engine-api-parity"
    description = (
        "tier-ladder engines must expose identical public signatures for "
        "every method name they share (guard for swapping in a compiled "
        "engine)"
    )
    needs_graph = True
    node_types = ()

    def __init__(
        self, groups: Optional[Sequence[ParityGroup]] = None
    ):
        #: Injectable for tests; defaults to the committed contract.
        self.groups = tuple(groups) if groups is not None else PARITY_GROUPS

    def run_graph(
        self, graph: ProjectGraph, report: Callable[[Finding], None]
    ) -> None:
        for group in self.groups:
            self._check_group(group, graph, report)

    def _check_group(
        self,
        group: ParityGroup,
        graph: ProjectGraph,
        report: Callable[[Finding], None],
    ) -> None:
        # member prefix -> {public name -> FunctionInfo}
        surfaces: dict[str, dict[str, FunctionInfo]] = {}
        for member in group.members:
            methods = {
                info.name: info
                for info in graph.methods_of(member)
                if info.is_public
            }
            if methods or member in graph.classes:
                surfaces[member] = methods
        names: set[str] = set()
        for methods in surfaces.values():
            names.update(methods)
        for name in sorted(names):
            owners = [
                (member, methods[name])
                for member, methods in sorted(surfaces.items())
                if name in methods
            ]
            if len(owners) < 2:
                continue
            _, reference = owners[0]
            want = _comparable_signature(reference)
            for member, info in owners[1:]:
                got = _comparable_signature(info)
                if got == want:
                    continue
                report(
                    Finding(
                        rule=self.rule_id,
                        path=info.path,
                        line=info.line,
                        col=1,
                        scope=(
                            f"{info.class_name}.{info.name}"
                            if info.class_name
                            else info.name
                        ),
                        message=(
                            f"[{group.name}] {info.qualname}"
                            f"({', '.join(got)}) diverges from "
                            f"{reference.qualname}({', '.join(want)}); "
                            "shared tier-engine methods must keep "
                            "identical signatures"
                        ),
                        witness=(
                            f"{reference.qualname} defined at "
                            f"{reference.path}:{reference.line}",
                            f"{info.qualname} defined at "
                            f"{info.path}:{info.line}",
                        ),
                    )
                )
