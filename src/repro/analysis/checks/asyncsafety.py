"""REP011–REP013 — async-safety pack for the serving frontend.

PR 8's sharded frontend moved the request path onto asyncio, which has
failure modes the thread-era rules (REP002/REP003) never had to model:

* **REP011** — ``await`` while holding a *synchronous* lock.  A
  ``threading.Lock`` held across an await blocks the entire event loop
  for every other connection until the awaited I/O completes — and
  deadlocks outright if the resuming callback needs the same lock.
  Async code must use ``asyncio.Lock`` with ``async with``.
* **REP012** — blocking calls inside ``async def``.  ``time.sleep``,
  ``socket.*``, ``sqlite3``, ``subprocess``, and synchronous file I/O
  stall the event loop; they belong behind ``run_in_executor`` /
  ``asyncio.to_thread`` (calls inside those wrappers are exempt).
* **REP013** — fire-and-forget tasks.  A ``create_task`` /
  ``ensure_future`` result that is neither awaited, retained, nor
  returned can be garbage-collected mid-flight, and its exceptions
  vanish; keep a reference and await or explicitly cancel it.

All three scope to ``service/`` — the only package running an event
loop — and only inspect ``async def`` bodies, so the sync socketserver
stack (``api.py``) stays untouched by construction.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.checks.blocking import in_service_layer
from repro.analysis.rules import FileContext, Rule, dotted_name, register

__all__ = [
    "AwaitUnderSyncLockRule",
    "BlockingInAsyncRule",
    "UnretainedTaskRule",
]


def _enclosing_function(
    ancestors: list[ast.AST],
) -> Optional[ast.AST]:
    """Innermost (Async)FunctionDef enclosing the dispatch point."""
    for node in reversed(ancestors):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _in_async_def(ancestors: list[ast.AST]) -> bool:
    return isinstance(_enclosing_function(ancestors), ast.AsyncFunctionDef)


#: Lock-ish constructor paths (resolved through the import map).
_SYNC_LOCK_TYPES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Attribute suffixes that conventionally name a synchronous lock.
_LOCK_NAME_SUFFIXES = ("lock", "mutex")


def _looks_like_sync_lock(expr: ast.expr, ctx: FileContext) -> bool:
    """Heuristic: does this ``with`` context expression grab a sync lock?"""
    if isinstance(expr, ast.Call):
        resolved = ctx.imports.resolve(expr.func)
        if resolved in _SYNC_LOCK_TYPES:
            return True
        expr = expr.func  # `with self._lock.acquire_timeout(...)` etc.
    name = dotted_name(expr)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1].lower().lstrip("_")
    return any(last == s or last.endswith("_" + s) for s in _LOCK_NAME_SUFFIXES)


@register
class AwaitUnderSyncLockRule(Rule):
    rule_id = "REP011"
    name = "await-under-sync-lock"
    description = (
        "await inside a synchronous `with <lock>:` block stalls the event "
        "loop and can deadlock; use asyncio.Lock with `async with`"
    )
    node_types = (ast.Await,)

    def applies_to(self, path: str) -> bool:
        return in_service_layer(path)

    def visit(self, node: ast.Await, ctx: FileContext) -> None:
        holding: Optional[ast.withitem] = None
        # Walk outwards until the enclosing function boundary: a `with`
        # in an *outer* function does not span this await.
        for ancestor in reversed(ctx.ancestors):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if _looks_like_sync_lock(item.context_expr, ctx):
                        holding = item
                        break
            if holding is not None:
                break
        if holding is None:
            return
        held = dotted_name(holding.context_expr) or "a synchronous lock"
        ctx.report(
            self,
            node,
            f"await while holding {held} blocks every other coroutine "
            "until the awaited I/O completes; use asyncio.Lock with "
            "`async with`",
        )


#: Blocking callable paths (exact or prefix) banned inside async defs.
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "open",
        "io.open",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "socket.socket",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "sqlite3.connect",
        "urllib.request.urlopen",
    }
)
_BLOCKING_PREFIXES = ("socket.", "sqlite3.", "requests.")

#: Wrappers that legitimately carry blocking work off the event loop.
_EXECUTOR_CALLS = frozenset(
    {"run_in_executor", "to_thread"}
)


def _inside_executor_handoff(ancestors: list[ast.AST]) -> bool:
    """Whether the dispatch point sits inside a run_in_executor(...) /
    asyncio.to_thread(...) argument list."""
    for ancestor in reversed(ancestors):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if isinstance(ancestor, ast.Call):
            func = ancestor.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in _EXECUTOR_CALLS:
                return True
    return False


@register
class BlockingInAsyncRule(Rule):
    rule_id = "REP012"
    name = "blocking-in-async"
    description = (
        "blocking calls (time.sleep, socket.*, sqlite3, sync file I/O, "
        "subprocess) inside `async def` stall the event loop; hand them "
        "to run_in_executor or asyncio.to_thread"
    )
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        return in_service_layer(path)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        if not _in_async_def(ctx.ancestors):
            return
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            return
        blocking = resolved in _BLOCKING_EXACT or any(
            resolved.startswith(prefix) for prefix in _BLOCKING_PREFIXES
        )
        if not blocking:
            return
        if _inside_executor_handoff(ctx.ancestors):
            return
        ctx.report(
            self,
            node,
            f"blocking call {resolved}() inside `async def` stalls the "
            "event loop; wrap it in loop.run_in_executor or "
            "asyncio.to_thread",
        )


#: Task-spawning callables whose result must be retained.
_TASK_SPAWNERS = frozenset(
    {
        "asyncio.create_task",
        "asyncio.ensure_future",
        "loop.create_task",
    }
)


@register
class UnretainedTaskRule(Rule):
    rule_id = "REP013"
    name = "unretained-task"
    description = (
        "create_task/ensure_future results must be awaited, retained, or "
        "returned — a dropped task can be garbage-collected mid-flight "
        "and its exceptions are lost"
    )
    node_types = (ast.Expr,)

    def applies_to(self, path: str) -> bool:
        return in_service_layer(path)

    def visit(self, node: ast.Expr, ctx: FileContext) -> None:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        resolved = ctx.imports.resolve(func)
        spawner = resolved in _TASK_SPAWNERS or (
            isinstance(func, ast.Attribute)
            and func.attr in ("create_task", "ensure_future")
        )
        if not spawner:
            return
        name = resolved or dotted_name(func) or "create_task"
        ctx.report(
            self,
            node,
            f"{name}(...) result is discarded; keep a reference and "
            "await or cancel it, or its exceptions disappear",
        )
