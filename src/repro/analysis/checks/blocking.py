"""REP003 — blocking calls in the service layer must carry a timeout.

The chaos harness asserts the serving stack never deadlocks under injected
faults.  That guarantee is only as good as the blocking primitives: an
unbounded ``Queue.get()`` / ``Thread.join()`` / ``Condition.wait()`` /
``Future.result()`` turns one lost notification into a wedged thread.  In
``service/`` every such call must pass a timeout (positionally or as
``timeout=``); intentional unbounded waits need an inline suppression
naming why they cannot hang.

Zero-argument ``.get()`` is also how dicts and ContextVars are read, but
those always take a key/default in practice; the service layer has no
legitimate argless spelling of any of these calls.

Socket reads get the same treatment at the class level: a
``socketserver`` request-handler subclass must set the ``timeout`` class
attribute (socketserver's own mechanism — ``setup()`` applies it to the
connection with ``settimeout``), or every ``rfile`` read can block on a
silent peer forever.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import FileContext, Rule, register

__all__ = ["BlockingCallRule"]

#: Attribute-call names that block indefinitely when called with no
#: arguments and no ``timeout=``.
_BLOCKING_NAMES = frozenset({"get", "join", "wait", "result", "acquire"})

#: Request-handler bases whose connection reads honour a ``timeout``
#: class attribute.
_HANDLER_BASES = frozenset(
    {
        "socketserver.BaseRequestHandler",
        "socketserver.StreamRequestHandler",
        "socketserver.DatagramRequestHandler",
    }
)


def in_service_layer(path: str) -> bool:
    return "service" in path.split("/")[:-1]


@register
class BlockingCallRule(Rule):
    rule_id = "REP003"
    name = "blocking-timeouts"
    description = (
        "Queue.get()/join()/wait()/result()/acquire() and socket request "
        "handlers in service/ must carry a timeout (deadlock hygiene)"
    )
    node_types = (ast.Call, ast.ClassDef)

    def applies_to(self, path: str) -> bool:
        return in_service_layer(path)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.ClassDef):
            self._check_handler_class(node, ctx)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _BLOCKING_NAMES:
            return
        if node.args:
            return  # a positional arg is the timeout (or a dict key)
        if any(kw.arg == "timeout" for kw in node.keywords):
            return
        ctx.report(
            self,
            node,
            f".{func.attr}() without a timeout can block forever; pass "
            "timeout= or justify with a suppression",
        )

    def _check_handler_class(
        self, node: ast.ClassDef, ctx: FileContext
    ) -> None:
        if not any(
            ctx.imports.resolve(base) in _HANDLER_BASES for base in node.bases
        ):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "timeout"
                for t in stmt.targets
            ):
                return
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "timeout"
            ):
                return
        ctx.report(
            self,
            node,
            "socketserver request handler without a `timeout` class "
            "attribute; reads from a silent peer block forever",
        )
