"""REP015 — compiled-surface purity for the engine allowlist.

The simulation hot core (``simmachine/engine.py``, ``memory.py``,
``network.py`` and ``simmpi/comm.py``) is eligible for ahead-of-time
compilation: the C engine mirrors ``engine.py`` class for class, and the
optional mypyc gate in ``setup.py`` compiles the other three.  Compiled
modules resolve attributes at build time, so the dynamics CPython happily
tolerates become silent divergence there:

* a module-level ``__getattr__`` intercepts lookups the compiled module
  resolves statically — the hook simply never fires after compilation;
* mutating ``globals()`` rebinds names the compiled code already closed
  over, so interpreted and compiled runs read different objects;
* monkeypatch-style attribute assignment on a class defined in the module
  (``Simulator.step = fast_step`` / ``setattr(Event, ...)``) does not
  affect compiled method calls, which bypass the class dict.

Any of these would make the pure and compiled backends drift apart while
both "work", defeating the bit-identity contract the backend matrix
tests pin.  So the surface is kept statically resolvable, structurally,
like REP009 keeps it observability-free.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import FileContext, Rule, register

__all__ = ["CompiledSurfaceRule"]

#: Files eligible for compilation, keyed by the package directory that
#: must appear somewhere on their path.
SIMMACHINE_FILES = frozenset({"engine.py", "memory.py", "network.py"})
SIMMPI_FILES = frozenset({"comm.py"})

#: ``globals().<method>(...)`` calls that mutate the module namespace.
_GLOBALS_MUTATORS = frozenset(
    {"update", "pop", "popitem", "setdefault", "clear", "__setitem__", "__delitem__"}
)


def on_compiled_surface(path: str) -> bool:
    parts = path.split("/")
    name = parts[-1]
    if name in SIMMACHINE_FILES:
        return "simmachine" in parts[:-1]
    if name in SIMMPI_FILES:
        return "simmpi" in parts[:-1]
    return False


def _is_globals_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "globals"
        and not node.args
        and not node.keywords
    )


@register
class CompiledSurfaceRule(Rule):
    rule_id = "REP015"
    name = "compiled-surface"
    description = (
        "modules on the compiled-engine allowlist (simmachine/engine.py, "
        "memory.py, network.py, simmpi/comm.py) must stay statically "
        "resolvable: no module-level __getattr__, no globals() mutation, "
        "no monkeypatch-style attribute assignment on their classes"
    )
    node_types = (
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.Assign,
        ast.AnnAssign,
        ast.AugAssign,
        ast.Delete,
        ast.Call,
    )

    def __init__(self) -> None:
        self._classes: set[str] = set()

    def applies_to(self, path: str) -> bool:
        return on_compiled_surface(path)

    def start_file(self, ctx: FileContext) -> None:
        self._classes = {
            stmt.name
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.ClassDef)
        }

    def _at_module_level(self, ctx: FileContext) -> bool:
        return not any(
            isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            for node in ctx.ancestors
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "__getattr__" and self._at_module_level(ctx):
                ctx.report(
                    self, node,
                    "module-level __getattr__ on the compiled surface; "
                    "compiled modules resolve attributes at build time and "
                    "never call the hook — export names statically",
                )
            return

        if isinstance(node, ast.Call):
            self._check_call(node, ctx)
            return

        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _is_globals_call(
                    target.value
                ):
                    ctx.report(
                        self, node,
                        "del through globals() on the compiled surface; "
                        "compiled code closes over module globals at build "
                        "time, so namespace mutation silently diverges",
                    )
            return

        # Assign / AnnAssign / AugAssign
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            self._check_bind_target(target, node, ctx)

    def _check_bind_target(
        self, target: ast.AST, node: ast.AST, ctx: FileContext
    ) -> None:
        if isinstance(target, ast.Subscript) and _is_globals_call(
            target.value
        ):
            ctx.report(
                self, node,
                "assignment through globals() on the compiled surface; "
                "compiled code closes over module globals at build time, "
                "so namespace mutation silently diverges",
            )
            return
        if (
            isinstance(target, ast.Name)
            and target.id == "__getattr__"
            and self._at_module_level(ctx)
        ):
            ctx.report(
                self, node,
                "module-level __getattr__ on the compiled surface; "
                "compiled modules resolve attributes at build time and "
                "never call the hook — export names statically",
            )
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in self._classes
        ):
            ctx.report(
                self, node,
                f"attribute assigned on class {target.value.id} outside "
                "its body; compiled method calls bypass the class dict, "
                "so monkeypatching diverges from the compiled backend",
            )

    def _check_call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and _is_globals_call(func.value)
            and func.attr in _GLOBALS_MUTATORS
        ):
            ctx.report(
                self, node,
                f"globals().{func.attr}(...) on the compiled surface; "
                "compiled code closes over module globals at build time, "
                "so namespace mutation silently diverges",
            )
            return
        if (
            isinstance(func, ast.Name)
            and func.id in ("setattr", "delattr")
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in self._classes
        ):
            ctx.report(
                self, node,
                f"{func.id}() on class {node.args[0].id}; compiled method "
                "calls bypass the class dict, so monkeypatching diverges "
                "from the compiled backend",
            )
