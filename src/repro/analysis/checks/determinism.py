"""REP001 — no wall clocks or unseeded randomness in the deterministic tier.

The whole coupling methodology substitutes a *deterministic* simulated
machine for the paper's 2002 IBM SP: identical inputs must produce
bit-identical measurements, or cached/memoized results stop being
interchangeable with fresh runs.  This rule bans ambient-entropy calls —
wall clocks and process-global or unseeded RNGs — inside the deterministic
tier (``simmachine/``, ``npb/``, ``core/``, ``faults.py``).  Seeded
generators (``random.Random(seed)``, ``np.random.default_rng(seed)``,
``np.random.PCG64(seed)``) are the sanctioned sources.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import FileContext, Rule, register

__all__ = ["DeterminismRule"]

#: Path components that mark a file as part of the deterministic tier.
DETERMINISTIC_DIRS = frozenset({"simmachine", "npb", "core"})
DETERMINISTIC_FILES = frozenset({"faults.py"})

#: Canonical callable paths that read wall clocks.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "datetime.today",
        "datetime.utcnow",
        "date.today",
    }
)

#: ``datetime.now()`` is only ambient without an explicit tz argument; the
#: issue bans the argless form specifically.
_ARGLESS_ONLY = frozenset(
    {"datetime.datetime.now", "datetime.now"}
)

#: Module-level ``random.*`` functions that draw from the shared global RNG.
_GLOBAL_RANDOM = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` legacy module-level functions (shared global state).
_NUMPY_GLOBAL_RANDOM = frozenset(
    {
        "rand", "randn", "random", "random_sample", "ranf", "sample",
        "randint", "random_integers", "choice", "shuffle", "permutation",
        "seed", "normal", "uniform", "standard_normal", "exponential",
        "poisson", "binomial", "beta", "gamma", "bytes",
    }
)


def in_deterministic_tier(path: str) -> bool:
    parts = path.split("/")
    if parts[-1] in DETERMINISTIC_FILES:
        return True
    return any(part in DETERMINISTIC_DIRS for part in parts[:-1])


@register
class DeterminismRule(Rule):
    rule_id = "REP001"
    name = "determinism"
    description = (
        "no wall clocks or unseeded/global RNG calls inside the "
        "deterministic tier (simmachine/, npb/, core/, faults.py)"
    )
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        return in_deterministic_tier(path)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            return
        if resolved in _CLOCK_CALLS:
            ctx.report(
                self, node,
                f"wall-clock call {resolved}() in the deterministic tier; "
                "derive times from the simulated clock",
            )
            return
        if resolved in _ARGLESS_ONLY and not node.args and not node.keywords:
            ctx.report(
                self, node,
                f"argless {resolved}() reads the host clock; the "
                "deterministic tier must not observe wall time",
            )
            return
        if resolved == "random.Random" and not node.args and not node.keywords:
            ctx.report(
                self, node,
                "unseeded random.Random() seeds from OS entropy; pass an "
                "explicit seed",
            )
            return
        if resolved == "random.SystemRandom":
            ctx.report(
                self, node,
                "random.SystemRandom is unseedable OS entropy; use a seeded "
                "random.Random",
            )
            return
        head, _, tail = resolved.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM:
            ctx.report(
                self, node,
                f"module-level random.{tail}() uses the shared global RNG; "
                "draw from a seeded random.Random instance",
            )
            return
        if head == "numpy.random" and tail in _NUMPY_GLOBAL_RANDOM:
            ctx.report(
                self, node,
                f"numpy.random.{tail}() uses numpy's global RNG state; use "
                "a seeded np.random.Generator",
            )
            return
        if (
            resolved == "numpy.random.default_rng"
            and not node.args
            and not node.keywords
        ):
            ctx.report(
                self, node,
                "np.random.default_rng() without a seed draws OS entropy; "
                "pass an explicit seed",
            )
