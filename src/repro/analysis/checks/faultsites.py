"""REP004 — fault-site strings and the registered site table stay in sync.

:mod:`repro.faults` owns a ``SITES`` table naming every checkpoint the
chaos harness can perturb.  Two drift modes silently weaken the harness:

* a ``faults.check("...")`` call with a typo'd or unregistered site is
  permanently inert (no plan can ever arm it), and
* a registered site that no code checks any more is dead weight that chaos
  plans still "cover" on paper.

This is a cross-file rule: it captures the ``SITES`` dict literal when it
walks ``faults.py`` and collects every literal ``check(...)`` site string,
then reconciles the two at end of run.  When ``faults.py`` is not part of
the analyzed set (a partial run), both checks stand down — there is no
table to reconcile against.
"""

from __future__ import annotations

import ast
from typing import Callable, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

__all__ = ["FaultSiteRule"]


@register
class FaultSiteRule(Rule):
    rule_id = "REP004"
    name = "fault-site-consistency"
    description = (
        "every faults.check(site) literal is registered in faults.SITES "
        "and every registered site is checked somewhere"
    )
    node_types = (ast.Call, ast.Assign, ast.AnnAssign)

    def __init__(self) -> None:
        #: site -> list of (path, line, col, scope) where check() names it
        self._checks: dict[str, list[tuple[str, int, int, str]]] = {}
        self._sites: Optional[dict[str, int]] = None  # site -> lineno
        self._sites_path: Optional[str] = None
        self._sites_line: int = 1
        self._current_is_faults = False

    def start_file(self, ctx: FileContext) -> None:
        self._current_is_faults = ctx.path.split("/")[-1] == "faults.py"

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._maybe_capture_sites(node, ctx)
            return
        if not isinstance(node, ast.Call):
            return
        resolved = ctx.imports.resolve(node.func)
        if resolved is None or not resolved.endswith(".check"):
            return
        if "faults" not in resolved.split("."):
            return
        if not node.args:
            return
        site = node.args[0]
        if isinstance(site, ast.Constant) and isinstance(site.value, str):
            self._checks.setdefault(site.value, []).append(
                (ctx.path, node.lineno, node.col_offset + 1, ctx.scope())
            )

    def _maybe_capture_sites(self, node: ast.AST, ctx: FileContext) -> None:
        if not self._current_is_faults:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        if not any(
            isinstance(t, ast.Name) and t.id == "SITES" for t in targets
        ):
            return
        if not isinstance(node.value, ast.Dict):
            return
        sites: dict[str, int] = {}
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                sites[key.value] = key.lineno
        self._sites = sites
        self._sites_path = ctx.path
        self._sites_line = node.lineno

    def end_run(self, report: Callable[[Finding], None]) -> None:
        if self._sites is None:
            return  # partial run without faults.py: nothing to verify
        for site, uses in sorted(self._checks.items()):
            if site in self._sites:
                continue
            for path, line, col, scope in uses:
                report(
                    Finding(
                        rule=self.rule_id,
                        path=path,
                        line=line,
                        col=col,
                        scope=scope,
                        message=(
                            f"fault site {site!r} is not registered in "
                            "faults.SITES; the checkpoint can never fire"
                        ),
                    )
                )
        for site, lineno in sorted(self._sites.items()):
            if site in self._checks:
                continue
            report(
                Finding(
                    rule=self.rule_id,
                    path=self._sites_path or "faults.py",
                    line=lineno,
                    col=1,
                    scope="SITES",
                    message=(
                        f"registered fault site {site!r} is never passed to "
                        "faults.check(); remove it or wire the checkpoint"
                    ),
                )
            )
