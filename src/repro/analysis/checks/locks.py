"""REP002 — lock discipline: guarded classes mutate state under their lock.

Any class that creates a ``threading.Lock``/``RLock``/``Condition``
attribute has declared that its instances are shared across threads.  From
that point on, every assignment to a ``self.<attr>`` outside ``__init__``
must happen lexically inside a ``with self.<lock>:`` block (any of the
class's lock attributes counts — lock-to-field mapping is a design fact
this checker cannot infer).  This is a lightweight race detector for the
service/obs/instrument layers: it catches the easy-to-miss unguarded
flag flip, not every data race.

Only *direct attribute assignments* are checked (``self.x = ...``,
``self.x += 1``, tuple-unpacking targets).  Mutating method calls
(``self._entries.pop(...)``) and subscript stores are out of scope — they
are usually guarded by the same ``with`` blocks this rule verifies, and
flagging them would drown the signal in container-API noise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules import FileContext, Rule, dotted_name, register

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
    }
)

#: Methods where unguarded writes are fine: the instance is not yet (or no
#: longer) visible to other threads.
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _self_attr_targets(node: ast.AST) -> Iterator[ast.Attribute]:
    """Yield every ``self.x`` inside an assignment target (incl. tuples)."""
    if _is_self_attr(node):
        yield node
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _self_attr_targets(element)
    elif isinstance(node, ast.Starred):
        yield from _self_attr_targets(node.value)


def _lock_factory(node: ast.AST, ctx: FileContext) -> bool:
    """Whether an expression constructs a lock/condition object."""
    if not isinstance(node, ast.Call):
        return False
    resolved = ctx.imports.resolve(node.func)
    if resolved in _LOCK_FACTORIES:
        return True
    # dataclass-style: field(default_factory=threading.Lock)
    if resolved is not None and resolved.endswith("field"):
        for keyword in node.keywords:
            if keyword.arg == "default_factory":
                if ctx.imports.resolve(keyword.value) in _LOCK_FACTORIES:
                    return True
    return False


@register
class LockDisciplineRule(Rule):
    rule_id = "REP002"
    name = "lock-discipline"
    description = (
        "classes that create a threading lock must mutate self attributes "
        "inside `with self.<lock>:` (outside __init__)"
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.ClassDef, ctx: FileContext) -> None:
        lock_attrs = self._collect_lock_attrs(node, ctx)
        if not lock_attrs:
            return
        scope_base = ctx.scope()
        prefix = f"{scope_base}.{node.name}" if scope_base else node.name
        for method in node.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name in _EXEMPT_METHODS:
                continue
            self._check_method(method, node, lock_attrs, ctx, prefix)

    # -- discovery ------------------------------------------------------------

    def _collect_lock_attrs(
        self, cls: ast.ClassDef, ctx: FileContext
    ) -> frozenset[str]:
        attrs: set[str] = set()
        for sub in ast.walk(cls):
            if isinstance(sub, ast.Assign):
                if _lock_factory(sub.value, ctx):
                    for target in sub.targets:
                        if _is_self_attr(target):
                            attrs.add(target.attr)
                        elif isinstance(target, ast.Name):
                            # class-level: LOCK = threading.Lock()
                            attrs.add(target.id)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if _lock_factory(sub.value, ctx):
                    if _is_self_attr(sub.target):
                        attrs.add(sub.target.attr)
                    elif isinstance(sub.target, ast.Name):
                        attrs.add(sub.target.id)
        return frozenset(attrs)

    # -- enforcement ----------------------------------------------------------

    def _check_method(
        self,
        method: ast.AST,
        cls: ast.ClassDef,
        lock_attrs: frozenset[str],
        ctx: FileContext,
        scope_prefix: str,
    ) -> None:
        name = getattr(method, "name", "<lambda>")
        scope = f"{scope_prefix}.{name}"
        self._scan(method, cls, lock_attrs, ctx, scope, guarded=False)

    def _scan(
        self,
        node: ast.AST,
        cls: ast.ClassDef,
        lock_attrs: frozenset[str],
        ctx: FileContext,
        scope: str,
        guarded: bool,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                continue  # nested classes get their own ClassDef dispatch
            child_guarded = guarded
            if isinstance(child, (ast.With, ast.AsyncWith)):
                if any(
                    self._acquires_lock(item.context_expr, lock_attrs)
                    for item in child.items
                ):
                    child_guarded = True
            if not guarded and isinstance(
                child, (ast.Assign, ast.AugAssign, ast.AnnAssign)
            ):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    for attr in _self_attr_targets(target):
                        if attr.attr in lock_attrs:
                            continue
                        ctx.report(
                            self,
                            child,
                            f"self.{attr.attr} assigned outside "
                            f"`with self.<lock>:` in a lock-guarded class "
                            f"(locks: {', '.join(sorted(lock_attrs))})",
                            scope=scope,
                        )
            self._scan(child, cls, lock_attrs, ctx, scope, child_guarded)

    @staticmethod
    def _acquires_lock(expr: ast.AST, lock_attrs: frozenset[str]) -> bool:
        """``with self._lock:`` or ``with self._cond:`` over a known attr."""
        name = dotted_name(expr)
        if name is None and isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
        if name is None:
            return False
        parts = name.split(".")
        return len(parts) >= 2 and parts[0] == "self" and parts[1] in lock_attrs
