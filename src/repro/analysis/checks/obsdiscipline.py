"""REP009 — the simulator's hot loops stay observability-free.

:mod:`repro.simmachine.engine` and :mod:`repro.simmachine.memory` execute
per *event* and per *memory reference* — millions of times per campaign.
Observability there belongs one level up: :class:`Machine.run` tags the
whole run (one pointer check), the instrument layer opens spans around
measurements, and the sampling profiler attributes time statistically
from outside.  A span opened inside the event loop, or a direct import of
:mod:`repro.obs.profile`, would put dictionary writes and clock reads on
the per-event path and silently sink the throughput budget the
``BENCH_engine`` series guards — so the boundary is enforced
structurally, like REP008's tier purity.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import FileContext, Rule, register

__all__ = ["ObsDisciplineRule"]

#: Files forming the per-event hot path (within a ``simmachine`` dir).
HOT_FILES = frozenset({"engine.py", "memory.py"})

#: The profiler must observe the engine from outside, never from within.
FORBIDDEN_MODULE = "repro.obs.profile"

#: Canonical callables that open a span (``obs.span`` is the re-export).
_SPAN_CALLS = frozenset({"repro.obs.span", "repro.obs.tracing.span"})


def in_hot_path(path: str) -> bool:
    parts = path.split("/")
    return parts[-1] in HOT_FILES and "simmachine" in parts[:-1]


def _imports_profile(module: str) -> bool:
    stripped = module.lstrip(".")
    return (
        stripped == FORBIDDEN_MODULE
        or stripped.startswith(FORBIDDEN_MODULE + ".")
        or stripped == "obs.profile"
        or stripped.endswith(".obs.profile")
    )


@register
class ObsDisciplineRule(Rule):
    rule_id = "REP009"
    name = "obs-discipline"
    description = (
        "the simulator hot path (simmachine/engine.py, memory.py) must "
        "not open spans or import repro.obs.profile — per-event "
        "observability sinks the throughput budget"
    )
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    def applies_to(self, path: str) -> bool:
        return in_hot_path(path)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _imports_profile(alias.name):
                    ctx.report(
                        self, node,
                        f"hot path imports {alias.name}; the profiler "
                        "observes the engine from outside, never from "
                        "within",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            if _imports_profile(module):
                ctx.report(
                    self, node,
                    f"hot path imports from {module}; the profiler "
                    "observes the engine from outside, never from within",
                )
                return
            stripped = module.lstrip(".")
            if stripped.endswith("obs") or stripped == "repro.obs":
                for alias in node.names:
                    if alias.name == "profile":
                        ctx.report(
                            self, node,
                            f"hot path imports profile from {module}; the "
                            "profiler observes the engine from outside, "
                            "never from within",
                        )
            return
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            return
        stripped = resolved.lstrip(".")
        if stripped in _SPAN_CALLS or stripped.endswith(".obs.span"):
            ctx.report(
                self, node,
                "span opened on the simulator hot path; per-event spans "
                "cost clock reads and dict writes millions of times per "
                "campaign — tag the run from Machine.run instead",
            )
