"""REP007 — process-pool submissions must carry only picklable state.

Everything handed to a ``ProcessPoolExecutor`` crosses a pickle boundary:
the callable and every argument are serialized into the worker. Lambdas
and nested functions cannot be pickled at all (and a nested function drags
its closure with it), and live resources — ``threading`` locks, sockets,
the observability tracer — fail or silently detach when they do. The
:mod:`repro.parallel` design rule is therefore: pools run *module-level*
functions over *value-only* specs (frozen dataclasses, paths, plain data).
This check enforces that shape in ``parallel/`` code by flagging
``submit``/``map`` calls whose callable is a lambda or a function nested in
the enclosing scope, and arguments that are (or were assigned from) known
unpicklable factories.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import FileContext, Rule, register

__all__ = ["PicklablePoolRule"]

#: Path components marking files that feed process pools.
_POOL_DIRS = frozenset({"parallel"})

#: Factory calls whose results cannot cross a pickle boundary.
_UNPICKLABLE_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "socket.socket",
        "socket.create_connection",
        "obs.get_tracer",
        "repro.obs.get_tracer",
    }
)

#: Method names that ship work to an executor.
_SUBMIT_METHODS = frozenset({"submit", "map"})


@register
class PicklablePoolRule(Rule):
    rule_id = "REP007"
    name = "picklable-pool-args"
    description = (
        "parallel/ code must submit module-level callables and picklable "
        "arguments to process pools (no lambdas, nested functions, locks, "
        "sockets, or tracers)"
    )
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        parts = path.split("/")
        return any(part in _POOL_DIRS for part in parts[:-1])

    def start_file(self, ctx: FileContext) -> None:
        # Names assigned from unpicklable factories anywhere in the file:
        # passing one to submit()/map() ships the live object.
        self._tainted: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.value.func)
            if resolved in _UNPICKLABLE_FACTORIES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._tainted[target.id] = resolved

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        if (
            not isinstance(node.func, ast.Attribute)
            or node.func.attr not in _SUBMIT_METHODS
            or not node.args
        ):
            return
        callable_arg, *payload = node.args
        self._check_callable(callable_arg, node, ctx)
        for arg in payload:
            self._check_argument(arg, node, ctx)
        for keyword in node.keywords:
            if keyword.value is not None:
                self._check_argument(keyword.value, node, ctx)

    # -- the callable ------------------------------------------------------

    def _check_callable(
        self, arg: ast.AST, call: ast.Call, ctx: FileContext
    ) -> None:
        if isinstance(arg, ast.Lambda):
            ctx.report(
                self, call,
                "lambda submitted to a process pool cannot be pickled; "
                "use a module-level function",
            )
            return
        if isinstance(arg, ast.Name) and self._is_nested_function(
            arg.id, ctx
        ):
            ctx.report(
                self, call,
                f"nested function {arg.id!r} submitted to a process pool "
                "captures enclosing scope and cannot be pickled; hoist it "
                "to module level",
            )

    @staticmethod
    def _is_nested_function(name: str, ctx: FileContext) -> bool:
        """Whether ``name`` is a function defined inside an enclosing one."""
        for ancestor in ctx.ancestors:
            if not isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for sub in ast.walk(ancestor):
                if (
                    isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub is not ancestor
                    and sub.name == name
                ):
                    return True
        return False

    # -- the arguments -----------------------------------------------------

    def _check_argument(
        self, arg: ast.AST, call: ast.Call, ctx: FileContext
    ) -> None:
        if isinstance(arg, ast.Call):
            resolved = ctx.imports.resolve(arg.func)
            if resolved in _UNPICKLABLE_FACTORIES:
                ctx.report(
                    self, call,
                    f"{resolved}() result passed to a process pool cannot "
                    "cross the pickle boundary; pass plain data instead",
                )
            return
        if isinstance(arg, ast.Name) and arg.id in self._tainted:
            ctx.report(
                self, call,
                f"{arg.id!r} holds a {self._tainted[arg.id]}() result and "
                "cannot cross the pickle boundary; pass plain data instead",
            )
