"""REP005/REP006 — error taxonomy on the wire path, and broad catches.

REP005: the wire protocol promises every error response an ``error_type``
drawn from the :mod:`repro.errors` hierarchy (clients switch on it for
retry/backoff decisions).  A ``raise ValueError(...)`` inside
``service/api.py`` or ``service/engine.py`` escapes that taxonomy: it
either crashes the connection handler or surfaces as an untyped 500-style
failure.  Raises of builtin exception types are flagged there; raises of
names imported from ``repro.errors`` (or any local subclass) pass.

REP006: a bare/broad ``except`` in the service layer can swallow the typed
errors the degradation machinery routes on.  Broad catches are allowed
only with an inline justification — a trailing comment on the ``except``
line (``# noqa: BLE001 — relay to waiters`` style) or a suppression.
"""

from __future__ import annotations

import ast

from repro.analysis.checks.blocking import in_service_layer
from repro.analysis.rules import FileContext, Rule, register

__all__ = ["ErrorTaxonomyRule", "BroadExceptRule"]

#: Builtin exceptions that must not escape onto the wire untyped.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
        "BufferError", "EOFError", "Exception", "IOError", "IndexError",
        "KeyError", "LookupError", "MemoryError", "NotImplementedError",
        "OSError", "OverflowError", "ReferenceError", "RuntimeError",
        "StopIteration", "SystemError", "TypeError", "ValueError",
        "ZeroDivisionError",
    }
)

_WIRE_FILES = ("service/api.py", "service/engine.py")


@register
class ErrorTaxonomyRule(Rule):
    rule_id = "REP005"
    name = "error-taxonomy"
    description = (
        "raise statements on the wire path (service/api.py, "
        "service/engine.py) must use repro.errors types"
    )
    node_types = (ast.Raise,)

    def applies_to(self, path: str) -> bool:
        return path.endswith(_WIRE_FILES)

    def visit(self, node: ast.Raise, ctx: FileContext) -> None:
        exc = node.exc
        if exc is None:
            return  # bare re-raise keeps the original type
        if not isinstance(exc, ast.Call):
            return  # `raise err` re-raises a caught object; type unknown
        resolved = ctx.imports.resolve(exc.func)
        if resolved is None:
            return
        if resolved.startswith("repro.errors.") or ".errors." in resolved:
            return
        if resolved in _BUILTIN_EXCEPTIONS:
            ctx.report(
                self,
                node,
                f"raise {resolved} on the wire path escapes the repro.errors "
                "taxonomy; error_type would be untyped for clients",
            )


@register
class BroadExceptRule(Rule):
    rule_id = "REP006"
    name = "broad-except"
    description = (
        "bare/broad except clauses in service/ need an inline justification "
        "comment"
    )
    node_types = (ast.ExceptHandler,)

    def applies_to(self, path: str) -> bool:
        return in_service_layer(path)

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if not self._is_broad(node.type, ctx):
            return
        # An inline comment on the except line is the justification the
        # audit trail wants (`# noqa: BLE001 — relay to waiters` and
        # friends); its absence is the violation.
        line = ctx.line_text(node.lineno)
        if "#" in line:
            return
        caught = "except:" if node.type is None else "broad except"
        ctx.report(
            self,
            node,
            f"{caught} without a justification comment; narrow the type or "
            "explain why everything must be caught",
        )

    @staticmethod
    def _is_broad(type_node, ctx: FileContext) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(
                BroadExceptRule._is_broad(el, ctx) for el in type_node.elts
            )
        resolved = ctx.imports.resolve(type_node)
        return resolved in ("Exception", "BaseException")
