"""REP008 — the analytic tier must not import the event-loop simulator.

``repro.analytic`` is the serving ladder's fast rung: closed-form models
answering in microseconds precisely *because* they never run the
discrete-event engine.  An import of :mod:`repro.simmachine.engine` from
inside the package would silently turn the fast path into a slow one (or
entangle its numbers with event-loop state), so the boundary is enforced
structurally.  The rest of :mod:`repro.simmachine` stays importable — the
analytic model deliberately replays the *cache* model
(:mod:`repro.simmachine.memory`) and flattens :class:`MachineConfig`
parameters (:mod:`repro.simmachine.machine`).
"""

from __future__ import annotations

import ast

from repro.analysis.rules import FileContext, Rule, register

__all__ = ["TierPurityRule"]

#: Path component marking a file as part of the analytic tier.
ANALYTIC_DIR = "analytic"

#: The module the analytic tier must never import.
FORBIDDEN_MODULE = "repro.simmachine.engine"


def in_analytic_tier(path: str) -> bool:
    parts = path.split("/")
    return ANALYTIC_DIR in parts[:-1]


def _is_forbidden(module: str) -> bool:
    """Whether a dotted module path names (or lives under) the engine.

    Relative spellings (``..simmachine.engine``) are matched by suffix so
    the rule cannot be dodged with ``from ..simmachine import engine``.
    """
    stripped = module.lstrip(".")
    return (
        stripped == FORBIDDEN_MODULE
        or stripped.startswith(FORBIDDEN_MODULE + ".")
        or stripped == "simmachine.engine"
        or stripped.endswith(".simmachine.engine")
    )


@register
class TierPurityRule(Rule):
    rule_id = "REP008"
    name = "tier-purity"
    description = (
        "the analytic fast path (repro/analytic/) must not import "
        "repro.simmachine.engine — closed forms never run the event loop"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def applies_to(self, path: str) -> bool:
        return in_analytic_tier(path)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_forbidden(alias.name):
                    ctx.report(
                        self, node,
                        f"analytic tier imports {alias.name}; the fast path "
                        "must stay free of the event-loop simulator",
                    )
            return
        module = "." * node.level + (node.module or "")
        if _is_forbidden(module):
            ctx.report(
                self, node,
                f"analytic tier imports from {module}; the fast path must "
                "stay free of the event-loop simulator",
            )
            return
        stripped = module.lstrip(".")
        if stripped == "repro.simmachine" or stripped.endswith("simmachine"):
            for alias in node.names:
                if alias.name == "engine":
                    ctx.report(
                        self, node,
                        f"analytic tier imports engine from {module}; the "
                        "fast path must stay free of the event-loop simulator",
                    )
