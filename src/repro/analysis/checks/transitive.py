"""REP010 — *transitive* determinism over the project call graph.

REP001 bans nondeterministic primitives spelled out inside the
deterministic tier, but a single-file rule cannot see ``time.time()``
hiding two helpers away in another module.  This rule runs in analysis
phase 2: it seeds taint at every external reference to a wall clock,
process-global RNG, or ambient-environment read, propagates the taint
backwards over the project call graph, and flags any function in the
prediction tiers (``simmachine/``, ``npb/``, ``analytic/``, ``core/``)
that *reaches* such a primitive through project calls.  Every finding
carries the witness call path — the exact edge chain from the flagged
function down to the primitive — so the fix site is never a guess.

Division of labour with REP001:

* a **direct** clock/RNG call inside the tier is REP001's finding; this
  rule stays silent on it (but still uses it as a taint seed, so the
  *callers* are flagged here),
* **ambient environment reads** (``os.environ``/``os.getenv``/
  ``os.urandom``/``uuid.uuid1``...) are flagged here even when direct —
  REP001 does not cover them,
* a ``# repro: ignore[REP001]`` (or ``[REP010]``) on the primitive's
  line stops taint at the source: a justified host-clock measurement
  (``npb/miniapp.py``) does not poison everything that calls it.

Observability is exempt by construction: taint never enters or leaves
functions in ``obs`` packages.  Spans and metrics read host clocks by
design, and their readings are export-only — they never flow back into
simulated results (REP009 separately polices that the engine hot path
stays span-free).
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.checks.determinism import (
    _CLOCK_CALLS,
    _GLOBAL_RANDOM,
    _NUMPY_GLOBAL_RANDOM,
)
from repro.analysis.dataflow import TaintAnalysis
from repro.analysis.findings import Finding
from repro.analysis.graph import ExternalRef, ProjectGraph
from repro.analysis.rules import Rule, register

__all__ = ["TransitiveDeterminismRule"]

#: Path components marking the prediction tiers this rule protects.
SCOPE_DIRS = frozenset({"simmachine", "npb", "analytic", "core"})

#: Ambient-environment / entropy reads (prefix-matched), not covered by
#: REP001 but every bit as nondeterministic across hosts and runs.
_ENV_PREFIXES = (
    "os.environ",
    "os.environb",
    "os.getenv",
    "os.getenvb",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.",
)

#: Package segments whose functions never transmit taint (see module doc).
_EXEMPT_SEGMENTS = frozenset({"obs"})


def _is_env_target(target: str) -> bool:
    return any(
        target == prefix.rstrip(".") or target.startswith(prefix)
        or target.startswith(prefix + ".")
        for prefix in _ENV_PREFIXES
    )


def _is_nondet_target(target: str) -> bool:
    if target in _CLOCK_CALLS or target == "random.SystemRandom":
        return True
    head, _, tail = target.rpartition(".")
    if head == "random" and tail in _GLOBAL_RANDOM:
        return True
    if head == "numpy.random" and tail in _NUMPY_GLOBAL_RANDOM:
        return True
    return _is_env_target(target)


def _is_exempt(qualname: str) -> bool:
    parts = qualname.split(".")
    return bool(_EXEMPT_SEGMENTS & set(parts[:-1]))


@register
class TransitiveDeterminismRule(Rule):
    rule_id = "REP010"
    name = "transitive-determinism"
    description = (
        "no prediction-tier function may transitively reach wall clocks, "
        "global RNG, or environment reads through project calls "
        "(witness call path included in each finding)"
    )
    needs_graph = True
    node_types = ()

    def run_graph(
        self, graph: ProjectGraph, report: Callable[[Finding], None]
    ) -> None:
        taint = TaintAnalysis(
            graph, seed=self._seed_predicate(graph), exempt=_is_exempt
        )
        for qualname in taint.tainted():
            info = graph.functions.get(qualname)
            if info is None or not self._in_scope(info.path):
                continue
            cause = taint.cause(qualname)
            chain = taint.chain(qualname)
            primitive = chain[-1].target if chain else "?"
            if isinstance(cause, ExternalRef):
                # Directly nondeterministic: REP001 already owns clocks
                # and RNG; only ambient-environment reads are ours.
                if not _is_env_target(cause.target):
                    continue
                message = (
                    f"reads ambient environment via {cause.target}; the "
                    "prediction tiers must take configuration as explicit "
                    "arguments"
                )
            else:
                hops = len(chain) - 1
                message = (
                    f"transitively reaches nondeterministic "
                    f"{primitive} through {hops} project call hop(s); "
                    "see the witness path"
                )
            scope = qualname[len(info.module) + 1:]
            report(
                Finding(
                    rule=self.rule_id,
                    path=info.path,
                    line=cause.line,
                    col=1,
                    message=message,
                    scope="" if scope == "<module>" else scope,
                    witness=taint.witness(qualname),
                )
            )

    def _seed_predicate(
        self, graph: ProjectGraph
    ) -> Callable[[ExternalRef], bool]:
        def seed(ref: ExternalRef) -> bool:
            if not _is_nondet_target(ref.target):
                return False
            # A justified suppression on the primitive's own line stops
            # the taint at its source.
            if graph.suppressed(ref.path, "REP001", ref.line):
                return False
            if graph.suppressed(ref.path, self.rule_id, ref.line):
                return False
            return True

        return seed

    @staticmethod
    def _in_scope(path: str) -> bool:
        return bool(SCOPE_DIRS & set(path.split("/")[:-1]))
