"""The ``repro lint`` subcommand.

Exit codes follow linter convention: **0** clean (every finding fixed,
suppressed, or baselined), **1** at least one non-baselined finding, a
stale baseline entry, or a stale suppression comment (both kinds of debt
must shrink as it is paid), **2** usage/configuration errors (bad path,
unknown rule id, broken baseline).

The project call graph (analysis phase 1) can be built once and cached:
``--graph PATH`` loads a previously saved graph when every file
fingerprint still matches (and rebuilds + saves it otherwise), and
``--graph-only`` stops after the build — CI uses the pair to split the
cached graph-build step from the rule-run step.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline, split_against_baseline
from repro.analysis.graph import build_graph, load_cached
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import select_rules
from repro.analysis.visitor import Analyzer, iter_python_files
from repro.errors import ConfigurationError

__all__ = ["add_lint_arguments", "run_lint", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = "analysis-baseline.json"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="REPNNN",
        help=(
            "run only this rule (repeatable; comma lists accepted; "
            "combines with --select)"
        ),
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="append per-rule finding counts and wall time to the report",
    )
    parser.add_argument(
        "--graph", default=None, metavar="PATH",
        help=(
            "call-graph cache: load it when file fingerprints match, "
            "otherwise rebuild and save it here"
        ),
    )
    parser.add_argument(
        "--graph-only", action="store_true",
        help="build and save the call graph (requires --graph), skip rules",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the report here instead of stdout",
    )


def _selected_rule_ids(args: argparse.Namespace) -> Optional[list[str]]:
    """Merge ``--select`` and ``--rule`` into one id list (None = all)."""
    tokens: list[str] = []
    if args.select is not None:
        tokens.extend(args.select.split(","))
    for value in args.rule or ():
        tokens.extend(value.split(","))
    return tokens or None


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code."""
    try:
        rules = select_rules(_selected_rule_ids(args))
        files = iter_python_files(args.paths)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.graph_only and not args.graph:
        print("error: --graph-only requires --graph PATH", file=sys.stderr)
        return EXIT_USAGE

    # Anchor module names (and finding paths) at the invocation cwd so
    # `repro lint .` resolves cross-module imports exactly like
    # `repro lint src` does from the repo root.
    root = os.getcwd()
    graph = None
    if args.graph:
        graph = load_cached(args.graph, files, root=root)
        if graph is None:
            graph = build_graph(files, root=root)
            graph.save(args.graph)
            print(
                f"built call graph: {graph.stats()['functions']} "
                f"function(s), {graph.stats()['edges']} edge(s) "
                f"-> {args.graph}",
                file=sys.stderr,
            )
        else:
            print(f"loaded cached call graph from {args.graph}",
                  file=sys.stderr)
    if args.graph_only:
        return EXIT_CLEAN

    analyzer = Analyzer(rules, graph=graph)
    findings = analyzer.run(files, root=root)

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        Baseline.save(target, findings)
        print(
            f"wrote {target} with {len(findings)} grandfathered finding(s)",
            file=sys.stderr,
        )
        return EXIT_CLEAN
    try:
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None
            else Baseline.empty()
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    fresh, known, stale = split_against_baseline(findings, baseline)
    unused = analyzer.unused_suppressions
    if args.format == "json":
        report = render_json(
            fresh,
            grandfathered=known,
            stale_baseline=stale,
            files_analyzed=len(files),
            rules=rules,
            unused_suppressions=unused,
            stats=analyzer.stats,
        )
    else:
        report = render_text(
            fresh,
            grandfathered=known,
            stale_baseline=stale,
            files_analyzed=len(files),
            unused_suppressions=unused,
            stats=analyzer.stats if args.stats else None,
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return EXIT_FINDINGS if fresh or stale or unused else EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST invariant checks for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
