"""The ``repro lint`` subcommand.

Exit codes follow linter convention: **0** clean (every finding fixed,
suppressed, or baselined), **1** at least one non-baselined finding (or a
stale baseline entry — the baseline must shrink as debt is paid), **2**
usage/configuration errors (bad path, unknown rule id, broken baseline).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline, split_against_baseline
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import select_rules
from repro.analysis.visitor import Analyzer, iter_python_files
from repro.errors import ConfigurationError

__all__ = ["add_lint_arguments", "run_lint", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = "analysis-baseline.json"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the report here instead of stdout",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code."""
    try:
        selected = (
            args.select.split(",") if args.select is not None else None
        )
        rules = select_rules(selected)
        files = iter_python_files(args.paths)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    findings = Analyzer(rules).run(files)

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        Baseline.save(target, findings)
        print(
            f"wrote {target} with {len(findings)} grandfathered finding(s)",
            file=sys.stderr,
        )
        return EXIT_CLEAN
    try:
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None
            else Baseline.empty()
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    fresh, known, stale = split_against_baseline(findings, baseline)
    if args.format == "json":
        report = render_json(
            fresh,
            grandfathered=known,
            stale_baseline=stale,
            files_analyzed=len(files),
            rules=rules,
        )
    else:
        report = render_text(
            fresh,
            grandfathered=known,
            stale_baseline=stale,
            files_analyzed=len(files),
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return EXIT_FINDINGS if fresh or stale else EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST invariant checks for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
