"""Dataflow over the call graph — analysis **phase 2** machinery.

:class:`TaintAnalysis` is a generic seed-and-propagate pass: external
references matching a seed predicate mark their owning function as
*directly* tainted, and taint then flows backwards over call edges —
if ``g`` is tainted and ``f`` calls ``g``, ``f`` is tainted too.  A BFS
from the seed set guarantees every tainted function gets a **shortest**
witness chain, which keeps the reported paths readable and stable.

Witness chains are materialized by :meth:`TaintAnalysis.witness`: a list
of human-readable hops ending at the external primitive, e.g.::

    repro.simmachine.wavefront.sweep -> repro.npb.miniapp.run_chain
        (src/repro/simmachine/wavefront.py:88)
    repro.npb.miniapp.run_chain -> time.perf_counter
        (src/repro/npb/miniapp.py:76)

Rules own their policy via two predicates: ``seed`` decides which
external references start taint (REP010 passes the wall-clock/RNG/env
set), and ``exempt`` names functions taint may never enter or leave
(REP010 exempts ``repro.obs`` — observability reads host clocks by
design and never feeds simulated results back into predictions).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.analysis.graph import CallEdge, ExternalRef, ProjectGraph

__all__ = ["TaintAnalysis", "WitnessStep"]

#: One hop in a witness chain: either a project call edge or the final
#: external reference that seeded the taint.
WitnessStep = Union[CallEdge, ExternalRef]


class TaintAnalysis:
    """Backwards taint propagation with shortest-path witnesses."""

    def __init__(
        self,
        graph: ProjectGraph,
        seed: Callable[[ExternalRef], bool],
        exempt: Optional[Callable[[str], bool]] = None,
    ):
        self.graph = graph
        self._seed = seed
        self._exempt = exempt or (lambda qualname: False)
        #: qualname -> the step that taints it: an ExternalRef for seeds,
        #: a CallEdge into a tainted callee otherwise.
        self._cause: dict[str, WitnessStep] = {}
        self._propagate()

    def _propagate(self) -> None:
        frontier: list[str] = []
        for owner, refs in self.graph.external.items():
            if self._exempt(owner):
                continue
            for ref in refs:
                if self._seed(ref):
                    if owner not in self._cause:
                        self._cause[owner] = ref
                        frontier.append(owner)
                    break
        # BFS over reverse edges: callers of tainted functions taint too.
        while frontier:
            next_frontier: list[str] = []
            for callee in frontier:
                for edge in self.graph.callers_of(callee):
                    caller = edge.caller
                    if caller in self._cause or self._exempt(caller):
                        continue
                    self._cause[caller] = edge
                    next_frontier.append(caller)
            frontier = next_frontier

    # -- queries -----------------------------------------------------------

    def is_tainted(self, qualname: str) -> bool:
        return qualname in self._cause

    def is_directly_tainted(self, qualname: str) -> bool:
        """Tainted by its *own* external reference, not a callee's."""
        return isinstance(self._cause.get(qualname), ExternalRef)

    def cause(self, qualname: str) -> Optional[WitnessStep]:
        return self._cause.get(qualname)

    def tainted(self) -> list[str]:
        return sorted(self._cause)

    def chain(self, qualname: str) -> list[WitnessStep]:
        """The shortest hop chain from ``qualname`` to its primitive."""
        steps: list[WitnessStep] = []
        current = qualname
        while True:
            step = self._cause.get(current)
            if step is None:
                break
            steps.append(step)
            if isinstance(step, ExternalRef):
                break
            current = step.callee
        return steps

    def witness(self, qualname: str) -> tuple[str, ...]:
        """Human-readable witness path for a tainted function."""
        lines: list[str] = []
        for step in self.chain(qualname):
            if isinstance(step, ExternalRef):
                lines.append(
                    f"{step.owner} -> {step.target} "
                    f"({step.path}:{step.line})"
                )
            else:
                lines.append(
                    f"{step.caller} -> {step.callee} "
                    f"({step.path}:{step.line})"
                )
        return tuple(lines)
