"""Findings: what a rule reports, with baseline-stable identities.

A :class:`Finding` pins a rule violation to ``path:line:col``.  Its
:attr:`Finding.stable_id` deliberately excludes the line number: it hashes
``(rule, path, scope, message)`` so a finding keeps its identity while
unrelated edits shift the file, which is what lets a committed baseline
grandfather old violations without pinning byte offsets.  Two identical
violations in the same scope are disambiguated by an occurrence index
(assigned in line order), so fixing one of them retires exactly one
baseline entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable

__all__ = ["Finding", "assign_stable_ids"]

#: Pseudo-rule used for files the analyzer cannot parse.
PARSE_ERROR_RULE = "REP000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Dotted enclosing scope (``Class.method``), "" at module level.
    scope: str = ""
    #: Occurrence index among identical (rule, path, scope, message) keys.
    occurrence: int = 0
    #: Populated by :func:`assign_stable_ids`.
    stable_id: str = field(default="", compare=False)
    #: Witness call path for graph findings (``caller -> callee`` hops),
    #: excluded from identity so edge-line drift never churns baselines.
    witness: tuple[str, ...] = field(default=(), compare=False)

    @property
    def identity(self) -> tuple[str, str, str, str]:
        return (self.rule, self.path, self.scope, self.message)

    def compute_stable_id(self) -> str:
        digest = hashlib.sha256(
            "|".join(
                (self.rule, self.path, self.scope, self.message,
                 str(self.occurrence))
            ).encode("utf-8")
        ).hexdigest()[:12]
        return f"{self.rule}:{digest}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        data = {
            "id": self.stable_id,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "message": self.message,
        }
        if self.witness:
            data["witness"] = list(self.witness)
        return data


def assign_stable_ids(findings: Iterable[Finding]) -> list[Finding]:
    """Sort findings and stamp occurrence indices + stable IDs."""
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    seen: dict[tuple, int] = {}
    out: list[Finding] = []
    for finding in ordered:
        index = seen.get(finding.identity, 0)
        seen[finding.identity] = index + 1
        stamped = replace(finding, occurrence=index)
        object.__setattr__(stamped, "stable_id", stamped.compute_stable_id())
        out.append(stamped)
    return out
