"""Project-wide symbol table and call graph — analysis **phase 1**.

The single-file visitor (:mod:`repro.analysis.visitor`) sees one module at
a time, so it can only flag nondeterminism *spelled out* in the file it is
looking at.  This module builds the cross-file picture the dataflow rules
(phase 2) run over:

1. **Index.**  Every target module is parsed once and indexed: module-level
   functions, classes with their methods and bases, and an import table
   with relative imports resolved against the module's own dotted name.
2. **Link.**  Names are resolved through the import tables — including
   re-export chains through ``__init__`` modules — to the *defining*
   function, so ``from repro.service import shard; shard.route_key(...)``
   produces an edge to ``repro.service.shard.route_key`` no matter how many
   aliases the call travelled through.
3. **Edges.**  Each indexed function body contributes call edges (with the
   call site for witness paths), external references (calls or attribute
   reads that resolve outside the project — the taint seeds), and a
   bounded account of what could *not* be resolved.

Dynamic dispatch is handled, deliberately, only as far as static evidence
reaches: ``self.method()`` resolves through the enclosing class and its
project-local bases, ``super().method()`` through the bases, and
``ClassName(...)`` to ``ClassName.__init__``.  A call through a variable
(``handler()``, ``obj.run()``) is counted as a *dynamic* call — visible in
:attr:`ProjectGraph.dynamic_calls` — rather than guessed at.  Calls that
*look* project-internal but resolve to nothing are recorded in
:attr:`ProjectGraph.unresolved` as warnings; a meta-test pins their count
so resolver regressions surface as test failures, not silent blind spots.

The graph serializes to JSON with per-file content fingerprints so CI can
cache the build step (:meth:`ProjectGraph.save` / :func:`load_cached`):
a cached graph is only reused when the file set and every hash match.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.rules import dotted_name
from repro.analysis.suppressions import (
    SuppressionIndex,
    comment_lines,
    parse_suppressions,
)

__all__ = [
    "CallEdge",
    "ExternalRef",
    "FunctionInfo",
    "ProjectGraph",
    "UnresolvedCall",
    "build_graph",
    "load_cached",
    "module_name_for",
    "signature_tokens",
]

#: Bump when the serialized form changes; stale caches rebuild.
GRAPH_SCHEMA_VERSION = 1

#: Longest alias/re-export chain the resolver follows before giving up.
_MAX_ALIAS_DEPTH = 16

#: Deepest project-local inheritance chain searched for ``self.m()``.
_MAX_MRO_DEPTH = 8

#: Pseudo-function holding a module's import-time (top-level) statements.
MODULE_BODY = "<module>"


def module_name_for(path: str) -> str:
    """Dotted module name for a display path (``src/`` prefix dropped)."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = [p for p in normalized.split("/") if p and p != "."]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts)


def signature_tokens(args: ast.arguments) -> tuple[str, ...]:
    """Canonical, comparable form of a def's parameter list.

    Annotations and default *values* are deliberately excluded — parity
    (REP014) is about the calling convention: names, order, kinds, and
    whether a parameter is optional (``=?``).
    """
    tokens: list[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    first_default = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        tokens.append(arg.arg + ("=?" if index >= first_default else ""))
        if args.posonlyargs and index == len(args.posonlyargs) - 1:
            tokens.append("/")
    if args.vararg is not None:
        tokens.append("*" + args.vararg.arg)
    elif args.kwonlyargs:
        tokens.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        tokens.append(arg.arg + ("=?" if default is not None else ""))
    if args.kwarg is not None:
        tokens.append("**" + args.kwarg.arg)
    return tuple(tokens)


@dataclass(frozen=True)
class FunctionInfo:
    """One indexed function, method, or module body."""

    qualname: str
    module: str
    path: str
    line: int
    name: str
    class_name: Optional[str] = None
    is_async: bool = False
    signature: tuple[str, ...] = ()

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "name": self.name,
            "class_name": self.class_name,
            "is_async": self.is_async,
            "signature": list(self.signature),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"],
            module=data["module"],
            path=data["path"],
            line=data["line"],
            name=data["name"],
            class_name=data.get("class_name"),
            is_async=data.get("is_async", False),
            signature=tuple(data.get("signature", ())),
        )


@dataclass(frozen=True)
class CallEdge:
    """A resolved project-internal call: ``caller`` invokes ``callee``."""

    caller: str
    callee: str
    path: str
    line: int

    def to_dict(self) -> dict:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "path": self.path,
            "line": self.line,
        }


@dataclass(frozen=True)
class ExternalRef:
    """A reference leaving the project (``time.time``, ``os.environ``...)."""

    owner: str
    target: str
    path: str
    line: int
    is_call: bool

    def to_dict(self) -> dict:
        return {
            "owner": self.owner,
            "target": self.target,
            "path": self.path,
            "line": self.line,
            "is_call": self.is_call,
        }


@dataclass(frozen=True)
class UnresolvedCall:
    """A call that looked project-internal but resolved to nothing."""

    owner: str
    target: str
    path: str
    line: int

    def to_dict(self) -> dict:
        return {
            "owner": self.owner,
            "target": self.target,
            "path": self.path,
            "line": self.line,
        }


class _ClassIndex:
    """One class: its methods and the (unresolved) base expressions."""

    __slots__ = ("name", "qualname", "bases", "methods", "line")

    def __init__(self, name: str, qualname: str, line: int):
        self.name = name
        self.qualname = qualname
        self.line = line
        self.bases: list[str] = []
        self.methods: dict[str, FunctionInfo] = {}


class _ModuleIndex:
    """One module: imports, top-level defs, classes."""

    __slots__ = ("name", "path", "is_package", "imports", "functions",
                 "classes", "data", "tree")

    def __init__(self, name: str, path: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.is_package = path.endswith("__init__.py")
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, _ClassIndex] = {}
        #: Module-level assigned names (constants/tables); calls through
        #: them are dynamic dispatch, not resolver misses.
        self.data: set[str] = set()
        self.tree = tree


class ProjectGraph:
    """The indexed symbol table plus the call graph built over it."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, _ClassIndex] = {}
        self.edges: dict[str, list[CallEdge]] = {}
        self.external: dict[str, list[ExternalRef]] = {}
        self.unresolved: list[UnresolvedCall] = []
        self.dynamic_calls = 0
        self.build_seconds = 0.0
        self._modules: dict[str, _ModuleIndex] = {}
        self._packages: set[str] = set()
        self._fingerprints: dict[str, str] = {}
        self._suppressions: dict[str, SuppressionIndex] = {}
        self._reverse: Optional[dict[str, list[CallEdge]]] = None

    # -- queries -----------------------------------------------------------

    @property
    def module_names(self) -> list[str]:
        return sorted(self._modules)

    def callees(self, qualname: str) -> list[CallEdge]:
        return self.edges.get(qualname, [])

    def callers_of(self, qualname: str) -> list[CallEdge]:
        if self._reverse is None:
            reverse: dict[str, list[CallEdge]] = {}
            for edge_list in self.edges.values():
                for edge in edge_list:
                    reverse.setdefault(edge.callee, []).append(edge)
            self._reverse = reverse
        return self._reverse.get(qualname, [])

    def external_refs(self, qualname: str) -> list[ExternalRef]:
        return self.external.get(qualname, [])

    def methods_of(self, prefix: str) -> list[FunctionInfo]:
        """Public functions directly under a class or module ``prefix``."""
        out = []
        lead = prefix + "."
        for qualname, info in self.functions.items():
            if not qualname.startswith(lead):
                continue
            if "." in qualname[len(lead):]:
                continue
            if info.name == MODULE_BODY:
                continue
            out.append(info)
        return sorted(out, key=lambda f: f.qualname)

    def suppressed(self, path: str, rule: str, line: int) -> bool:
        """Whether ``rule`` is inline-suppressed at ``path:line``."""
        index = self._suppressions.get(path)
        return index is not None and index.is_suppressed(rule, line)

    def stats(self) -> dict:
        return {
            "modules": len(self._modules),
            "functions": len(self.functions),
            "edges": sum(len(v) for v in self.edges.values()),
            "external_refs": sum(len(v) for v in self.external.values()),
            "unresolved": len(self.unresolved),
            "dynamic_calls": self.dynamic_calls,
            "build_seconds": round(self.build_seconds, 4),
        }

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": GRAPH_SCHEMA_VERSION,
            "fingerprints": dict(sorted(self._fingerprints.items())),
            "functions": [
                self.functions[q].to_dict() for q in sorted(self.functions)
            ],
            "edges": [
                edge.to_dict()
                for caller in sorted(self.edges)
                for edge in self.edges[caller]
            ],
            "external": [
                ref.to_dict()
                for owner in sorted(self.external)
                for ref in self.external[owner]
            ],
            "unresolved": [u.to_dict() for u in self.unresolved],
            "dynamic_calls": self.dynamic_calls,
            "suppressions": {
                path: {
                    str(line): None if rules is None else sorted(rules)
                    for line, rules in index._by_line.items()
                }
                for path, index in sorted(self._suppressions.items())
            },
            "stats": self.stats(),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "ProjectGraph":
        graph = cls()
        graph._fingerprints = dict(data.get("fingerprints", {}))
        for raw in data.get("functions", ()):
            info = FunctionInfo.from_dict(raw)
            graph.functions[info.qualname] = info
        for raw in data.get("edges", ()):
            edge = CallEdge(raw["caller"], raw["callee"], raw["path"],
                            raw["line"])
            graph.edges.setdefault(edge.caller, []).append(edge)
        for raw in data.get("external", ()):
            ref = ExternalRef(raw["owner"], raw["target"], raw["path"],
                              raw["line"], raw["is_call"])
            graph.external.setdefault(ref.owner, []).append(ref)
        graph.unresolved = [
            UnresolvedCall(raw["owner"], raw["target"], raw["path"],
                           raw["line"])
            for raw in data.get("unresolved", ())
        ]
        graph.dynamic_calls = data.get("dynamic_calls", 0)
        for path, by_line in data.get("suppressions", {}).items():
            graph._suppressions[path] = SuppressionIndex(
                {
                    int(line): None if rules is None else frozenset(rules)
                    for line, rules in by_line.items()
                }
            )
        return graph

    # -- construction ------------------------------------------------------

    def _index_module(self, display: str, source: str,
                      tree: ast.Module) -> None:
        name = module_name_for(display)
        module = _ModuleIndex(name, display, tree)
        self._modules[name] = module
        self._packages.add(name.split(".")[0])
        self._fingerprints[display] = hashlib.sha256(
            source.encode("utf-8")
        ).hexdigest()
        self._suppressions[display] = parse_suppressions(
            source.splitlines(), comment_lines=comment_lines(source)
        )
        _collect_imports(module)
        _collect_defs(module, self)

    def _resolve(self, dotted: str, depth: int = 0) -> tuple[str, str]:
        """Resolve an absolute dotted path.

        Returns ``(kind, value)`` where kind is one of ``function``,
        ``class``, ``module``, ``external``, or ``missing`` (looked
        project-internal but nothing matched).
        """
        if depth > _MAX_ALIAS_DEPTH:
            return ("missing", dotted)
        parts = dotted.split(".")
        if parts[0] not in self._packages:
            return ("external", dotted)
        # Longest module prefix wins: `a.b.c` may be module a.b, symbol c.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            module = self._modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            return self._resolve_in_module(module, rest, depth)
        return ("missing", dotted)

    def _resolve_in_module(
        self, module: _ModuleIndex, rest: Sequence[str], depth: int
    ) -> tuple[str, str]:
        if not rest:
            return ("module", module.name)
        head = rest[0]
        if head in module.functions:
            if len(rest) == 1:
                return ("function", module.functions[head].qualname)
            return ("missing", ".".join([module.name, *rest]))
        if head in module.classes:
            klass = module.classes[head]
            if len(rest) == 1:
                return ("class", klass.qualname)
            if len(rest) == 2:
                method = self._resolve_method(klass, rest[1], depth)
                if method is not None:
                    return ("function", method.qualname)
            return ("missing", ".".join([module.name, *rest]))
        if head in module.imports:
            target = module.imports[head]
            joined = ".".join([target, *rest[1:]]) if len(rest) > 1 else target
            return self._resolve(joined, depth + 1)
        if head in module.data:
            return ("data", ".".join([module.name, *rest]))
        return ("missing", ".".join([module.name, *rest]))

    def _resolve_method(
        self, klass: _ClassIndex, method: str, depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Find ``method`` on ``klass`` or its project-local bases."""
        seen: set[str] = set()
        stack = [klass]
        hops = 0
        while stack and hops < _MAX_MRO_DEPTH * 4:
            hops += 1
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            module_name = current.qualname.rsplit(".", 1)[0]
            module = self._modules.get(module_name)
            if module is None:
                continue
            for base in current.bases:
                resolved = self._resolve_local(module, base, depth + 1)
                if resolved is not None and resolved[0] == "class":
                    base_class = self._find_class(resolved[1])
                    if base_class is not None:
                        stack.append(base_class)
        return None

    def _find_class(self, qualname: str) -> Optional[_ClassIndex]:
        module_name, _, class_name = qualname.rpartition(".")
        module = self._modules.get(module_name)
        if module is None:
            return None
        return module.classes.get(class_name)

    def _resolve_local(
        self, module: _ModuleIndex, dotted: str, depth: int = 0
    ) -> Optional[tuple[str, str]]:
        """Resolve a dotted name as spelled *inside* ``module``."""
        head, _, rest = dotted.partition(".")
        if head in module.functions and not rest:
            return ("function", module.functions[head].qualname)
        if head in module.classes:
            if not rest:
                return ("class", module.classes[head].qualname)
            if "." not in rest:
                method = self._resolve_method(
                    module.classes[head], rest, depth
                )
                if method is not None:
                    return ("function", method.qualname)
            return ("missing", f"{module.name}.{dotted}")
        if head in module.imports:
            target = module.imports[head]
            joined = f"{target}.{rest}" if rest else target
            return self._resolve(joined, depth + 1)
        if head in module.data:
            return ("data", f"{module.name}.{dotted}")
        return None


def _collect_imports(module: _ModuleIndex) -> None:
    """Fill ``module.imports`` with local name -> absolute dotted path."""
    package_parts = module.name.split(".")
    if not module.is_package:
        package_parts = package_parts[:-1]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    module.imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts
                if node.level > 1:
                    base_parts = base_parts[: -(node.level - 1)]
                base = ".".join(base_parts)
                absolute = (
                    f"{base}.{node.module}" if node.module else base
                )
            else:
                absolute = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{absolute}.{alias.name}"


def _collect_defs(module: _ModuleIndex, graph: ProjectGraph) -> None:
    """Index module-level functions, classes, and their methods."""
    body_name = f"{module.name}.{MODULE_BODY}"
    graph.functions[body_name] = FunctionInfo(
        qualname=body_name,
        module=module.name,
        path=module.path,
        line=1,
        name=MODULE_BODY,
    )
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=f"{module.name}.{node.name}",
                module=module.name,
                path=module.path,
                line=node.lineno,
                name=node.name,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                signature=signature_tokens(node.args),
            )
            module.functions[node.name] = info
            graph.functions[info.qualname] = info
        elif isinstance(node, ast.ClassDef):
            klass = _ClassIndex(
                node.name, f"{module.name}.{node.name}", node.lineno
            )
            for base in node.bases:
                base_name = dotted_name(base)
                if base_name is not None:
                    klass.bases.append(base_name)
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    info = FunctionInfo(
                        qualname=f"{klass.qualname}.{item.name}",
                        module=module.name,
                        path=module.path,
                        line=item.lineno,
                        name=item.name,
                        class_name=node.name,
                        is_async=isinstance(item, ast.AsyncFunctionDef),
                        signature=signature_tokens(item.args),
                    )
                    klass.methods[item.name] = info
                    graph.functions[info.qualname] = info
            module.classes[node.name] = klass
            graph.classes[klass.qualname] = klass
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module.data.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            module.data.add(element.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                module.data.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # One level of conditional definitions (TYPE_CHECKING guards,
            # optional-dependency fallbacks) keeps the resolver honest.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            module.data.add(target.id)


class _EdgeCollector(ast.NodeVisitor):
    """Walk one module attributing calls/references to indexed functions."""

    def __init__(self, module: _ModuleIndex, graph: ProjectGraph):
        self.module = module
        self.graph = graph
        self._owner_stack: list[str] = [f"{module.name}.{MODULE_BODY}"]
        self._class_stack: list[_ClassIndex] = []
        self._seen_external: set[tuple[str, str, int]] = set()

    # -- scope maintenance -------------------------------------------------

    def _enter_function(self, node) -> None:
        if self._class_stack and len(self._owner_stack) == 1:
            owner = f"{self._class_stack[-1].qualname}.{node.name}"
        elif len(self._owner_stack) == 1 and not self._class_stack:
            owner = f"{self.module.name}.{node.name}"
        else:
            # Nested def: attribute its body to the enclosing function.
            owner = self._owner_stack[-1]
        if owner not in self.graph.functions:
            owner = self._owner_stack[-1]
        self._owner_stack.append(owner)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._owner_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        klass = self.module.classes.get(node.name)
        if klass is not None and len(self._owner_stack) == 1:
            self._class_stack.append(klass)
            for child in ast.iter_child_nodes(node):
                self.visit(child)
            self._class_stack.pop()
        else:
            self.generic_visit(node)

    # -- references --------------------------------------------------------

    @property
    def _owner(self) -> str:
        return self._owner_stack[-1]

    def visit_Call(self, node: ast.Call) -> None:
        self._handle_call(node)
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # A bare attribute chain (`os.environ[...]`, `sys.argv`): resolve
        # through the import table; external chains become taint seeds.
        dotted = dotted_name(node)
        if dotted is not None:
            self._record_reference(node, dotted, is_call=False)
            return  # the chain is consumed whole; don't descend
        self.generic_visit(node)

    def _handle_call(self, node: ast.Call) -> None:
        func = node.func
        # super().method() — resolve through the enclosing class's bases.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self._class_stack
        ):
            method = self.graph._resolve_method(
                self._class_stack[-1], func.attr
            )
            if method is not None and method.qualname != self._owner:
                self._add_edge(method.qualname, node)
            else:
                self.graph.dynamic_calls += 1
            return
        dotted = dotted_name(func)
        if dotted is None:
            # Call on a computed expression: bounded dynamic dispatch.
            self.graph.dynamic_calls += 1
            return
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and self._class_stack and rest:
            if "." in rest:
                # self.attr.method() — attr's type is not tracked.
                self.graph.dynamic_calls += 1
                return
            method = self.graph._resolve_method(self._class_stack[-1], rest)
            if method is not None:
                self._add_edge(method.qualname, node)
            else:
                self.graph.dynamic_calls += 1
            return
        self._record_reference(node, dotted, is_call=True)

    def _record_reference(
        self, node: ast.AST, dotted: str, is_call: bool
    ) -> None:
        head = dotted.partition(".")[0]
        local = (
            head in self.module.functions
            or head in self.module.classes
            or head in self.module.imports
        )
        if not local:
            if is_call:
                if head in _BUILTIN_CALLS:
                    self._add_external(f"builtins.{dotted}", node, is_call)
                else:
                    # A local variable or parameter: dynamic dispatch.
                    self.graph.dynamic_calls += 1
            return
        resolved = self.graph._resolve_local(self.module, dotted)
        if resolved is None:
            self.graph.dynamic_calls += 1
            return
        kind, value = resolved
        if kind == "function":
            if is_call:
                self._add_edge(value, node)
            return
        if kind == "class":
            if is_call:
                klass = self.graph._find_class(value)
                init = (
                    self.graph._resolve_method(klass, "__init__")
                    if klass is not None
                    else None
                )
                if init is not None:
                    self._add_edge(init.qualname, node)
            return
        if kind == "external":
            self._add_external(value, node, is_call)
            return
        if kind == "module":
            return
        if kind == "data":
            if is_call:
                self.graph.dynamic_calls += 1
            return
        if is_call:  # kind == "missing"
            self.graph.unresolved.append(
                UnresolvedCall(
                    owner=self._owner,
                    target=value,
                    path=self.module.path,
                    line=getattr(node, "lineno", 1),
                )
            )

    def _add_edge(self, callee: str, node: ast.AST) -> None:
        self.graph.edges.setdefault(self._owner, []).append(
            CallEdge(
                caller=self._owner,
                callee=callee,
                path=self.module.path,
                line=getattr(node, "lineno", 1),
            )
        )

    def _add_external(
        self, target: str, node: ast.AST, is_call: bool
    ) -> None:
        line = getattr(node, "lineno", 1)
        key = (self._owner, target, line)
        if key in self._seen_external:
            return
        self._seen_external.add(key)
        self.graph.external.setdefault(self._owner, []).append(
            ExternalRef(
                owner=self._owner,
                target=target,
                path=self.module.path,
                line=line,
                is_call=is_call,
            )
        )


#: Builtins whose *calls* are worth recording as external references.
_BUILTIN_CALLS = frozenset({"open", "input", "exec", "eval", "__import__"})


def build_graph(
    files: Sequence[str], root: Optional[str] = None
) -> ProjectGraph:
    """Index ``files`` and build the project call graph (phase 1)."""
    import time as _time  # wall time is reporting-only, never in results

    started = _time.perf_counter()
    graph = ProjectGraph()
    for path in files:
        display = os.path.relpath(path, root) if root else path
        display = display.replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError):
            continue  # the per-file visitor reports parse errors (REP000)
        graph._index_module(display, source, tree)
    for module in graph._modules.values():
        _EdgeCollector(module, graph).visit(module.tree)
    graph.build_seconds = _time.perf_counter() - started
    return graph


def load_cached(
    cache_path: str, files: Sequence[str], root: Optional[str] = None
) -> Optional[ProjectGraph]:
    """Load a saved graph if it exactly matches the current file set."""
    if not os.path.exists(cache_path):
        return None
    try:
        with open(cache_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("version") != GRAPH_SCHEMA_VERSION:
        return None
    saved = data.get("fingerprints", {})
    current: dict[str, str] = {}
    for path in files:
        display = os.path.relpath(path, root) if root else path
        display = display.replace(os.sep, "/")
        try:
            with open(path, "rb") as handle:
                current[display] = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            return None
    if saved != current:
        return None
    graph = ProjectGraph.from_dict(data)
    # The serialized module index is not retained; rebuild cheap queries
    # only.  Rules consume functions/edges/external/suppressions, all of
    # which round-trip.
    return graph
