"""Text and JSON reporters for analysis findings."""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.visitor import UnusedSuppression

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    files_analyzed: int = 0,
    unused_suppressions: Sequence[UnusedSuppression] = (),
    stats: Optional[dict] = None,
) -> str:
    """Human-readable report: one ``path:line:col`` line per finding."""
    lines = []
    for f in findings:
        lines.append(f"{f.location()}: {f.rule} {f.message}  [{f.stable_id}]")
        for hop in f.witness:
            lines.append(f"    via {hop}")
    if stale_baseline:
        lines.append("")
        lines.append(
            "stale baseline entries (fixed or renamed — regenerate with "
            "--update-baseline):"
        )
        lines.extend(f"  {stale_id}" for stale_id in stale_baseline)
    if unused_suppressions:
        lines.append("")
        lines.append(
            "stale suppressions (the comment excused nothing — fix or "
            "remove it):"
        )
        lines.extend(f"  {entry.describe()}" for entry in unused_suppressions)
    if stats:
        lines.append("")
        lines.append(
            f"analysis: {stats.get('analysis_seconds', 0.0):.3f}s over "
            f"{stats.get('files', files_analyzed)} file(s)"
        )
        graph = stats.get("graph")
        if graph:
            lines.append(
                f"call graph: {graph['functions']} function(s), "
                f"{graph['edges']} edge(s), {graph['unresolved']} "
                f"unresolved, {graph['dynamic_calls']} dynamic "
                f"({graph['build_seconds']:.3f}s build)"
            )
        for rule_id, entry in sorted(stats.get("rules", {}).items()):
            lines.append(
                f"  {rule_id}: {entry['findings']} finding(s) in "
                f"{entry['seconds']:.3f}s"
            )
    lines.append("")
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    breakdown = ", ".join(
        f"{rule}={count}" for rule, count in sorted(by_rule.items())
    )
    summary = (
        f"{len(findings)} finding(s) in {files_analyzed} file(s)"
        + (f" ({breakdown})" if breakdown else "")
        + (f"; {len(grandfathered)} baselined" if grandfathered else "")
        + (
            f"; {len(unused_suppressions)} stale suppression(s)"
            if unused_suppressions
            else ""
        )
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    files_analyzed: int = 0,
    rules: Optional[Sequence] = None,
    unused_suppressions: Sequence[UnusedSuppression] = (),
    stats: Optional[dict] = None,
) -> str:
    """Machine-readable report (the CI artifact format)."""
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    document = {
        "version": 2,
        "files_analyzed": files_analyzed,
        "findings": [f.to_dict() for f in findings],
        "baselined": [f.to_dict() for f in grandfathered],
        "stale_baseline": list(stale_baseline),
        "unused_suppressions": [
            entry.to_dict() for entry in unused_suppressions
        ],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "stale_suppressions": len(unused_suppressions),
        },
    }
    if stats is not None:
        document["stats"] = stats
    if rules is not None:
        document["rules"] = [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "description": rule.description,
            }
            for rule in rules
        ]
    return json.dumps(document, indent=2, sort_keys=True)
