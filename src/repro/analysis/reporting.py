"""Text and JSON reporters for analysis findings."""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    files_analyzed: int = 0,
) -> str:
    """Human-readable report: one ``path:line:col`` line per finding."""
    lines = [
        f"{f.location()}: {f.rule} {f.message}  [{f.stable_id}]"
        for f in findings
    ]
    if stale_baseline:
        lines.append("")
        lines.append(
            "stale baseline entries (fixed or renamed — regenerate with "
            "--update-baseline):"
        )
        lines.extend(f"  {stale_id}" for stale_id in stale_baseline)
    lines.append("")
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    breakdown = ", ".join(
        f"{rule}={count}" for rule, count in sorted(by_rule.items())
    )
    summary = (
        f"{len(findings)} finding(s) in {files_analyzed} file(s)"
        + (f" ({breakdown})" if breakdown else "")
        + (f"; {len(grandfathered)} baselined" if grandfathered else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    files_analyzed: int = 0,
    rules: Optional[Sequence] = None,
) -> str:
    """Machine-readable report (the CI artifact format)."""
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    document = {
        "version": 1,
        "files_analyzed": files_analyzed,
        "findings": [f.to_dict() for f in findings],
        "baselined": [f.to_dict() for f in grandfathered],
        "stale_baseline": list(stale_baseline),
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    if rules is not None:
        document["rules"] = [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "description": rule.description,
            }
            for rule in rules
        ]
    return json.dumps(document, indent=2, sort_keys=True)
