"""Rule protocol, per-file context, and the rule registry.

A rule is a small class with a ``rule_id``/``name``/``description`` and a
set of AST node types it wants to see.  One shared visitor
(:mod:`repro.analysis.visitor`) walks each file exactly once and dispatches
every node to the rules interested in its type — adding a rule never adds
another tree traversal.  Cross-file rules (e.g. fault-site consistency)
accumulate state per file and emit at :meth:`Rule.end_run`.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Optional, Type

from repro.analysis.findings import Finding

__all__ = [
    "Rule",
    "FileContext",
    "ImportMap",
    "register",
    "all_rules",
    "select_rules",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Alias resolution for one module: local name -> canonical dotted path.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from time import
    perf_counter as pc`` maps ``pc`` -> ``time.perf_counter``.  Relative
    imports keep their leading dots — repo-specific rules only need the
    absolute spellings.
    """

    def __init__(self, tree: ast.AST):
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute expression, or None."""
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target

    def imported_from(self, module: str) -> set[str]:
        """Local names whose canonical path lives directly under ``module``."""
        prefix = module + "."
        return {
            local
            for local, target in self._aliases.items()
            if target.startswith(prefix) and "." not in target[len(prefix):]
        }


class FileContext:
    """Everything a rule may consult while one file is being walked."""

    def __init__(
        self,
        path: str,
        tree: ast.Module,
        lines: list[str],
        report: Callable[[Finding], None],
    ):
        self.path = path
        self.tree = tree
        self.lines = lines
        self.imports = ImportMap(tree)
        #: Ancestor nodes of the one being dispatched, outermost first
        #: (maintained by the shared visitor; excludes the node itself).
        self.ancestors: list[ast.AST] = []
        self._report = report

    def scope(self) -> str:
        """Dotted Class.method scope of the current dispatch point."""
        parts = [
            node.name
            for node in self.ancestors
            if isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            )
        ]
        return ".".join(parts)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def report(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        scope: Optional[str] = None,
    ) -> None:
        self._report(
            Finding(
                rule=rule.rule_id,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                scope=self.scope() if scope is None else scope,
            )
        )


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`rule_id` (``REPnnn``), :attr:`name`,
    :attr:`description`, and :attr:`node_types` — the AST node classes they
    want dispatched to :meth:`visit`.  One rule instance lives for a whole
    analyzer run, so per-file state must be reset in :meth:`start_file`.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    node_types: tuple[Type[ast.AST], ...] = ()
    #: Graph rules opt in to analysis phase 2: the analyzer builds the
    #: project call graph once and hands it to :meth:`run_graph`.
    needs_graph: bool = False

    def applies_to(self, path: str) -> bool:
        """Whether this rule inspects ``path`` at all (cheap pre-filter)."""
        return True

    def start_file(self, ctx: FileContext) -> None:
        """Called before the file's tree is walked."""

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Called for every node whose type is in :attr:`node_types`."""

    def end_file(self, ctx: FileContext) -> None:
        """Called after the file's tree is walked."""

    def end_run(self, report: Callable[[Finding], None]) -> None:
        """Called once after every file; emit cross-file findings here."""

    def run_graph(self, graph, report: Callable[[Finding], None]) -> None:
        """Phase 2: called with the project call graph when
        :attr:`needs_graph` is set.  Findings reported here honour the
        suppression comments of the file they anchor to, like
        :meth:`end_run` findings."""


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_cls.rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> list[Type[Rule]]:
    """Every registered rule class, sorted by rule id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def select_rules(only: Optional[Iterable[str]] = None) -> list[Rule]:
    """Instantiate the registered rules, optionally restricted to ``only``."""
    classes = all_rules()
    if only is None:
        return [cls() for cls in classes]
    wanted = {token.strip().upper() for token in only if token.strip()}
    known = {cls.rule_id for cls in classes}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [cls() for cls in classes if cls.rule_id in wanted]


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (each self-registers)."""
    from repro.analysis import checks  # noqa: F401
