"""``# repro: ignore[...]`` suppression comments.

A finding is suppressed when the violating line — or the line directly
above it — carries a suppression comment naming its rule::

    t0 = time.perf_counter()  # repro: ignore[REP001] — host-clock miniapp

    # repro: ignore[REP002,REP003] reason text is free-form
    self._closed = True

A bare ``# repro: ignore`` (no bracket list) suppresses every rule on that
line; prefer the explicit form so the justification names what it excuses.
Suppressions are parsed from raw source lines (not the AST), so they work
on lines the parser folds away (decorators, multi-line calls).
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

__all__ = ["SuppressionIndex", "parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


class SuppressionIndex:
    """Per-file map of line number -> suppressed rule IDs (None = all)."""

    def __init__(self, by_line: dict[int, Optional[frozenset[str]]]):
        self._by_line = by_line

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is ignored on ``line`` (or from the line above)."""
        for candidate in (line, line - 1):
            rules = self._by_line.get(candidate, _MISSING)
            if rules is _MISSING:
                continue
            if rules is None or rule in rules:
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)


_MISSING: frozenset = frozenset(("\0missing",))


def parse_suppressions(lines: Sequence[str]) -> SuppressionIndex:
    """Scan source lines for suppression comments (1-based line numbers)."""
    by_line: dict[int, Optional[frozenset[str]]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _PATTERN.search(text)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None:
            by_line[lineno] = None
        else:
            rules = frozenset(
                token.strip().upper()
                for token in raw.split(",")
                if token.strip()
            )
            by_line[lineno] = rules or None
    return SuppressionIndex(by_line)
