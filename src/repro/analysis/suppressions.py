"""``# repro: ignore[...]`` suppression comments.

A finding is suppressed when the violating line — or the line directly
above it — carries a suppression comment naming its rule::

    t0 = time.perf_counter()  # repro: ignore[REP001] — host-clock miniapp

    # repro: ignore[REP002,REP003] reason text is free-form
    self._closed = True

A bare ``# repro: ignore`` (no bracket list) suppresses every rule on that
line; prefer the explicit form so the justification names what it excuses.
Suppressions are parsed from raw source lines (not the AST), so they work
on lines the parser folds away (decorators, multi-line calls).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Optional, Sequence

__all__ = ["SuppressionIndex", "comment_lines", "parse_suppressions"]


def comment_lines(source: str) -> Optional[set[int]]:
    """Line numbers carrying real ``#`` comment tokens.

    Returns ``None`` when the source cannot be tokenized; callers fall
    back to the permissive raw-line scan.
    """
    lines: set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    return lines

_PATTERN = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


class SuppressionIndex:
    """Per-file map of line number -> suppressed rule IDs (None = all).

    The index remembers which comment lines actually suppressed a finding
    (:attr:`used`), which is what lets the CLI flag stale suppressions the
    same way it flags stale baseline entries.
    """

    def __init__(self, by_line: dict[int, Optional[frozenset[str]]]):
        self._by_line = by_line
        #: Comment lines that matched at least one finding this run.
        self.used: set[int] = set()

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is ignored on ``line`` (or from the line above)."""
        for candidate in (line, line - 1):
            rules = self._by_line.get(candidate, _MISSING)
            if rules is _MISSING:
                continue
            if rules is None or rule in rules:
                self.used.add(candidate)
                return True
        return False

    def entries(self) -> list[tuple[int, Optional[frozenset[str]]]]:
        """All suppression comments as ``(line, rules-or-None)`` pairs."""
        return sorted(self._by_line.items())

    def unused(
        self,
        active_rules: Optional[frozenset[str]] = None,
        complete: bool = True,
    ) -> list[tuple[int, Optional[frozenset[str]]]]:
        """Suppression comments that excused nothing this run.

        When the analyzer ran a *filtered* rule set, only comments naming
        at least one active rule can be judged — a ``REP001`` suppression
        is not stale just because ``--rule REP010`` skipped REP001.  Bare
        ``# repro: ignore`` comments are only judged on a ``complete`` run.
        """
        stale: list[tuple[int, Optional[frozenset[str]]]] = []
        for line, rules in self.entries():
            if line in self.used:
                continue
            if rules is None:
                if not complete:
                    continue
            elif active_rules is not None and not (rules & active_rules):
                continue
            stale.append((line, rules))
        return stale

    def __len__(self) -> int:
        return len(self._by_line)


_MISSING: frozenset = frozenset(("\0missing",))


def parse_suppressions(
    lines: Sequence[str],
    comment_lines: Optional[set[int]] = None,
) -> SuppressionIndex:
    """Scan source lines for suppression comments (1-based line numbers).

    ``comment_lines``, when given, restricts matches to lines known to
    carry a real ``#`` comment token — this keeps suppression *examples*
    inside docstrings (like the ones in this module) from being indexed,
    which matters now that unindexed-but-unused suppressions fail the run.
    """
    by_line: dict[int, Optional[frozenset[str]]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        if comment_lines is not None and lineno not in comment_lines:
            continue
        match = _PATTERN.search(text)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None:
            by_line[lineno] = None
        else:
            rules = frozenset(
                token.strip().upper()
                for token in raw.split(",")
                if token.strip()
            )
            by_line[lineno] = rules or None
    return SuppressionIndex(by_line)
