"""The shared single-pass walker and the two-phase analyzer driver.

``Analyzer`` owns one instance of each active rule and runs analysis in
two phases.  **Phase 1** walks every target file's AST exactly once,
dispatching each node to the rules registered for its type, and — when
any active rule sets ``needs_graph`` — builds the project-wide call graph
(:mod:`repro.analysis.graph`) over the same file set.  **Phase 2** hands
that graph to the graph rules, whose findings (witness paths included)
honour the suppression comments of the file they anchor to, exactly like
per-file findings.

The analyzer also keeps the books the CLI reports on: per-rule wall time
and finding counts (``--stats``), and which suppression comments actually
excused something — the rest are *stale* and fail the run the same way
stale baseline entries do.
"""

from __future__ import annotations

import ast
import os
import time
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import (
    PARSE_ERROR_RULE,
    Finding,
    assign_stable_ids,
)
from repro.analysis.graph import ProjectGraph, build_graph
from repro.analysis.rules import FileContext, Rule, all_rules, select_rules
from repro.analysis.suppressions import (
    SuppressionIndex,
    comment_lines,
    parse_suppressions,
)

__all__ = ["Analyzer", "UnusedSuppression", "analyze_paths",
           "iter_python_files"]


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


class UnusedSuppression:
    """A ``# repro: ignore`` comment that excused nothing this run."""

    __slots__ = ("path", "line", "rules")

    def __init__(self, path: str, line: int, rules: Optional[frozenset[str]]):
        self.path = path
        self.line = line
        self.rules = rules

    def describe(self) -> str:
        names = "all rules" if self.rules is None else ", ".join(
            sorted(self.rules)
        )
        return f"{self.path}:{self.line}: unused suppression for {names}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rules": None if self.rules is None else sorted(self.rules),
        }


class Analyzer:
    """Run a set of rules over a set of files, one AST pass per file."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        graph: Optional[ProjectGraph] = None,
    ):
        self.rules = list(rules) if rules is not None else select_rules()
        #: Pre-built (cached) call graph; built on demand when None and a
        #: graph rule is active.
        self.graph = graph
        self._findings: list[Finding] = []
        self._suppressions: dict[str, SuppressionIndex] = {}
        self._rule_seconds: dict[str, float] = {}
        self.unused_suppressions: list[UnusedSuppression] = []
        self.stats: dict = {}

    # -- collection -----------------------------------------------------------

    def run(self, files: Iterable[str], root: Optional[str] = None) -> list[Finding]:
        """Analyze ``files``; paths in findings are relative to ``root``."""
        started = time.perf_counter()
        file_list = list(files)
        self._findings = []
        self._suppressions = {}
        self._rule_seconds = {rule.rule_id: 0.0 for rule in self.rules}
        self.unused_suppressions = []
        for path in file_list:
            self._run_file(path, root)
        # Phase 2: build (or reuse) the project graph for graph rules.
        graph_rules = [rule for rule in self.rules if rule.needs_graph]
        if graph_rules and self.graph is None:
            self.graph = build_graph(file_list, root=root)
        late: list[Finding] = []
        for rule in graph_rules:
            t0 = time.perf_counter()
            rule.run_graph(self.graph, late.append)
            self._rule_seconds[rule.rule_id] += time.perf_counter() - t0
        if self.graph is not None:
            # Suppressions consulted through the graph (e.g. a justified
            # primitive stopping REP010 taint at its seed) count as used.
            for path, gindex in self.graph._suppressions.items():
                mine = self._suppressions.get(path)
                if mine is not None:
                    mine.used |= gindex.used
        # Cross-file findings honour the suppression comments of the file
        # they anchor to, same as per-file ones.
        for rule in self.rules:
            t0 = time.perf_counter()
            rule.end_run(late.append)
            self._rule_seconds[rule.rule_id] += time.perf_counter() - t0
        for finding in late:
            index = self._suppressions.get(finding.path)
            if index is None or not index.is_suppressed(
                finding.rule, finding.line
            ):
                self._findings.append(finding)
        findings = assign_stable_ids(self._findings)
        self._collect_unused_suppressions()
        self._collect_stats(findings, len(file_list), started)
        return findings

    def _collect_unused_suppressions(self) -> None:
        active = frozenset(rule.rule_id for rule in self.rules)
        registered = {cls.rule_id for cls in all_rules()}
        complete = active >= registered
        for path in sorted(self._suppressions):
            index = self._suppressions[path]
            for line, rules in index.unused(active, complete=complete):
                self.unused_suppressions.append(
                    UnusedSuppression(path, line, rules)
                )

    def _collect_stats(
        self, findings: Sequence[Finding], files: int, started: float
    ) -> None:
        per_rule: dict[str, dict] = {}
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        for rule in sorted(self.rules, key=lambda r: r.rule_id):
            per_rule[rule.rule_id] = {
                "findings": counts.get(rule.rule_id, 0),
                "seconds": round(self._rule_seconds[rule.rule_id], 4),
            }
        self.stats = {
            "files": files,
            "analysis_seconds": round(time.perf_counter() - started, 4),
            "rules": per_rule,
        }
        if self.graph is not None:
            self.stats["graph"] = self.graph.stats()

    def _run_file(self, path: str, root: Optional[str]) -> None:
        display = os.path.relpath(path, root) if root else path
        display = display.replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            self._findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=display,
                    line=getattr(exc, "lineno", None) or 1,
                    col=1,
                    message=f"cannot analyze file: {exc}",
                )
            )
            return
        lines = source.splitlines()
        suppressions = parse_suppressions(
            lines, comment_lines=comment_lines(source)
        )
        self._suppressions[display] = suppressions
        collected: list[Finding] = []
        ctx = FileContext(display, tree, lines, collected.append)
        active = [rule for rule in self.rules if rule.applies_to(display)]
        if not active:
            return
        dispatch: dict[type, list[Rule]] = {}
        for rule in active:
            rule.start_file(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        self._walk(tree, ctx, dispatch)
        for rule in active:
            rule.end_file(ctx)
        for finding in collected:
            if not suppressions.is_suppressed(finding.rule, finding.line):
                self._findings.append(finding)

    def _walk(
        self,
        node: ast.AST,
        ctx: FileContext,
        dispatch: dict[type, list[Rule]],
    ) -> None:
        interested = dispatch.get(type(node))
        if interested:
            for rule in interested:
                t0 = time.perf_counter()
                rule.visit(node, ctx)
                self._rule_seconds[rule.rule_id] += time.perf_counter() - t0
        ctx.ancestors.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                self._walk(child, ctx, dispatch)
        finally:
            ctx.ancestors.pop()


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
) -> list[Finding]:
    """Convenience: expand ``paths`` and run the (default) rule set."""
    return Analyzer(rules).run(iter_python_files(paths), root=root)
