"""The shared single-pass walker and the analyzer driver.

``Analyzer`` owns one instance of each active rule, walks every target
file's AST exactly once, and dispatches each node to the rules registered
for its type.  Suppression comments are applied as findings are collected,
so a suppressed finding never reaches the reporters or the baseline.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import (
    PARSE_ERROR_RULE,
    Finding,
    assign_stable_ids,
)
from repro.analysis.rules import FileContext, Rule, select_rules
from repro.analysis.suppressions import parse_suppressions

__all__ = ["Analyzer", "analyze_paths", "iter_python_files"]


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


class Analyzer:
    """Run a set of rules over a set of files, one AST pass per file."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules = list(rules) if rules is not None else select_rules()
        self._findings: list[Finding] = []
        self._suppressions: dict[str, object] = {}

    # -- collection -----------------------------------------------------------

    def run(self, files: Iterable[str], root: Optional[str] = None) -> list[Finding]:
        """Analyze ``files``; paths in findings are relative to ``root``."""
        self._findings = []
        self._suppressions = {}
        for path in files:
            self._run_file(path, root)
        # Cross-file findings honour the suppression comments of the file
        # they anchor to, same as per-file ones.
        late: list[Finding] = []
        for rule in self.rules:
            rule.end_run(late.append)
        for finding in late:
            index = self._suppressions.get(finding.path)
            if index is None or not index.is_suppressed(
                finding.rule, finding.line
            ):
                self._findings.append(finding)
        return assign_stable_ids(self._findings)

    def _run_file(self, path: str, root: Optional[str]) -> None:
        display = os.path.relpath(path, root) if root else path
        display = display.replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            self._findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=display,
                    line=getattr(exc, "lineno", None) or 1,
                    col=1,
                    message=f"cannot analyze file: {exc}",
                )
            )
            return
        lines = source.splitlines()
        suppressions = parse_suppressions(lines)
        self._suppressions[display] = suppressions
        collected: list[Finding] = []
        ctx = FileContext(display, tree, lines, collected.append)
        active = [rule for rule in self.rules if rule.applies_to(display)]
        if not active:
            return
        dispatch: dict[type, list[Rule]] = {}
        for rule in active:
            rule.start_file(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        self._walk(tree, ctx, dispatch)
        for rule in active:
            rule.end_file(ctx)
        for finding in collected:
            if not suppressions.is_suppressed(finding.rule, finding.line):
                self._findings.append(finding)

    def _walk(
        self,
        node: ast.AST,
        ctx: FileContext,
        dispatch: dict[type, list[Rule]],
    ) -> None:
        for rule in dispatch.get(type(node), ()):
            rule.visit(node, ctx)
        ctx.ancestors.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                self._walk(child, ctx, dispatch)
        finally:
            ctx.ancestors.pop()


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
) -> list[Finding]:
    """Convenience: expand ``paths`` and run the (default) rule set."""
    return Analyzer(rules).run(iter_python_files(paths), root=root)
