"""Analytical fast-path predictor tier (the serving ladder's top rung).

``repro.analytic`` answers prediction requests in microseconds from closed
forms instead of seconds of discrete-event simulation:

* :mod:`repro.analytic.tiers` — tier labels, :class:`TierPolicy` and the
  built-in ``fast`` / ``balanced`` / ``exact`` policies;
* :mod:`repro.analytic.descriptors` — static per-kernel working-set and
  communication descriptors for BT/SP/LU;
* :mod:`repro.analytic.model` — ECM-style compute/memory replay, alpha/beta
  communication forms, the self-reported confidence, and
  :class:`AnalyticPredictor`.

The package must stay simulation-free: analysis rule REP008 forbids it
from importing :mod:`repro.simmachine.engine`.

Policy/tier symbols import eagerly (the CLI needs them at parse time);
the model stack loads on first attribute access.
"""

from repro.analytic.tiers import (
    POLICIES,
    TIER_ANALYTIC,
    TIER_MEMO,
    TIER_SIMULATION,
    TIERS,
    TierPolicy,
    policy_names,
    resolve_tier_policy,
    tier_policy_name,
)

__all__ = [
    "ANALYTIC_REL_ERROR_BOUND",
    "AnalyticModel",
    "AnalyticPredictor",
    "AnalyticReport",
    "POLICIES",
    "SUPPORTED_BENCHMARKS",
    "TIER_ANALYTIC",
    "TIER_MEMO",
    "TIER_SIMULATION",
    "TIERS",
    "TierPolicy",
    "describe",
    "policy_names",
    "resolve_tier_policy",
    "tier_policy_name",
]

_LAZY = {
    "ANALYTIC_REL_ERROR_BOUND": "repro.analytic.model",
    "AnalyticModel": "repro.analytic.model",
    "AnalyticPredictor": "repro.analytic.model",
    "AnalyticReport": "repro.analytic.model",
    "SUPPORTED_BENCHMARKS": "repro.analytic.descriptors",
    "describe": "repro.analytic.descriptors",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
