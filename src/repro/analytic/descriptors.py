"""Per-kernel working-set and communication descriptors.

The analytic tier never executes kernel generators. Instead, each supported
benchmark (BT/SP/LU) is *described*: for every kernel, how many flops each
rank performs, how many jittered work calls the body issues, which data
regions it streams through (in body order, with write flags), and which
communication phases it runs. The tables here mirror the kernel bodies in
:mod:`repro.npb` exactly — they are the closed-form twin of the generator
code, sharing the same :mod:`repro.npb.workloads` constants so the two
views cannot drift on operation counts.

:func:`describe` binds the static tables to a live
:class:`~repro.npb.base.Benchmark` (for its layout, grid and regions) and
returns plain frozen data that :mod:`repro.analytic.model` evaluates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import PredictionError
from repro.npb import workloads as w

__all__ = [
    "SUPPORTED_BENCHMARKS",
    "RankWork",
    "HaloPhase",
    "RingPhase",
    "WavefrontPhase",
    "AllreducePhase",
    "BarrierPhase",
    "KernelDescriptor",
    "BenchmarkDescriptors",
    "describe",
]

#: Benchmarks the analytic tier can describe. Anything else (CG, MG, ...)
#: raises :class:`~repro.errors.PredictionError` from :func:`describe`,
#: which the serving ladder treats as an escalation to simulation.
SUPPORTED_BENCHMARKS = ("BT", "LU", "SP")


@dataclass(frozen=True)
class RankWork:
    """One rank's computation and memory traffic for one kernel invocation.

    ``touches`` entries are ``(region, nbytes_or_None, write)`` — the exact
    argument triples the kernel body passes to
    :meth:`~repro.simmachine.memory.MemoryHierarchy.touch`, in body order.
    ``work_calls`` counts noise-jittered compute calls (one per ``work()``
    or per staged ``compute_seconds``), which fixes the expected additive
    OS-jitter floor at ``work_calls * noise_floor / 2``.
    """

    flops: float
    work_calls: int
    touches: tuple[tuple[object, Optional[int], bool], ...]


@dataclass(frozen=True)
class HaloPhase:
    """Nonblocking neighbor exchange (``Benchmark.exchange_faces``).

    ``sends[r]`` lists the byte sizes of rank ``r``'s outgoing messages
    (one per live neighbor); every send pairs with a matching receive.
    """

    sends: tuple[tuple[int, ...], ...]
    messages: int


@dataclass(frozen=True)
class RingPhase:
    """Multi-partition solve: ``stages`` cyclic sendrecv steps per rank.

    Only present when the solve direction is decomposed (``stages > 1``);
    ``boundary[r]`` is rank ``r``'s per-stage boundary payload in bytes.
    """

    stages: int
    boundary: tuple[int, ...]
    messages: int


@dataclass(frozen=True)
class WavefrontPhase:
    """LU's pipelined diagonal sweep (one plane at a time, burst sends).

    ``bursts[r]`` holds ``(messages, total_bytes)`` per outgoing direction
    of rank ``r``, issued once per z-plane; ``planes`` is the pipeline
    depth (``nz``).
    """

    lower: bool
    planes: int
    bursts: tuple[tuple[tuple[int, int], ...], ...]
    messages: int


@dataclass(frozen=True)
class AllreducePhase:
    """An allreduce of ``nbytes`` (recursive doubling / reduce+bcast)."""

    nbytes: int
    rounds: int
    messages: int


@dataclass(frozen=True)
class BarrierPhase:
    """A barrier: zero-byte reduce + broadcast over binomial trees."""

    rounds: int
    messages: int


CommPhase = object  # union of the five phase dataclasses above


@dataclass(frozen=True)
class KernelDescriptor:
    """Everything the closed forms need about one kernel."""

    name: str
    ranks: tuple[RankWork, ...]
    phases: tuple[CommPhase, ...]

    @property
    def messages(self) -> int:
        """Messages injected machine-wide by one invocation."""
        return sum(p.messages for p in self.phases)


@dataclass(frozen=True)
class BenchmarkDescriptors:
    """A full benchmark configuration, described rather than executed."""

    benchmark: str
    problem_class: str
    nprocs: int
    px: int
    py: int
    iterations: int
    pre_kernels: tuple[str, ...]
    loop_kernels: tuple[str, ...]
    post_kernels: tuple[str, ...]
    kernels: dict[str, KernelDescriptor]
    #: Per-rank data footprint of the most loaded rank (cache-edge term
    #: of the confidence model).
    max_footprint_bytes: int


# ---------------------------------------------------------------------------
# Phase builders (bind grid/layout information from the live benchmark)
# ---------------------------------------------------------------------------


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _halo(bench, bytes_per_point: int, depth: int) -> HaloPhase:
    sends = []
    for r in bench.ranks():
        nx, ny, nz = bench.layout.local_dims(r)
        msgs = []
        for dim, step in ((0, -1), (0, +1), (1, -1), (1, +1)):
            if bench.grid.neighbor(r, dim, step) is None:
                continue
            points = (ny if dim == 0 else nx) * nz
            msgs.append(bytes_per_point * points * depth)
        sends.append(tuple(msgs))
    return HaloPhase(
        sends=tuple(sends), messages=sum(len(s) for s in sends)
    )


def _ring(bench, dim: int, boundary_per_point: int) -> Optional[RingPhase]:
    stages = bench.grid.px if dim == 0 else bench.grid.py
    if stages <= 1:
        return None
    boundary = []
    for r in bench.ranks():
        nx, ny, nz = bench.layout.local_dims(r)
        face_points = (ny if dim == 0 else nx) * nz
        boundary.append(boundary_per_point * face_points)
    return RingPhase(
        stages=stages,
        boundary=tuple(boundary),
        messages=stages * bench.nprocs,
    )


def _wavefront(bench, lower: bool) -> WavefrontPhase:
    outof = +1 if lower else -1
    msg = w.LU_PIPELINE_MESSAGE_BYTES
    planes = bench.size.nz
    bursts = []
    total = 0
    for r in bench.ranks():
        nx, ny, _nz = bench.layout.local_dims(r)
        out = []
        if bench.grid.neighbor(r, 0, outof) is not None:
            out.append((ny, msg * ny))
        if bench.grid.neighbor(r, 1, outof) is not None:
            out.append((nx, msg * nx))
        bursts.append(tuple(out))
        total += planes * sum(m for m, _ in out)
    return WavefrontPhase(
        lower=lower, planes=planes, bursts=tuple(bursts), messages=total
    )


def _allreduce(bench, nbytes: int) -> AllreducePhase:
    nprocs = bench.nprocs
    if nprocs <= 1:
        return AllreducePhase(nbytes=nbytes, rounds=0, messages=0)
    k = math.ceil(math.log2(nprocs))
    if _is_pow2(nprocs):
        # Recursive doubling: every rank sends once per round.
        return AllreducePhase(nbytes=nbytes, rounds=k, messages=nprocs * k)
    # Binomial reduce then broadcast: P-1 sends each way.
    return AllreducePhase(nbytes=nbytes, rounds=2 * k, messages=2 * (nprocs - 1))


def _barrier(bench) -> BarrierPhase:
    nprocs = bench.nprocs
    if nprocs <= 1:
        return BarrierPhase(rounds=0, messages=0)
    k = math.ceil(math.log2(nprocs))
    return BarrierPhase(rounds=2 * k, messages=2 * (nprocs - 1))


# ---------------------------------------------------------------------------
# Static kernel tables: touches mirror the kernel bodies field-for-field
# ---------------------------------------------------------------------------

#: touch table entries: ``(field, write)`` or ``(field, write, divisor)``
#: where a divisor touches only ``region.nbytes // divisor`` bytes.
_BT_TOUCHES = {
    "INITIALIZATION": (("u", True), ("forcing", True), ("aux", True)),
    "COPY_FACES": (
        ("u", False), ("forcing", False), ("aux", False), ("rhs", True),
    ),
    "X_SOLVE": (("u", False), ("rhs", True), ("lhs", True)),
    "Y_SOLVE": (("u", False), ("rhs", True), ("lhs", True)),
    "Z_SOLVE": (("u", False), ("rhs", True), ("lhs", True)),
    "ADD": (("rhs", False), ("u", True)),
    "FINAL": (("u", False), ("rhs", False)),
}

_SP_TOUCHES = {
    "INITIALIZATION": (("u", True), ("forcing", True), ("aux", True)),
    "COPY_FACES": (
        ("u", False), ("forcing", False), ("aux", False), ("rhs", True),
    ),
    "TXINVR": (("aux", False), ("rhs", True)),
    "X_SOLVE": (("u", False), ("aux", False), ("rhs", True), ("lhs", True)),
    "Y_SOLVE": (("u", False), ("aux", False), ("rhs", True), ("lhs", True)),
    "Z_SOLVE": (("u", False), ("aux", False), ("rhs", True), ("lhs", True)),
    "ADD": (("rhs", False), ("u", True)),
    "FINAL": (("u", False), ("rhs", False)),
}

_LU_TOUCHES = {
    "INITIALIZATION": (("u", True), ("rsd", True), ("aux", True)),
    "ERHS": (("u", False), ("frct", True)),
    "SSOR_INIT": (("rsd", True),),
    "SSOR_ITER": (("rsd", True),),
    "SSOR_LT": (("u", False), ("rsd", True), ("jac", True)),
    "SSOR_UT": (("u", False), ("rsd", True), ("jac", True)),
    "SSOR_RS": (("frct", False), ("u", True), ("rsd", True)),
    "ERROR": (("u", False),),
    "PINTGR": (("u", False, 4),),
    "FINAL": (("rsd", False),),
}


def _bt_phases(bench, kernel: str) -> tuple:
    table: dict[str, tuple] = {
        "INITIALIZATION": (_barrier(bench),),
        "COPY_FACES": (_halo(bench, w.BT_FACE_BYTES, depth=2),),
        "X_SOLVE": (_ring(bench, 0, w.BT_SOLVE_BOUNDARY_BYTES),),
        "Y_SOLVE": (_ring(bench, 1, w.BT_SOLVE_BOUNDARY_BYTES),),
        "FINAL": (_allreduce(bench, 5 * w.DOUBLE),),
    }
    return table.get(kernel, ())


def _sp_phases(bench, kernel: str) -> tuple:
    table: dict[str, tuple] = {
        "INITIALIZATION": (_barrier(bench),),
        "COPY_FACES": (_halo(bench, w.SP_FACE_BYTES, depth=2),),
        "X_SOLVE": (_ring(bench, 0, w.SP_SOLVE_BOUNDARY_BYTES),),
        "Y_SOLVE": (_ring(bench, 1, w.SP_SOLVE_BOUNDARY_BYTES),),
        "FINAL": (_allreduce(bench, 5 * w.DOUBLE),),
    }
    return table.get(kernel, ())


def _lu_phases(bench, kernel: str) -> tuple:
    table: dict[str, tuple] = {
        "INITIALIZATION": (_barrier(bench),),
        "ERHS": (_halo(bench, w.LU_FACE_BYTES, depth=1),),
        "SSOR_INIT": (_barrier(bench),),
        "SSOR_LT": (_wavefront(bench, lower=True),),
        "SSOR_UT": (_wavefront(bench, lower=False),),
        "SSOR_RS": (
            _halo(bench, w.LU_FACE_BYTES, depth=1),
            _allreduce(bench, 5 * w.DOUBLE),
        ),
        "ERROR": (_allreduce(bench, 5 * w.DOUBLE),),
        "PINTGR": (_allreduce(bench, 3 * w.DOUBLE),),
        "FINAL": (_barrier(bench),),
    }
    return table.get(kernel, ())


def _bt_sp_work_calls(bench, kernel: str) -> int:
    if kernel == "X_SOLVE":
        return bench.grid.px
    if kernel == "Y_SOLVE":
        return bench.grid.py
    return 1


def _lu_work_calls(bench, kernel: str) -> int:
    if kernel in ("SSOR_LT", "SSOR_UT"):
        return bench.size.nz
    return 1


_SPECS: dict[str, tuple[dict, dict, Callable, Callable]] = {
    "BT": (w.BT_FLOPS_PER_POINT, _BT_TOUCHES, _bt_phases, _bt_sp_work_calls),
    "SP": (w.SP_FLOPS_PER_POINT, _SP_TOUCHES, _sp_phases, _bt_sp_work_calls),
    "LU": (w.LU_FLOPS_PER_POINT, _LU_TOUCHES, _lu_phases, _lu_work_calls),
}


def describe(bench) -> BenchmarkDescriptors:
    """Descriptors for a live :class:`~repro.npb.base.Benchmark`.

    Raises :class:`~repro.errors.PredictionError` for benchmarks without
    analytic tables (the tier ladder escalates those to simulation).
    """
    spec = _SPECS.get(bench.name)
    if spec is None:
        raise PredictionError(
            f"no analytic descriptors for benchmark {bench.name!r}; "
            f"supported: {SUPPORTED_BENCHMARKS}"
        )
    flops_per_point, touch_table, phase_fn, work_calls_fn = spec
    kernels: dict[str, KernelDescriptor] = {}
    for name in bench.kernel_names():
        ranks = []
        for r in bench.ranks():
            touches = []
            for entry in touch_table[name]:
                field, write = entry[0], entry[1]
                region = bench.region(r, field)
                nbytes = region.nbytes // entry[2] if len(entry) > 2 else None
                touches.append((region, nbytes, write))
            ranks.append(
                RankWork(
                    flops=flops_per_point[name] * bench.layout.local_points(r),
                    work_calls=work_calls_fn(bench, name),
                    touches=tuple(touches),
                )
            )
        phases = tuple(p for p in phase_fn(bench, name) if p is not None)
        kernels[name] = KernelDescriptor(
            name=name, ranks=tuple(ranks), phases=phases
        )
    return BenchmarkDescriptors(
        benchmark=bench.name,
        problem_class=bench.size.problem_class,
        nprocs=bench.nprocs,
        px=bench.grid.px,
        py=bench.grid.py,
        iterations=bench.iterations,
        pre_kernels=bench.pre_kernel_names,
        loop_kernels=bench.loop_kernel_names,
        post_kernels=bench.post_kernel_names,
        kernels=kernels,
        max_footprint_bytes=max(
            bench.footprint_bytes(r) for r in bench.ranks()
        ),
    )
