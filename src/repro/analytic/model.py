"""Closed-form (ECM-style) kernel and chain time models — the fast rung.

This module turns :mod:`repro.analytic.descriptors` into the same numbers
the measurement harness produces, without running the event loop:

* **Compute**: ``flops * flop_time`` plus the *expected* OS-jitter floor
  (``work_calls * noise_floor / 2``; the multiplicative noise is lognormal
  with mean 1, so it drops out in expectation).
* **Memory**: the per-rank region traffic is *replayed* through a real
  :class:`~repro.simmachine.memory.MemoryHierarchy` — the cache model is
  a few dict operations per region, so replaying is both exact (same
  residency algebra, hence the same coupling transitions) and still
  micro-second cheap. Cold replays give the isolated ``E_k``; self-warmed
  replays of a window give the chain times whose ratio is ``C_ij``.
  Ranks with identical working sets share one replayed hierarchy (block
  decompositions collapse most configurations to a handful of *rank
  classes*), which is the main reason the fast path stays orders of
  magnitude under the simulator.
* **Communication**: alpha/beta (latency/bandwidth) closed forms per
  phase — halo exchanges, multi-partition rings, LU's pipelined wavefront
  (fill + steady makespan), binomial/recursive-doubling collectives — with
  a one-step fixed-point contention factor standing in for the simulator's
  sliding-window backlog.

The deliberate omissions (event interleaving, per-message queueing, noise
sampling error) are what the self-reported ``expected_rel_error`` prices;
tier policies escalate to simulation when it exceeds their budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.analytic.descriptors import (
    AllreducePhase,
    BarrierPhase,
    BenchmarkDescriptors,
    HaloPhase,
    RingPhase,
    WavefrontPhase,
    describe,
)
from repro.analytic.tiers import TIER_ANALYTIC
from repro.core.kernel import ControlFlow
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    PredictionReport,
    SummationPredictor,
)
from repro.errors import PredictionError
from repro.simmachine.machine import AnalyticMachineProfile, MachineConfig
from repro.simmachine.memory import MemoryHierarchy

__all__ = [
    "ANALYTIC_REL_ERROR_BOUND",
    "AnalyticModel",
    "AnalyticPredictor",
    "AnalyticReport",
]

#: Documented accuracy bound of the analytic tier: on the golden BT/SP/LU
#: tables (``ibm_sp_argonne``; classes S/W/A; the tables' process counts)
#: per-kernel ``E_k``, chain times and the application total stay within
#: this relative error of the simulation ground truth. Cross-validated by
#: ``tests/analytic/test_cross_validation.py`` and recorded per run in
#: ``BENCH_tiers.json``; observed errors are typically under 0.05.
ANALYTIC_REL_ERROR_BOUND = 0.10

# Confidence-model constants (see AnalyticModel.expected_rel_error).
_CONF_BASE = 0.03
_CONF_COMM_WEIGHT = 0.25
_CONF_NOISE_WEIGHT = 2.0
_CONF_CACHE_EDGE = 0.05

#: Self-warming cycles before a chain window is "measured". The LRU
#: residency state is cyclic-steady after one full pass (verified
#: bit-identical against longer warmups in the tier tests).
_WARM_CYCLES = 1


class AnalyticModel:
    """Evaluates one benchmark configuration's closed forms.

    The model owns one replayed :class:`MemoryHierarchy` per *rank class*
    (ranks with identical per-kernel flops and region sizes evolve
    identically); the sequence methods (:meth:`isolated_time`,
    :meth:`chain_time`, :meth:`application_time`) manage cache state
    exactly like the measurement protocol manages the simulated machine's.
    """

    def __init__(
        self, profile: AnalyticMachineProfile, desc: BenchmarkDescriptors
    ):
        self.profile = profile
        self.desc = desc
        # Collapse ranks into replay-equivalence classes.
        kernel_descs = list(desc.kernels.values())
        class_ids: dict[tuple, int] = {}
        self._class_of: list[int] = []
        representatives: list[int] = []
        for r in range(desc.nprocs):
            key = tuple(
                (
                    kd.ranks[r].flops,
                    kd.ranks[r].work_calls,
                    tuple(
                        (region.nbytes, nbytes, write)
                        for region, nbytes, write in kd.ranks[r].touches
                    ),
                )
                for kd in kernel_descs
            )
            idx = class_ids.setdefault(key, len(class_ids))
            if idx == len(representatives):
                representatives.append(r)
            self._class_of.append(idx)
        self._hiers = [
            MemoryHierarchy(
                profile.level_specs,
                profile.memory_byte_time,
                profile.write_factor,
            )
            for _ in representatives
        ]
        # Per-kernel, per-class precomputation (state-independent).
        floor = profile.expected_floor_jitter
        self._touches: dict[str, list[tuple]] = {}
        self._compute: dict[str, list[float]] = {}
        for name, kd in desc.kernels.items():
            self._touches[name] = [kd.ranks[r].touches for r in representatives]
            self._compute[name] = [
                kd.ranks[r].flops * profile.flop_time
                + kd.ranks[r].work_calls * floor
                for r in representatives
            ]

    # -- state management ---------------------------------------------------

    def _flush(self) -> None:
        for h in self._hiers:
            h.flush()

    def _replay(self, kernel: str) -> list[float]:
        """Stream one invocation's touches; per-class memory seconds."""
        out = []
        for hier, touches in zip(self._hiers, self._touches[kernel]):
            t = 0.0
            for region, nbytes, write in touches:
                t += hier.touch(region, nbytes, write=write).time
            out.append(t)
        return out

    # -- per-component closed forms ----------------------------------------

    def _phase_cost(self, phase, c: float) -> float:
        p = self.profile
        if isinstance(phase, HaloPhase):
            worst = 0.0
            for msgs in phase.sends:
                if not msgs:
                    continue
                t = sum(
                    p.per_message_overhead + b * p.injection_byte_time
                    for b in msgs
                )
                t += p.latency * c + max(msgs) * p.byte_time
                worst = max(worst, t)
            return worst
        if isinstance(phase, RingPhase):
            per_stage = max(
                p.per_message_overhead
                + b * p.injection_byte_time
                + p.latency * c
                + b * p.byte_time
                for b in phase.boundary
            )
            return phase.stages * per_stage
        if isinstance(phase, AllreducePhase):
            per_round = (
                p.per_message_overhead
                + phase.nbytes * (p.injection_byte_time + p.byte_time)
                + p.latency * c
            )
            return phase.rounds * per_round
        if isinstance(phase, BarrierPhase):
            return phase.rounds * (p.per_message_overhead + p.latency * c)
        raise PredictionError(f"unknown communication phase {phase!r}")

    def _wavefront_time(
        self,
        wf: WavefrontPhase,
        base: Sequence[float],
        c: float,
    ) -> float:
        """Pipeline makespan: steady planes plus diagonal fill/drain."""
        p = self.profile
        cycle = 0.0
        hop = 0.0
        for rank, bursts in enumerate(wf.bursts):
            inject = sum(
                m * p.per_message_overhead + nb * p.injection_byte_time
                for m, nb in bursts
            )
            cycle = max(
                cycle, base[self._class_of[rank]] / wf.planes + inject
            )
            for _m, nb in bursts:
                hop = max(hop, p.latency * c + nb * p.byte_time)
        fill = self.desc.px + self.desc.py - 2
        return wf.planes * cycle + fill * (cycle + hop)

    # -- kernel evaluation --------------------------------------------------

    def _eval_kernel(self, kernel: str) -> tuple[Callable[[float], float], float]:
        """Replay one invocation; return ``(time(c), work_seconds)``.

        Calling this *advances cache state by one invocation*; the returned
        closure is pure in the contention factor ``c``. ``work_seconds`` is
        the communication-free critical path (max-rank compute + memory).
        """
        mem = self._replay(kernel)
        base = [cm + mm for cm, mm in zip(self._compute[kernel], mem)]
        work = max(base)
        kd = self.desc.kernels[kernel]
        wavefront = next(
            (p for p in kd.phases if isinstance(p, WavefrontPhase)), None
        )
        if wavefront is not None:

            def time(c: float) -> float:
                return self._wavefront_time(wavefront, base, c)

        else:
            phases = kd.phases

            def time(c: float) -> float:
                return work + sum(self._phase_cost(p, c) for p in phases)

        return time, work

    def _contention(self, messages: int, duration: float) -> float:
        """Fixed-point contention factor for a window of ``duration``."""
        p = self.profile
        if (
            messages <= 0
            or p.contention_coeff <= 0
            or p.drain_window <= 0
            or duration <= 0
        ):
            return 1.0
        backlog = min(messages / 2.0, messages * p.drain_window / duration)
        return 1.0 + p.contention_coeff * backlog

    def _settle(
        self, time_fn: Callable[[float], float], messages: int
    ) -> float:
        """One contention refinement: t(c=1) sizes the backlog, then t(c)."""
        t0 = time_fn(1.0)
        c = self._contention(messages, t0)
        return time_fn(c) if c != 1.0 else t0

    # -- sequences (mirror the measurement protocol) ------------------------

    def isolated_time(self, kernel: str) -> float:
        """Cold-start per-invocation time — the harness's isolated ``E_k``."""
        self._flush()
        time_fn, _work = self._eval_kernel(kernel)
        return self._settle(time_fn, self.desc.kernels[kernel].messages)

    def chain_time(self, window: Iterable[str]) -> float:
        """Steady-state per-cycle time of a self-warming chain loop."""
        window = tuple(window)
        self._flush()
        for _ in range(_WARM_CYCLES):
            for k in window:
                self._replay(k)
        fns = []
        messages = 0
        for k in window:
            fn, _work = self._eval_kernel(k)
            fns.append(fn)
            messages += self.desc.kernels[k].messages
        return self._settle(lambda c: sum(fn(c) for fn in fns), messages)

    def steady_cycle(self) -> tuple[float, float]:
        """``(cycle_seconds, work_seconds)`` of the full steady loop.

        ``work_seconds`` is the communication-free portion, which the
        confidence model uses to price the comm fraction. Warms from the
        *current* cache state and leaves the hierarchies loop-warm
        (callers continue into post kernels).
        """
        loop = self.desc.loop_kernels
        for _ in range(_WARM_CYCLES):
            for k in loop:
                self._replay(k)
        fns = []
        messages = 0
        work_total = 0.0
        for k in loop:
            fn, work = self._eval_kernel(k)
            fns.append(fn)
            work_total += work
            messages += self.desc.kernels[k].messages
        cycle = self._settle(lambda c: sum(fn(c) for fn in fns), messages)
        return cycle, work_total

    def application_time(self) -> tuple[float, float, float]:
        """``(total, steady_cycle, steady_work)`` of the full application.

        Mirrors :class:`~repro.instrument.runner.ApplicationRunner`: pre
        kernels run cold in sequence, the loop contributes its steady-state
        cycle times ``iterations``, post kernels run on a loop-warm machine.
        """
        desc = self.desc
        self._flush()
        total = 0.0
        for k in desc.pre_kernels:
            fn, _work = self._eval_kernel(k)
            total += self._settle(fn, desc.kernels[k].messages)
        cycle, work = self.steady_cycle()
        total += desc.iterations * cycle
        for k in desc.post_kernels:
            fn, _work = self._eval_kernel(k)
            total += self._settle(fn, desc.kernels[k].messages)
        return total, cycle, work

    # -- confidence ---------------------------------------------------------

    def expected_rel_error(
        self, cycle: float | None = None, work: float | None = None
    ) -> float:
        """Self-reported expected relative error vs the simulator.

        A transparent additive budget: a base term for the closed forms'
        structural simplifications, a term growing with the communication
        fraction of the steady cycle (event interleaving and queueing are
        what the closed forms simplify most), a term for the OS-jitter
        floor share (sampling scatter the harness averages over only a few
        repetitions), and a step penalty when the per-rank footprint sits
        near the outer cache capacity (residency-edge sensitivity).

        Callers that already ran :meth:`steady_cycle` /
        :meth:`application_time` pass its ``(cycle, work)`` to avoid a
        second pass.
        """
        if cycle is None or work is None:
            self._flush()
            cycle, work = self.steady_cycle()
        if cycle <= 0:
            return float("inf")
        comm_fraction = max(0.0, 1.0 - work / cycle)
        floor = self.profile.expected_floor_jitter
        noise_seconds = sum(
            max(rw.work_calls for rw in self.desc.kernels[k].ranks) * floor
            for k in self.desc.loop_kernels
        )
        noise_fraction = min(1.0, noise_seconds / cycle)
        err = (
            _CONF_BASE
            + _CONF_COMM_WEIGHT * comm_fraction
            + _CONF_NOISE_WEIGHT * noise_fraction
        )
        outer = self.profile.level_specs[-1][1]
        per_rank = self.desc.max_footprint_bytes
        if outer and 0.5 <= per_rank / outer <= 2.0:
            err += _CONF_CACHE_EDGE
        return err


@dataclass(frozen=True)
class AnalyticReport:
    """The analytic tier's answer for one configuration.

    ``inputs`` is a drop-in :class:`~repro.core.predictor.PredictionInputs`
    (analytic ``E_k`` as loop times, analytic chain times per window), so
    the *same* summation/coupling predictors run downstream of either tier.
    """

    benchmark: str
    problem_class: str
    nprocs: int
    flow: ControlFlow
    actual: float
    inputs: PredictionInputs
    expected_rel_error: float
    steady_cycle: float

    def prediction_report(
        self, chain_lengths: Sequence[int] = ()
    ) -> PredictionReport:
        """Summation + coupling predictions against the analytic actual."""
        predictions = {
            SummationPredictor.name: SummationPredictor().predict(self.inputs)
        }
        for length in chain_lengths:
            predictor = CouplingPredictor(length)
            predictions[predictor.name] = predictor.predict(self.inputs)
        return PredictionReport(
            actual=self.actual, predictions=predictions, tier=TIER_ANALYTIC
        )


class AnalyticPredictor:
    """Produces :class:`AnalyticReport`\\ s for supported configurations."""

    def __init__(self, machine: MachineConfig, benchmark) -> None:
        self.machine = machine
        self.benchmark = benchmark
        self.desc = describe(benchmark)  # PredictionError for CG/MG/...
        self.profile = machine.analytic_profile()

    @classmethod
    def for_config(
        cls,
        machine: MachineConfig,
        benchmark: str,
        problem_class: str,
        nprocs: int,
    ) -> "AnalyticPredictor":
        from repro.npb import make_benchmark

        return cls(machine, make_benchmark(benchmark, problem_class, nprocs))

    def _model(self) -> AnalyticModel:
        return AnalyticModel(self.profile, self.desc)

    def report(self, chain_lengths: Sequence[int] = ()) -> AnalyticReport:
        """Full analytic answer: ``E_k``, chain times, app total, confidence."""
        desc = self.desc
        flow = ControlFlow(desc.loop_kernels)
        for length in chain_lengths:
            if not 2 <= length <= len(flow):
                raise PredictionError(
                    f"chain length {length} invalid for {desc.benchmark} "
                    f"(flow of {len(flow)})"
                )
        model = self._model()
        loop_times = {k: model.isolated_time(k) for k in desc.loop_kernels}
        pre_times = {k: model.isolated_time(k) for k in desc.pre_kernels}
        post_times = {k: model.isolated_time(k) for k in desc.post_kernels}
        chain_times: dict[tuple[str, ...], float] = {}
        for length in chain_lengths:
            for window in flow.windows(length):
                if window not in chain_times:
                    chain_times[window] = model.chain_time(window)
        actual, cycle, work = model.application_time()
        inputs = PredictionInputs(
            flow=flow,
            iterations=desc.iterations,
            loop_times=loop_times,
            pre_times=pre_times,
            post_times=post_times,
            chain_times=chain_times,
        )
        return AnalyticReport(
            benchmark=desc.benchmark,
            problem_class=desc.problem_class,
            nprocs=desc.nprocs,
            flow=flow,
            actual=actual,
            inputs=inputs,
            expected_rel_error=model.expected_rel_error(cycle, work),
            steady_cycle=cycle,
        )
