"""Tier policies: who is allowed to answer a prediction request.

The serving ladder has three rungs, fastest first:

1. **analytic** — closed-form models (:mod:`repro.analytic.model`),
   microseconds, no event loop;
2. **memo** — the content-addressed simulation cache
   (:mod:`repro.parallel.memo`), milliseconds;
3. **simulation** — the full discrete-event run, seconds.

A :class:`TierPolicy` decides how far down the ladder a request may stop.
The analytic model self-reports an *expected relative error*
(:attr:`~repro.analytic.model.AnalyticReport.expected_rel_error`); when it
exceeds the policy's ``max_rel_error`` budget the request *escalates* to
the memo/simulation rungs, so low-confidence closed forms never masquerade
as ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "TIER_ANALYTIC",
    "TIER_MEMO",
    "TIER_SIMULATION",
    "TIERS",
    "TierPolicy",
    "POLICIES",
    "policy_names",
    "resolve_tier_policy",
    "tier_policy_name",
]

#: Canonical tier labels (metric label values, memo key material).
TIER_ANALYTIC = "analytic"
TIER_MEMO = "memo"
TIER_SIMULATION = "simulation"
TIERS = (TIER_ANALYTIC, TIER_MEMO, TIER_SIMULATION)


@dataclass(frozen=True)
class TierPolicy:
    """How far down the tier ladder a request is allowed to stop.

    Attributes
    ----------
    name:
        Policy label (shows up in metrics and CLI output).
    use_analytic:
        Whether the analytic rung may answer at all. When False every
        request goes straight to the memo/simulation rungs — the existing
        (bit-identical) behaviour.
    max_rel_error:
        Error budget: requests whose analytic report self-reports an
        expected relative error above this escalate to simulation.
        ``inf`` trusts every analytic answer; ``0`` trusts none.
    """

    name: str
    use_analytic: bool
    max_rel_error: float

    def __post_init__(self) -> None:
        if self.max_rel_error < 0:
            raise ConfigurationError(
                f"max_rel_error must be >= 0, got {self.max_rel_error}"
            )

    def accepts(self, expected_rel_error: float) -> bool:
        """Whether an analytic answer with this self-report may be served."""
        return self.use_analytic and expected_rel_error <= self.max_rel_error

    def with_budget(self, max_rel_error: float) -> "TierPolicy":
        """This policy with a different error budget."""
        return TierPolicy(self.name, self.use_analytic, max_rel_error)


#: Built-in policies. ``exact`` is the default everywhere: it never touches
#: the analytic rung, so serial/parallel/cached results stay bit-identical
#: to the pre-ladder behaviour.
POLICIES: dict[str, TierPolicy] = {
    "fast": TierPolicy("fast", use_analytic=True, max_rel_error=math.inf),
    "balanced": TierPolicy("balanced", use_analytic=True, max_rel_error=0.35),
    "exact": TierPolicy("exact", use_analytic=False, max_rel_error=0.0),
}


def policy_names() -> list[str]:
    """The known policy names, sorted."""
    return sorted(POLICIES)


def resolve_tier_policy(policy) -> TierPolicy:
    """A :class:`TierPolicy` from a policy object or a (any-case) name.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names —
    the CLI's ``--tier``/``--tier-policy`` options route through here, so
    typos surface as the taxonomy's configuration failure, not a crash.
    """
    if isinstance(policy, TierPolicy):
        return policy
    name = str(policy).strip().lower()
    resolved = POLICIES.get(name)
    if resolved is None:
        raise ConfigurationError(
            f"unknown tier policy {policy!r}; choose from {policy_names()}"
        )
    return resolved


def tier_policy_name(value: str) -> str:
    """Argparse ``type=`` callback: canonical (lower-case) policy name.

    Case-insensitive; unknown names raise
    :class:`~repro.errors.ConfigurationError`, which ``repro``'s ``main``
    reports as ``error: ...`` with exit code 1.
    """
    return resolve_tier_policy(value).name
