"""Command-line interface.

Examples::

    repro list                      # enumerate the paper's experiments
    repro run table3b               # regenerate one table
    repro run all                   # regenerate every table
    repro predict BT W 9 -L 3       # one-off prediction comparison
    repro machine                   # show the simulated IBM SP
    repro profile LU A 8            # per-kernel application profile
    repro serve --db perf.sqlite    # JSON-lines prediction service on stdin
    repro campaign BT --classes S,W --procs 4,9 --jobs 4 \
        --cache-dir .repro-cache    # parallel sweep with simulation memo
    repro metrics --port 7101       # scrape a running server's metrics
    repro trace BT S 4 -o t.json    # Chrome/Perfetto timeline of one run
    repro lint src                  # AST invariant checks (REP001-REP006)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__
from repro.analytic.tiers import tier_policy_name
from repro.errors import ReproError

__all__ = ["main", "build_parser"]

#: Canonical (upper-case) choice lists; arguments use ``type=str.upper`` so
#: lower-case spellings normalize before the choices check instead of each
#: list carrying both cases.
BENCHMARK_CHOICES = ["BT", "SP", "LU", "CG", "MG"]
CLASS_CHOICES = ["S", "W", "A", "B", "C"]


def _add_configuration_arguments(
    parser: argparse.ArgumentParser, with_class: bool = True
) -> None:
    """The benchmark/class/nprocs triple shared by several subcommands."""
    parser.add_argument(
        "benchmark",
        type=str.upper,
        choices=BENCHMARK_CHOICES,
        help="NPB work-alike (case-insensitive)",
    )
    if with_class:
        parser.add_argument(
            "problem_class",
            type=str.upper,
            choices=CLASS_CHOICES,
            help="problem class (case-insensitive)",
        )
        parser.add_argument("nprocs", type=int)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Kernel-coupling performance prediction "
            "(reproduction of Taylor et al., HPDC 2002)"
        ),
    )
    from repro.simmachine import _backend

    parser.add_argument(
        "--version",
        action="version",
        version=(
            f"repro {__version__} "
            f"(engine: {_backend.BACKEND_NAME}, "
            f"selected by {_backend.SELECTED_BY})"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's experiments")

    run = sub.add_parser("run", help="regenerate one experiment table (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table3b, or 'all'")
    run.add_argument(
        "--repetitions", type=int, default=None, help="harness repetitions"
    )
    run.add_argument("--seed", type=int, default=0, help="measurement noise seed")

    predict = sub.add_parser(
        "predict", help="predict one configuration with every method"
    )
    _add_configuration_arguments(predict)
    predict.add_argument(
        "-L", "--chain-length", type=int, default=3, help="coupling chain length"
    )
    predict.add_argument(
        "--tier", type=tier_policy_name, default="exact", metavar="POLICY",
        help="serving-ladder policy: fast | balanced | exact "
        "(case-insensitive; exact always simulates)",
    )

    sub.add_parser("machine", help="describe the simulated machine")

    sub.add_parser(
        "doctor",
        help="report the active engine backend and how it was selected",
    )

    report = sub.add_parser(
        "report", help="run every experiment and write EXPERIMENTS.md"
    )
    report.add_argument(
        "-o", "--output", default="EXPERIMENTS.md", help="output markdown path"
    )
    report.add_argument(
        "--repetitions", type=int, default=8, help="harness repetitions"
    )
    report.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="run a measurement campaign into a database"
    )
    _add_configuration_arguments(sweep, with_class=False)
    sweep.add_argument(
        "--classes", default="S", help="comma-separated problem classes"
    )
    sweep.add_argument(
        "--procs", default="4", help="comma-separated processor counts"
    )
    sweep.add_argument(
        "--chains", default="2", help="comma-separated chain lengths"
    )
    sweep.add_argument(
        "--db", default=":memory:", help="sqlite path (memoizes reruns)"
    )
    sweep.add_argument("--repetitions", type=int, default=6)

    campaign = sub.add_parser(
        "campaign",
        help=(
            "full prediction campaign over a sweep grid, optionally across "
            "worker processes with a content-addressed simulation cache"
        ),
    )
    _add_configuration_arguments(campaign, with_class=False)
    campaign.add_argument(
        "--classes", default="S", help="comma-separated problem classes"
    )
    campaign.add_argument(
        "--procs", default="4", help="comma-separated processor counts"
    )
    campaign.add_argument(
        "--chains", default="2", help="comma-separated coupling chain lengths"
    )
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent sweep cells",
    )
    campaign.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="simulation memo directory (e.g. .repro-cache); reruns skip "
        "already-simulated work",
    )
    campaign.add_argument("--repetitions", type=int, default=6)
    campaign.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser(
        "profile",
        help=(
            "per-kernel application profile, or the sampling profiler "
            "('profile run ...' / 'profile report --in ...')"
        ),
    )
    # Three spellings share this subparser, so the positionals are loose
    # and validated in the handler: the legacy kernel profile
    # (``profile BT S 4``), the sampling profiler (``profile run BT S 4``,
    # arguments shifted one slot right), and saved-profile reporting
    # (``profile report --in PROFILE.json``).
    profile.add_argument(
        "benchmark",
        type=str.upper,
        help="NPB work-alike, or the verb 'run' / 'report'",
    )
    profile.add_argument(
        "problem_class", type=str.upper, nargs="?", default=None
    )
    profile.add_argument("nprocs", nargs="?", default=None)
    profile.add_argument("extra", nargs="*", default=[])
    profile.add_argument(
        "--interval", type=float, default=0.005,
        help="sampling period in seconds (profile run)",
    )
    profile.add_argument(
        "--backend", choices=["auto", "signal", "thread"], default="auto",
        help="sampler backend (profile run)",
    )
    profile.add_argument(
        "--jobs", type=int, default=1,
        help="campaign worker processes; their samples merge back "
        "(profile run)",
    )
    profile.add_argument(
        "--chains", default="2",
        help="comma-separated coupling chain lengths (profile run)",
    )
    profile.add_argument(
        "--repetitions", type=int, default=6, help="(profile run)"
    )
    profile.add_argument(
        "-o", "--out", default="PROFILE.json", metavar="PATH",
        help="where 'profile run' saves the raw profile",
    )
    profile.add_argument(
        "--flamegraph", default=None, metavar="PATH",
        help="also write collapsed stacks (flamegraph.pl / speedscope)",
    )
    profile.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also write a Chrome-trace sample timeline",
    )
    profile.add_argument(
        "--in", dest="profile_in", default=None, metavar="PATH",
        help="saved profile to report on (profile report)",
    )
    profile.add_argument(
        "--sort", choices=["self", "cumulative"], default="self",
        help="report ordering (profile report)",
    )
    profile.add_argument(
        "--limit", type=int, default=20,
        help="rows in the report table (profile report)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve predictions over JSON lines (stdin) or a TCP socket",
    )
    serve.add_argument(
        "--db", default=":memory:", help="persistent measurement tier (sqlite)"
    )
    serve.add_argument("--repetitions", type=int, default=6)
    serve.add_argument(
        "--cache-size", type=int, default=1024, help="L1 report LRU capacity"
    )
    serve.add_argument(
        "--ttl", type=float, default=None, help="L1 entry lifetime in seconds"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="simulation worker count"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="max outstanding cells before rejecting with retry-after",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.005,
        help="seconds to coalesce a burst before dispatching",
    )
    serve.add_argument(
        "--executor", choices=["thread", "process", "inline"], default="thread"
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="serve over TCP on this port instead of stdin (0 = ephemeral)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="simulation memo directory shared with 'repro campaign'; "
        "warm cells are served without simulating",
    )
    serve.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="JSON fault plan (repro.faults) to inject while serving",
    )
    serve.add_argument(
        "--tier-policy", type=tier_policy_name, default="exact",
        metavar="POLICY",
        help="serving-ladder policy: fast | balanced | exact "
        "(case-insensitive; fast/balanced answer from the analytic tier "
        "and escalate on low confidence)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="spawn N shared-nothing shard processes behind an async "
        "frontend; 0 (default) keeps the single-process server",
    )
    serve.add_argument(
        "--replication", type=int, default=2,
        help="ring replicas eligible to serve a hot cell (sharded mode)",
    )
    serve.add_argument(
        "--hot-k", type=int, default=8,
        help="cells tracked as hot for replicated serving (sharded mode)",
    )
    serve.add_argument(
        "--admission-limit", type=int, default=32,
        help="in-flight requests per shard before the frontend sheds "
        "with retry-after (sharded mode)",
    )
    serve.add_argument(
        "--conns-per-shard", type=int, default=2,
        help="frontend connections pooled per shard (sharded mode)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant checks (repro.analysis) over source paths",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    metrics = sub.add_parser(
        "metrics",
        help="fetch metrics from a running 'repro serve --port N' server",
    )
    metrics.add_argument(
        "--port", type=int, required=True, help="server TCP port"
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
        help="Prometheus text exposition (default) or the JSON snapshot",
    )
    metrics.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout in seconds"
    )

    trace = sub.add_parser(
        "trace",
        help="run one application and export a Chrome/Perfetto trace",
    )
    _add_configuration_arguments(trace)
    trace.add_argument(
        "-o", "--out", default="timeline.json",
        help="output trace path (open in ui.perfetto.dev or chrome://tracing)",
    )
    trace.add_argument(
        "--max-records", type=int, default=200000,
        help="simulator trace ring-buffer capacity (newest records kept)",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--format", choices=["chrome", "collapsed"], default="chrome",
        help="chrome (Perfetto timeline, default) or collapsed "
        "(flamegraph stacks of the span tree, self-time weighted)",
    )

    bench = sub.add_parser(
        "bench",
        help="inspect/gate the performance ledger (PERF_LEDGER.json)",
    )
    bench.add_argument(
        "action", choices=["check", "show", "migrate"],
        help="check = regression gate (exit 1 on regression), "
        "show = print series history, migrate = fold legacy BENCH_*.json in",
    )
    bench.add_argument(
        "--ledger", default="PERF_LEDGER.json", metavar="PATH",
        help="ledger file (default: ./PERF_LEDGER.json)",
    )
    bench.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding legacy BENCH_*.json files (migrate)",
    )
    bench.add_argument(
        "--series", default=None,
        help="restrict to one series (e.g. engine, campaign, tiers)",
    )
    bench.add_argument(
        "--min-history", type=int, default=3,
        help="same-host entries required before the gate arms "
        "(fewer = cold, warn-only)",
    )
    bench.add_argument(
        "--mads", type=float, default=4.0,
        help="tolerance in median-absolute-deviations",
    )
    bench.add_argument(
        "--rel-floor", type=float, default=0.10,
        help="minimum relative tolerance band",
    )
    bench.add_argument(
        "--strict-cold", action="store_true",
        help="treat cold history as a failure instead of a warning",
    )

    slo = sub.add_parser(
        "slo",
        help="rolling SLO report from a running 'repro serve --port N' "
        "server (per-tier p50/p95/p99, error-budget burn)",
    )
    slo.add_argument("--port", type=int, required=True, help="server TCP port")
    slo.add_argument("--host", default="127.0.0.1")
    slo.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="human-readable table (default) or the raw JSON judgement",
    )
    slo.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout in seconds"
    )

    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS as reg

    # Trigger driver registration.
    import repro.experiments.bt_tables  # noqa: F401
    import repro.experiments.cross_machine  # noqa: F401
    import repro.experiments.extensions  # noqa: F401
    import repro.experiments.extrapolation_exp  # noqa: F401
    import repro.experiments.lu_tables  # noqa: F401
    import repro.experiments.scaling_exp  # noqa: F401
    import repro.experiments.sp_tables  # noqa: F401

    for exp_id in sorted(reg):
        exp = reg[exp_id]
        print(f"{exp_id:<10} {exp.title:<36} {exp.description}")
    return 0


def _cmd_run(experiment: str, repetitions: Optional[int], seed: int) -> int:
    from repro import obs
    from repro.experiments import ExperimentPipeline, ExperimentSettings, run_experiment
    from repro.instrument import MeasurementConfig

    obs.configure_logging(stream=sys.stderr)
    measurement = MeasurementConfig(
        repetitions=repetitions if repetitions is not None else 8,
        warmup=2,
        seed=seed,
    )
    pipeline = ExperimentPipeline(ExperimentSettings(measurement=measurement))
    if experiment == "all":
        import repro.experiments.bt_tables  # noqa: F401
        import repro.experiments.cross_machine  # noqa: F401
        import repro.experiments.extensions  # noqa: F401
        import repro.experiments.extrapolation_exp  # noqa: F401
        import repro.experiments.lu_tables  # noqa: F401
        import repro.experiments.scaling_exp  # noqa: F401
        import repro.experiments.sp_tables  # noqa: F401
        from repro.experiments.registry import EXPERIMENTS

        ids = sorted(EXPERIMENTS)
    else:
        ids = [experiment]
    for exp_id in ids:
        with obs.span("experiment.run", experiment=exp_id):
            result = run_experiment(exp_id, pipeline=pipeline)
        obs.log("experiment.done", experiment=exp_id)
        print(result.table.render())
        print()
        print(result.comparison())
        print()
    return 0


def _cmd_predict(
    benchmark: str,
    problem_class: str,
    nprocs: int,
    chain_length: int,
    tier: str = "exact",
) -> int:
    from repro import quick_prediction

    report = quick_prediction(
        benchmark, problem_class, nprocs, chain_length, tier=tier
    )
    print(f"Actual:               {report.actual:.3f} s")
    for name, value in report.predictions.items():
        print(
            f"{name + ':':<21} {value:.3f} s "
            f"({report.relative_error(name):.2f} % relative error)"
        )
    print(f"Best predictor: {report.best()}")
    print(f"Tier: {report.tier} (policy: {tier})")
    return 0


def _cmd_machine() -> int:
    from repro.simmachine import ibm_sp_argonne

    cfg = ibm_sp_argonne()
    proc = cfg.processor
    net = cfg.network
    print(f"machine: {cfg.name} (up to {cfg.max_procs} processors)")
    print(
        f"  processor: {proc.clock_hz / 1e6:.0f} MHz x "
        f"{proc.flops_per_cycle:.0f} flops/cycle, "
        f"{100 * proc.efficiency:.0f} % sustained "
        f"({1e-6 / proc.flop_time:.0f} Mflop/s)"
    )
    for level in proc.cache_levels:
        print(
            f"  {level.name}: {level.capacity_bytes // 1024} KiB, "
            f"{level.byte_time * 1e9:.2f} ns/B"
        )
    print(f"  memory: {proc.memory_byte_time * 1e9:.2f} ns/B")
    print(
        f"  network: {net.latency * 1e6:.0f} us latency, "
        f"{1e-6 / net.byte_time:.0f} MB/s per link, "
        f"contention coeff {net.contention_coeff}"
    )
    print(f"  noise: cv={cfg.noise_cv}, floor={cfg.noise_floor * 1e6:.0f} us")
    return 0


def _cmd_doctor() -> int:
    """Report the engine backend in use and the build environment."""
    import importlib.util
    import os
    import platform

    from repro.simmachine import _backend

    info = _backend.backend_info()
    print(f"repro {__version__}")
    print(f"engine backend: {info['backend']}")
    override = os.environ.get("REPRO_ENGINE")
    if info["selected_by"] == "env":
        print(f"  selected by: REPRO_ENGINE={override}")
    else:
        print("  selected by: auto (REPRO_ENGINE unset)")
    try:
        spec = importlib.util.find_spec("repro.simmachine._cengine")
    except ImportError:  # pragma: no cover — package itself missing
        spec = None
    if spec is None:
        print("  compiled extension: not built")
        print(
            "    build with: REPRO_BUILD_EXT=1 python setup.py "
            "build_ext --inplace"
        )
    else:
        print(f"  compiled extension: {spec.origin}")
    build = info.get("build")
    if build:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(build.items()))
        print(f"  build metadata: {detail}")
    print(
        f"python: {platform.python_implementation()} "
        f"{platform.python_version()}"
    )
    return 0


def _cmd_report(output: str, repetitions: int, seed: int) -> int:
    from repro import obs
    from repro.experiments import ExperimentPipeline, ExperimentSettings
    from repro.experiments.reportgen import generate_markdown
    from repro.instrument import MeasurementConfig

    obs.configure_logging(stream=sys.stderr)
    pipeline = ExperimentPipeline(
        ExperimentSettings(
            measurement=MeasurementConfig(
                repetitions=repetitions, warmup=2, seed=seed
            )
        )
    )
    with obs.span("report.generate"):
        text = generate_markdown(pipeline)
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(text)
    obs.log("report.written", path=output, bytes=len(text))
    print(f"wrote {output}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.core import CouplingPredictor, SummationPredictor
    from repro.instrument import (
        Campaign,
        CampaignPlan,
        MeasurementConfig,
        PerformanceDatabase,
    )
    from repro.simmachine import ibm_sp_argonne

    plan = CampaignPlan(
        benchmark=args.benchmark,
        problem_classes=tuple(c.upper() for c in args.classes.split(",")),
        proc_counts=tuple(int(p) for p in args.procs.split(",")),
        chain_lengths=tuple(int(c) for c in args.chains.split(",")),
    )
    campaign = Campaign(
        plan=plan,
        machine=ibm_sp_argonne(),
        measurement=MeasurementConfig(repetitions=args.repetitions, warmup=2),
        database=PerformanceDatabase(args.db),
    )
    results = campaign.run()
    length = plan.chain_lengths[0]
    print(
        f"{'class':>5} {'procs':>5} {'summation':>12} "
        f"{'coupling L=' + str(length):>14}"
    )
    for (cls, procs), inputs in results.items():
        summation = SummationPredictor().predict(inputs)
        coupled = CouplingPredictor(length).predict(inputs)
        print(f"{cls:>5} {procs:>5} {summation:>12.3f} {coupled:>14.3f}")
    print(
        f"measurements: {campaign.measurements_run} run, "
        f"{campaign.measurements_reused} reused from {args.db}"
    )
    return 0


def _cmd_campaign(args) -> int:
    import time

    from repro import obs
    from repro.experiments import ExperimentPipeline, ExperimentSettings
    from repro.instrument import MeasurementConfig

    obs.configure_logging(stream=sys.stderr)
    chain_lengths = tuple(int(c) for c in args.chains.split(","))
    pipeline = ExperimentPipeline(
        ExperimentSettings(
            measurement=MeasurementConfig(
                repetitions=args.repetitions, warmup=2, seed=args.seed
            )
        ),
        memo=args.cache_dir,
        jobs=args.jobs,
    )
    proc_counts = [int(p) for p in args.procs.split(",")]
    started = time.perf_counter()
    rows = []
    for cls in (c.upper() for c in args.classes.split(",")):
        for result in pipeline.sweep(
            args.benchmark, cls, proc_counts, chain_lengths=chain_lengths
        ):
            rows.append(result)
    elapsed = time.perf_counter() - started
    header = f"{'class':>5} {'procs':>5} {'actual':>10} {'summation':>12}"
    for length in chain_lengths:
        header += f" {'coupling L=' + str(length):>14}"
    print(header)
    for result in rows:
        line = (
            f"{result.problem_class:>5} {result.nprocs:>5} "
            f"{result.actual:>10.3f} {result.summation:>12.3f}"
        )
        for length in chain_lengths:
            line += f" {result.coupling_prediction(length):>14.3f}"
        print(line)
    summary = f"{len(rows)} cells in {elapsed:.2f} s (jobs={args.jobs})"
    if pipeline.memo is not None:
        # Worker counter deltas merge into the global registry, so these
        # totals cover parallel cells too (unlike the parent-only stats()).
        registry = obs.get_registry()
        hits = registry.counter("parallel_memo_hits").value
        stores = registry.counter("parallel_memo_stores").value
        summary += (
            f"; memo: {hits} hits, {stores} stores in {args.cache_dir}"
        )
    print(summary)
    return 0


def _cmd_profile(args) -> int:
    if args.benchmark == "RUN":
        return _cmd_profile_run(args)
    if args.benchmark == "REPORT":
        return _cmd_profile_report(args)
    return _cmd_profile_kernels(
        args.benchmark, args.problem_class, args.nprocs
    )


def _cmd_profile_kernels(
    benchmark: str, problem_class: Optional[str], nprocs
) -> int:
    from repro.instrument import profile_application
    from repro.npb import make_benchmark
    from repro.simmachine import ibm_sp_argonne

    if benchmark not in BENCHMARK_CHOICES:
        raise ReproError(
            f"unknown benchmark {benchmark!r}; choose from "
            f"{BENCHMARK_CHOICES} (or the verbs 'run' / 'report')"
        )
    if problem_class not in CLASS_CHOICES:
        raise ReproError(
            f"profile needs a problem class from {CLASS_CHOICES}, "
            f"got {problem_class!r}"
        )
    try:
        nprocs = int(nprocs)
    except (TypeError, ValueError):
        raise ReproError(f"nprocs must be an integer, got {nprocs!r}")
    bench = make_benchmark(benchmark, problem_class, nprocs)
    report = profile_application(bench, ibm_sp_argonne())
    print(report.render())
    return 0


def _cmd_profile_run(args) -> int:
    """Sample a small campaign: ``repro profile run BT S 4 [options]``.

    The positionals arrive shifted one slot right of the legacy form
    (``benchmark`` holds the verb), so the real triple is
    (problem_class, nprocs, extra[0]).
    """
    import json
    import time

    from repro import obs
    from repro.experiments import ExperimentPipeline, ExperimentSettings
    from repro.instrument import MeasurementConfig

    shifted = [args.problem_class, args.nprocs, *args.extra]
    if len(shifted) < 3 or shifted[0] is None or shifted[1] is None:
        raise ReproError(
            "usage: repro profile run BENCHMARK CLASS NPROCS [options]"
        )
    benchmark = str(shifted[0]).upper()
    problem_class = str(shifted[1]).upper()
    if benchmark not in BENCHMARK_CHOICES:
        raise ReproError(
            f"unknown benchmark {benchmark!r}; choose from {BENCHMARK_CHOICES}"
        )
    if problem_class not in CLASS_CHOICES:
        raise ReproError(
            f"unknown problem class {problem_class!r}; "
            f"choose from {CLASS_CHOICES}"
        )
    try:
        nprocs = int(shifted[2])
    except ValueError:
        raise ReproError(f"nprocs must be an integer, got {shifted[2]!r}")
    obs.configure_logging(stream=sys.stderr)
    chain_lengths = tuple(int(c) for c in args.chains.split(","))
    pipeline = ExperimentPipeline(
        ExperimentSettings(
            measurement=MeasurementConfig(
                repetitions=args.repetitions, warmup=2
            )
        ),
        jobs=args.jobs,
    )
    profiler = obs.start_profiler(
        interval=args.interval, backend=args.backend
    )
    started = time.perf_counter()
    try:
        pipeline.sweep(
            benchmark, problem_class, [nprocs], chain_lengths=chain_lengths
        )
    finally:
        data = profiler.stop()
    elapsed = time.perf_counter() - started
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(data.to_dict(), fh, indent=2, sort_keys=True)
    if args.flamegraph is not None:
        with open(args.flamegraph, "w", encoding="utf-8") as fh:
            fh.write(data.collapsed())
    if args.chrome is not None:
        document = data.chrome_trace()
        obs.validate_chrome_trace(document)
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
    obs.log(
        "profile.run_done",
        benchmark=benchmark,
        backend=profiler.backend,
        samples=data.sample_count,
        stacks=len(data.samples),
        out=args.out,
    )
    print(
        f"profiled {benchmark}/{problem_class}/{nprocs}: "
        f"{data.sample_count} samples over {elapsed:.2f} s "
        f"({profiler.backend} backend) -> {args.out}"
    )
    _print_profile_table(data, sort=args.sort, limit=args.limit)
    return 0


def _print_profile_table(data, sort: str, limit: int) -> None:
    table = (
        data.self_seconds() if sort == "self" else data.cumulative_seconds()
    )
    rows = sorted(table.items(), key=lambda kv: -kv[1])[:limit]
    if not rows:
        print("(no samples)")
        return
    print(f"{sort + ' seconds':>14}  location")
    for label, seconds in rows:
        print(f"{seconds:>14.4f}  {label}")
    spans = data.span_seconds()
    if spans:
        print("by span/tag:")
        for name, seconds in sorted(spans.items(), key=lambda kv: -kv[1])[
            :limit
        ]:
            print(f"{seconds:>14.4f}  {name}")


def _cmd_profile_report(args) -> int:
    import json

    from repro.obs.profile import ProfileData

    if args.profile_in is None:
        raise ReproError(
            "usage: repro profile report --in PROFILE.json "
            "[--sort self|cumulative] [--limit N]"
        )
    with open(args.profile_in, encoding="utf-8") as fh:
        data = ProfileData.from_dict(json.load(fh))
    print(
        f"{args.profile_in}: {data.sample_count} samples @ "
        f"{data.interval * 1e3:g} ms over {data.duration:.2f} s"
    )
    _print_profile_table(data, sort=args.sort, limit=args.limit)
    if args.flamegraph is not None:
        with open(args.flamegraph, "w", encoding="utf-8") as fh:
            fh.write(data.collapsed())
        print(f"wrote {args.flamegraph}")
    return 0


def _cmd_serve(args) -> int:
    import json

    from repro import faults, obs
    from repro.instrument import MeasurementConfig
    from repro.service import PredictionService, serve_jsonl, serve_socket

    obs.configure_logging(stream=sys.stderr)
    plan = None
    if args.fault_plan is not None:
        with open(args.fault_plan, encoding="utf-8") as handle:
            plan = faults.FaultPlan.from_json(handle.read())
        obs.log(
            "serve.faults_installed",
            plan=args.fault_plan,
            sites=[spec.site for spec in plan.specs],
            seed=plan.seed,
        )
    if args.shards > 0:
        return _cmd_serve_sharded(args, plan)
    if plan is not None:
        faults.install(plan)
    service = PredictionService(
        measurement=MeasurementConfig(
            repetitions=args.repetitions, warmup=2, seed=args.seed
        ),
        db_path=args.db,
        cache_capacity=args.cache_size,
        cache_ttl=args.ttl,
        batch_window=args.batch_window,
        max_workers=args.workers,
        queue_depth=args.queue_depth,
        executor=args.executor,
        cache_dir=args.cache_dir,
        tier_policy=args.tier_policy,
    )
    obs.log(
        "serve.configured",
        db=args.db,
        workers=args.workers,
        executor=args.executor,
        queue_depth=args.queue_depth,
        cache_dir=args.cache_dir,
        tier_policy=args.tier_policy,
    )
    try:
        if args.port is not None:
            stats = serve_socket(service, args.host, args.port)
        else:
            stats = serve_jsonl(service, sys.stdin, sys.stdout)
    finally:
        service.close()
        faults.clear()
    obs.log("serve.closed", requests=stats.get("requests"))
    print(json.dumps(stats, indent=2), file=sys.stderr)
    return 0


def _cmd_serve_sharded(args, plan) -> int:
    """``repro serve --shards N``: shard process group + async frontend."""
    import json
    import time

    from repro import obs
    from repro.instrument import MeasurementConfig
    from repro.service import (
        ProcessShardManager,
        ShardedServer,
        make_shard_configs,
    )

    configs = make_shard_configs(
        args.shards,
        db_path=args.db,
        cache_dir=args.cache_dir,
        measurement=MeasurementConfig(
            repetitions=args.repetitions, warmup=2, seed=args.seed
        ),
        cache_capacity=args.cache_size,
        cache_ttl=args.ttl,
        batch_window=args.batch_window,
        max_workers=args.workers,
        queue_depth=args.queue_depth,
        executor=args.executor,
        tier_policy=args.tier_policy,
        fault_plan=plan,
    )
    with ProcessShardManager(configs) as manager:
        server = ShardedServer(
            manager,
            host=args.host,
            port=args.port or 0,
            replication=args.replication,
            hot_k=args.hot_k,
            admission_limit=args.admission_limit,
            conns_per_shard=args.conns_per_shard,
        )
        host, port = server.start()
        obs.log(
            "serve.sharded",
            host=host,
            port=port,
            shards=args.shards,
            replication=args.replication,
            admission_limit=args.admission_limit,
        )
        try:
            if args.port is not None:
                print(
                    json.dumps({"listening": [host, port]}),
                    file=sys.stderr,
                    flush=True,
                )
                while True:  # interrupted by Ctrl-C / SIGTERM
                    time.sleep(0.5)
            else:
                for line in sys.stdin:
                    response = server.handle(line)
                    if response is not None:
                        print(response, flush=True)
        except KeyboardInterrupt:
            pass
        finally:
            stats_line = None
            try:
                stats_line = server.handle('{"cmd": "stats"}', timeout=30.0)
            except Exception:  # noqa: BLE001 — stats are best-effort on exit
                pass
            server.stop()
    stats = json.loads(stats_line)["stats"] if stats_line else {}
    obs.log(
        "serve.closed",
        requests=stats.get("frontend", {}).get("requests"),
        shards=args.shards,
    )
    print(json.dumps(stats, indent=2), file=sys.stderr)
    return 0


def _cmd_metrics(args) -> int:
    import json
    import socket

    from repro.errors import ReproError

    try:
        with socket.create_connection(
            (args.host, args.port), timeout=args.timeout
        ) as sock:
            sock.sendall(b'{"cmd": "metrics"}\n')
            reader = sock.makefile("r", encoding="utf-8")
            line = reader.readline()
    except OSError as exc:
        raise ReproError(
            f"cannot reach {args.host}:{args.port}: {exc}"
        ) from exc
    if not line:
        raise ReproError("server closed the connection without responding")
    payload = json.loads(line)
    if not payload.get("ok"):
        raise ReproError(f"server error: {payload.get('error', 'unknown')}")
    if args.format == "json":
        print(json.dumps(payload["metrics"], indent=2, sort_keys=True))
    else:
        sys.stdout.write(payload["prometheus"])
    return 0


def _git_commit() -> Optional[str]:
    """The current short commit hash, or None outside a git checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _cmd_bench(args) -> int:
    import time

    from repro.obs.ledger import PerfLedger, check_entries, migrate_legacy

    ledger = PerfLedger(args.ledger)
    if args.action == "migrate":
        migrated = migrate_legacy(
            ledger, args.root, timestamp=time.time(), commit=_git_commit()
        )
        if migrated:
            print(
                f"migrated {', '.join(sorted(migrated))} into {args.ledger}"
            )
        else:
            print("nothing to migrate (no legacy files, or already done)")
        return 0

    entries = ledger.entries
    if args.series is not None:
        entries = [e for e in entries if e.get("series") == args.series]
        if not entries:
            raise ReproError(
                f"no entries for series {args.series!r} in {args.ledger}; "
                f"known: {ledger.series_names() or '(none)'}"
            )

    if args.action == "show":
        for entry in entries:
            meta = entry.get("meta", {})
            origin = (
                f" (migrated from {meta['migrated_from']})"
                if meta.get("migrated_from")
                else ""
            )
            print(
                f"{entry['series']}: commit={entry.get('commit') or '?'} "
                f"samples={entry.get('samples', 1)}{origin}"
            )
            for name, metric in sorted(entry.get("metrics", {}).items()):
                print(
                    f"  {name} = {metric['value']:g} {metric['unit']} "
                    f"({metric['direction']} is better)"
                )
        if not entries:
            print(f"{args.ledger}: empty")
        return 0

    # action == "check": the regression gate.
    findings = check_entries(
        entries,
        min_history=args.min_history,
        mads=args.mads,
        rel_floor=args.rel_floor,
    )
    regressions = 0
    cold = 0
    for finding in findings:
        label = f"{finding.metric.series}/{finding.metric.name}"
        if finding.status == "regression":
            regressions += 1
            print(f"REGRESSION {label}: {finding.detail}")
        elif finding.status == "cold":
            cold += 1
            print(f"cold       {label}: {finding.detail}")
        elif finding.status == "improved":
            print(f"improved   {label}: {finding.detail}")
        else:
            print(f"ok         {label}: {finding.detail}")
    if not findings:
        print(f"{args.ledger}: no entries to check")
    summary = (
        f"{len(findings)} metrics: {regressions} regressions, {cold} cold"
    )
    print(summary)
    if regressions:
        return 1
    if cold and args.strict_cold:
        return 1
    return 0


def _cmd_slo(args) -> int:
    import json
    import socket

    try:
        with socket.create_connection(
            (args.host, args.port), timeout=args.timeout
        ) as sock:
            sock.sendall(b'{"cmd": "slo"}\n')
            reader = sock.makefile("r", encoding="utf-8")
            line = reader.readline()
    except OSError as exc:
        raise ReproError(
            f"cannot reach {args.host}:{args.port}: {exc}"
        ) from exc
    if not line:
        raise ReproError("server closed the connection without responding")
    payload = json.loads(line)
    if not payload.get("ok"):
        raise ReproError(f"server error: {payload.get('error', 'unknown')}")
    report = payload["slo"]
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    window = report["window"]
    print(
        f"window: {window.get('requests', 0)} requests over "
        f"{window.get('snapshots', 1)} snapshots"
    )
    print(f"{'tier':<12} {'requests':>9} {'p50':>10} {'p95':>10} {'p99':>10}")
    rows = {"overall": report["overall"], **report["tiers"]}
    for tier, doc in rows.items():
        print(
            f"{tier:<12} {doc['requests']:>9} {doc['p50']:>10.4g} "
            f"{doc['p95']:>10.4g} {doc['p99']:>10.4g}"
        )
    print(
        f"{'objective':<18} {'kind':<11} {'target':>7} {'compliance':>11} "
        f"{'burn':>7}  met"
    )
    for verdict in report["objectives"]:
        print(
            f"{verdict['name']:<18} {verdict['kind']:<11} "
            f"{verdict['target']:>7.3g} {verdict['compliance']:>11.4g} "
            f"{verdict['burn_rate']:>7.3g}  "
            f"{'yes' if verdict['met'] else 'NO'}"
        )
    print(f"breaches: {report['breaches']}")
    return 0


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.instrument.runner import ApplicationRunner
    from repro.npb import make_benchmark
    from repro.simmachine import ibm_sp_argonne

    obs.configure_logging(stream=sys.stderr)
    bench = make_benchmark(args.benchmark, args.problem_class, args.nprocs)
    runner = ApplicationRunner(
        bench, ibm_sp_argonne(), seed=args.seed, trace=args.max_records
    )
    result = runner.run()
    tracer = obs.get_tracer()
    if args.format == "collapsed":
        text = obs.collapsed_spans(tracer.spans())
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        obs.log(
            "trace.written",
            path=args.out,
            format="collapsed",
            stacks=len(text.splitlines()),
            total_time=round(result.total_time, 6),
        )
        print(
            f"wrote {args.out} — feed to flamegraph.pl or "
            "https://www.speedscope.app"
        )
        return 0
    document = obs.write_chrome_trace(
        args.out, spans=tracer.spans(), machine_trace=result.trace
    )
    obs.log(
        "trace.written",
        path=args.out,
        events=len(document["traceEvents"]),
        sim_records=len(result.trace) if result.trace else 0,
        dropped=result.trace.dropped if result.trace else 0,
        total_time=round(result.total_time, 6),
    )
    print(f"wrote {args.out} — open in https://ui.perfetto.dev")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Parsing happens inside the error boundary: ``type=`` callbacks (e.g.
    ``--tier``'s policy lookup) raise :class:`ConfigurationError`, which
    must print as a clean CLI error, not a traceback.
    """
    try:
        args = build_parser().parse_args(argv)
        return _dispatch(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    """Route a parsed command to its handler."""
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.repetitions, args.seed)
    if args.command == "predict":
        return _cmd_predict(
            args.benchmark,
            args.problem_class,
            args.nprocs,
            args.chain_length,
            args.tier,
        )
    if args.command == "machine":
        return _cmd_machine()
    if args.command == "doctor":
        return _cmd_doctor()
    if args.command == "report":
        return _cmd_report(args.output, args.repetitions, args.seed)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "slo":
        return _cmd_slo(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return 2  # pragma: no cover — argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
