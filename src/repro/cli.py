"""Command-line interface.

Examples::

    repro list                      # enumerate the paper's experiments
    repro run table3b               # regenerate one table
    repro run all                   # regenerate every table
    repro predict BT W 9 -L 3       # one-off prediction comparison
    repro machine                   # show the simulated IBM SP
    repro profile LU A 8            # per-kernel application profile
    repro serve --db perf.sqlite    # JSON-lines prediction service on stdin
    repro campaign BT --classes S,W --procs 4,9 --jobs 4 \
        --cache-dir .repro-cache    # parallel sweep with simulation memo
    repro metrics --port 7101       # scrape a running server's metrics
    repro trace BT S 4 -o t.json    # Chrome/Perfetto timeline of one run
    repro lint src                  # AST invariant checks (REP001-REP006)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__
from repro.analytic.tiers import tier_policy_name
from repro.errors import ReproError

__all__ = ["main", "build_parser"]

#: Canonical (upper-case) choice lists; arguments use ``type=str.upper`` so
#: lower-case spellings normalize before the choices check instead of each
#: list carrying both cases.
BENCHMARK_CHOICES = ["BT", "SP", "LU", "CG", "MG"]
CLASS_CHOICES = ["S", "W", "A", "B", "C"]


def _add_configuration_arguments(
    parser: argparse.ArgumentParser, with_class: bool = True
) -> None:
    """The benchmark/class/nprocs triple shared by several subcommands."""
    parser.add_argument(
        "benchmark",
        type=str.upper,
        choices=BENCHMARK_CHOICES,
        help="NPB work-alike (case-insensitive)",
    )
    if with_class:
        parser.add_argument(
            "problem_class",
            type=str.upper,
            choices=CLASS_CHOICES,
            help="problem class (case-insensitive)",
        )
        parser.add_argument("nprocs", type=int)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Kernel-coupling performance prediction "
            "(reproduction of Taylor et al., HPDC 2002)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's experiments")

    run = sub.add_parser("run", help="regenerate one experiment table (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table3b, or 'all'")
    run.add_argument(
        "--repetitions", type=int, default=None, help="harness repetitions"
    )
    run.add_argument("--seed", type=int, default=0, help="measurement noise seed")

    predict = sub.add_parser(
        "predict", help="predict one configuration with every method"
    )
    _add_configuration_arguments(predict)
    predict.add_argument(
        "-L", "--chain-length", type=int, default=3, help="coupling chain length"
    )
    predict.add_argument(
        "--tier", type=tier_policy_name, default="exact", metavar="POLICY",
        help="serving-ladder policy: fast | balanced | exact "
        "(case-insensitive; exact always simulates)",
    )

    sub.add_parser("machine", help="describe the simulated machine")

    report = sub.add_parser(
        "report", help="run every experiment and write EXPERIMENTS.md"
    )
    report.add_argument(
        "-o", "--output", default="EXPERIMENTS.md", help="output markdown path"
    )
    report.add_argument(
        "--repetitions", type=int, default=8, help="harness repetitions"
    )
    report.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="run a measurement campaign into a database"
    )
    _add_configuration_arguments(sweep, with_class=False)
    sweep.add_argument(
        "--classes", default="S", help="comma-separated problem classes"
    )
    sweep.add_argument(
        "--procs", default="4", help="comma-separated processor counts"
    )
    sweep.add_argument(
        "--chains", default="2", help="comma-separated chain lengths"
    )
    sweep.add_argument(
        "--db", default=":memory:", help="sqlite path (memoizes reruns)"
    )
    sweep.add_argument("--repetitions", type=int, default=6)

    campaign = sub.add_parser(
        "campaign",
        help=(
            "full prediction campaign over a sweep grid, optionally across "
            "worker processes with a content-addressed simulation cache"
        ),
    )
    _add_configuration_arguments(campaign, with_class=False)
    campaign.add_argument(
        "--classes", default="S", help="comma-separated problem classes"
    )
    campaign.add_argument(
        "--procs", default="4", help="comma-separated processor counts"
    )
    campaign.add_argument(
        "--chains", default="2", help="comma-separated coupling chain lengths"
    )
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent sweep cells",
    )
    campaign.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="simulation memo directory (e.g. .repro-cache); reruns skip "
        "already-simulated work",
    )
    campaign.add_argument("--repetitions", type=int, default=6)
    campaign.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser("profile", help="per-kernel application profile")
    _add_configuration_arguments(profile)

    serve = sub.add_parser(
        "serve",
        help="serve predictions over JSON lines (stdin) or a TCP socket",
    )
    serve.add_argument(
        "--db", default=":memory:", help="persistent measurement tier (sqlite)"
    )
    serve.add_argument("--repetitions", type=int, default=6)
    serve.add_argument(
        "--cache-size", type=int, default=1024, help="L1 report LRU capacity"
    )
    serve.add_argument(
        "--ttl", type=float, default=None, help="L1 entry lifetime in seconds"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="simulation worker count"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="max outstanding cells before rejecting with retry-after",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.005,
        help="seconds to coalesce a burst before dispatching",
    )
    serve.add_argument(
        "--executor", choices=["thread", "process", "inline"], default="thread"
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="serve over TCP on this port instead of stdin (0 = ephemeral)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="simulation memo directory shared with 'repro campaign'; "
        "warm cells are served without simulating",
    )
    serve.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="JSON fault plan (repro.faults) to inject while serving",
    )
    serve.add_argument(
        "--tier-policy", type=tier_policy_name, default="exact",
        metavar="POLICY",
        help="serving-ladder policy: fast | balanced | exact "
        "(case-insensitive; fast/balanced answer from the analytic tier "
        "and escalate on low confidence)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant checks (repro.analysis) over source paths",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    metrics = sub.add_parser(
        "metrics",
        help="fetch metrics from a running 'repro serve --port N' server",
    )
    metrics.add_argument(
        "--port", type=int, required=True, help="server TCP port"
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
        help="Prometheus text exposition (default) or the JSON snapshot",
    )
    metrics.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout in seconds"
    )

    trace = sub.add_parser(
        "trace",
        help="run one application and export a Chrome/Perfetto trace",
    )
    _add_configuration_arguments(trace)
    trace.add_argument(
        "-o", "--out", default="timeline.json",
        help="output trace path (open in ui.perfetto.dev or chrome://tracing)",
    )
    trace.add_argument(
        "--max-records", type=int, default=200000,
        help="simulator trace ring-buffer capacity (newest records kept)",
    )
    trace.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS as reg

    # Trigger driver registration.
    import repro.experiments.bt_tables  # noqa: F401
    import repro.experiments.cross_machine  # noqa: F401
    import repro.experiments.extensions  # noqa: F401
    import repro.experiments.extrapolation_exp  # noqa: F401
    import repro.experiments.lu_tables  # noqa: F401
    import repro.experiments.scaling_exp  # noqa: F401
    import repro.experiments.sp_tables  # noqa: F401

    for exp_id in sorted(reg):
        exp = reg[exp_id]
        print(f"{exp_id:<10} {exp.title:<36} {exp.description}")
    return 0


def _cmd_run(experiment: str, repetitions: Optional[int], seed: int) -> int:
    from repro import obs
    from repro.experiments import ExperimentPipeline, ExperimentSettings, run_experiment
    from repro.instrument import MeasurementConfig

    obs.configure_logging(stream=sys.stderr)
    measurement = MeasurementConfig(
        repetitions=repetitions if repetitions is not None else 8,
        warmup=2,
        seed=seed,
    )
    pipeline = ExperimentPipeline(ExperimentSettings(measurement=measurement))
    if experiment == "all":
        import repro.experiments.bt_tables  # noqa: F401
        import repro.experiments.cross_machine  # noqa: F401
        import repro.experiments.extensions  # noqa: F401
        import repro.experiments.extrapolation_exp  # noqa: F401
        import repro.experiments.lu_tables  # noqa: F401
        import repro.experiments.scaling_exp  # noqa: F401
        import repro.experiments.sp_tables  # noqa: F401
        from repro.experiments.registry import EXPERIMENTS

        ids = sorted(EXPERIMENTS)
    else:
        ids = [experiment]
    for exp_id in ids:
        with obs.span("experiment.run", experiment=exp_id):
            result = run_experiment(exp_id, pipeline=pipeline)
        obs.log("experiment.done", experiment=exp_id)
        print(result.table.render())
        print()
        print(result.comparison())
        print()
    return 0


def _cmd_predict(
    benchmark: str,
    problem_class: str,
    nprocs: int,
    chain_length: int,
    tier: str = "exact",
) -> int:
    from repro import quick_prediction

    report = quick_prediction(
        benchmark, problem_class, nprocs, chain_length, tier=tier
    )
    print(f"Actual:               {report.actual:.3f} s")
    for name, value in report.predictions.items():
        print(
            f"{name + ':':<21} {value:.3f} s "
            f"({report.relative_error(name):.2f} % relative error)"
        )
    print(f"Best predictor: {report.best()}")
    print(f"Tier: {report.tier} (policy: {tier})")
    return 0


def _cmd_machine() -> int:
    from repro.simmachine import ibm_sp_argonne

    cfg = ibm_sp_argonne()
    proc = cfg.processor
    net = cfg.network
    print(f"machine: {cfg.name} (up to {cfg.max_procs} processors)")
    print(
        f"  processor: {proc.clock_hz / 1e6:.0f} MHz x "
        f"{proc.flops_per_cycle:.0f} flops/cycle, "
        f"{100 * proc.efficiency:.0f} % sustained "
        f"({1e-6 / proc.flop_time:.0f} Mflop/s)"
    )
    for level in proc.cache_levels:
        print(
            f"  {level.name}: {level.capacity_bytes // 1024} KiB, "
            f"{level.byte_time * 1e9:.2f} ns/B"
        )
    print(f"  memory: {proc.memory_byte_time * 1e9:.2f} ns/B")
    print(
        f"  network: {net.latency * 1e6:.0f} us latency, "
        f"{1e-6 / net.byte_time:.0f} MB/s per link, "
        f"contention coeff {net.contention_coeff}"
    )
    print(f"  noise: cv={cfg.noise_cv}, floor={cfg.noise_floor * 1e6:.0f} us")
    return 0


def _cmd_report(output: str, repetitions: int, seed: int) -> int:
    from repro import obs
    from repro.experiments import ExperimentPipeline, ExperimentSettings
    from repro.experiments.reportgen import generate_markdown
    from repro.instrument import MeasurementConfig

    obs.configure_logging(stream=sys.stderr)
    pipeline = ExperimentPipeline(
        ExperimentSettings(
            measurement=MeasurementConfig(
                repetitions=repetitions, warmup=2, seed=seed
            )
        )
    )
    with obs.span("report.generate"):
        text = generate_markdown(pipeline)
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(text)
    obs.log("report.written", path=output, bytes=len(text))
    print(f"wrote {output}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.core import CouplingPredictor, SummationPredictor
    from repro.instrument import (
        Campaign,
        CampaignPlan,
        MeasurementConfig,
        PerformanceDatabase,
    )
    from repro.simmachine import ibm_sp_argonne

    plan = CampaignPlan(
        benchmark=args.benchmark,
        problem_classes=tuple(c.upper() for c in args.classes.split(",")),
        proc_counts=tuple(int(p) for p in args.procs.split(",")),
        chain_lengths=tuple(int(c) for c in args.chains.split(",")),
    )
    campaign = Campaign(
        plan=plan,
        machine=ibm_sp_argonne(),
        measurement=MeasurementConfig(repetitions=args.repetitions, warmup=2),
        database=PerformanceDatabase(args.db),
    )
    results = campaign.run()
    length = plan.chain_lengths[0]
    print(
        f"{'class':>5} {'procs':>5} {'summation':>12} "
        f"{'coupling L=' + str(length):>14}"
    )
    for (cls, procs), inputs in results.items():
        summation = SummationPredictor().predict(inputs)
        coupled = CouplingPredictor(length).predict(inputs)
        print(f"{cls:>5} {procs:>5} {summation:>12.3f} {coupled:>14.3f}")
    print(
        f"measurements: {campaign.measurements_run} run, "
        f"{campaign.measurements_reused} reused from {args.db}"
    )
    return 0


def _cmd_campaign(args) -> int:
    import time

    from repro import obs
    from repro.experiments import ExperimentPipeline, ExperimentSettings
    from repro.instrument import MeasurementConfig

    obs.configure_logging(stream=sys.stderr)
    chain_lengths = tuple(int(c) for c in args.chains.split(","))
    pipeline = ExperimentPipeline(
        ExperimentSettings(
            measurement=MeasurementConfig(
                repetitions=args.repetitions, warmup=2, seed=args.seed
            )
        ),
        memo=args.cache_dir,
        jobs=args.jobs,
    )
    proc_counts = [int(p) for p in args.procs.split(",")]
    started = time.perf_counter()
    rows = []
    for cls in (c.upper() for c in args.classes.split(",")):
        for result in pipeline.sweep(
            args.benchmark, cls, proc_counts, chain_lengths=chain_lengths
        ):
            rows.append(result)
    elapsed = time.perf_counter() - started
    header = f"{'class':>5} {'procs':>5} {'actual':>10} {'summation':>12}"
    for length in chain_lengths:
        header += f" {'coupling L=' + str(length):>14}"
    print(header)
    for result in rows:
        line = (
            f"{result.problem_class:>5} {result.nprocs:>5} "
            f"{result.actual:>10.3f} {result.summation:>12.3f}"
        )
        for length in chain_lengths:
            line += f" {result.coupling_prediction(length):>14.3f}"
        print(line)
    summary = f"{len(rows)} cells in {elapsed:.2f} s (jobs={args.jobs})"
    if pipeline.memo is not None:
        # Worker counter deltas merge into the global registry, so these
        # totals cover parallel cells too (unlike the parent-only stats()).
        registry = obs.get_registry()
        hits = registry.counter("parallel_memo_hits").value
        stores = registry.counter("parallel_memo_stores").value
        summary += (
            f"; memo: {hits} hits, {stores} stores in {args.cache_dir}"
        )
    print(summary)
    return 0


def _cmd_profile(benchmark: str, problem_class: str, nprocs: int) -> int:
    from repro.instrument import profile_application
    from repro.npb import make_benchmark
    from repro.simmachine import ibm_sp_argonne

    bench = make_benchmark(benchmark, problem_class, nprocs)
    report = profile_application(bench, ibm_sp_argonne())
    print(report.render())
    return 0


def _cmd_serve(args) -> int:
    import json

    from repro import faults, obs
    from repro.instrument import MeasurementConfig
    from repro.service import PredictionService, serve_jsonl, serve_socket

    obs.configure_logging(stream=sys.stderr)
    if args.fault_plan is not None:
        with open(args.fault_plan, encoding="utf-8") as handle:
            plan = faults.FaultPlan.from_json(handle.read())
        faults.install(plan)
        obs.log(
            "serve.faults_installed",
            plan=args.fault_plan,
            sites=[spec.site for spec in plan.specs],
            seed=plan.seed,
        )
    service = PredictionService(
        measurement=MeasurementConfig(
            repetitions=args.repetitions, warmup=2, seed=args.seed
        ),
        db_path=args.db,
        cache_capacity=args.cache_size,
        cache_ttl=args.ttl,
        batch_window=args.batch_window,
        max_workers=args.workers,
        queue_depth=args.queue_depth,
        executor=args.executor,
        cache_dir=args.cache_dir,
        tier_policy=args.tier_policy,
    )
    obs.log(
        "serve.configured",
        db=args.db,
        workers=args.workers,
        executor=args.executor,
        queue_depth=args.queue_depth,
        cache_dir=args.cache_dir,
        tier_policy=args.tier_policy,
    )
    try:
        if args.port is not None:
            stats = serve_socket(service, args.host, args.port)
        else:
            stats = serve_jsonl(service, sys.stdin, sys.stdout)
    finally:
        service.close()
        faults.clear()
    obs.log("serve.closed", requests=stats.get("requests"))
    print(json.dumps(stats, indent=2), file=sys.stderr)
    return 0


def _cmd_metrics(args) -> int:
    import json
    import socket

    from repro.errors import ReproError

    try:
        with socket.create_connection(
            (args.host, args.port), timeout=args.timeout
        ) as sock:
            sock.sendall(b'{"cmd": "metrics"}\n')
            reader = sock.makefile("r", encoding="utf-8")
            line = reader.readline()
    except OSError as exc:
        raise ReproError(
            f"cannot reach {args.host}:{args.port}: {exc}"
        ) from exc
    if not line:
        raise ReproError("server closed the connection without responding")
    payload = json.loads(line)
    if not payload.get("ok"):
        raise ReproError(f"server error: {payload.get('error', 'unknown')}")
    if args.format == "json":
        print(json.dumps(payload["metrics"], indent=2, sort_keys=True))
    else:
        sys.stdout.write(payload["prometheus"])
    return 0


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.instrument.runner import ApplicationRunner
    from repro.npb import make_benchmark
    from repro.simmachine import ibm_sp_argonne

    obs.configure_logging(stream=sys.stderr)
    bench = make_benchmark(args.benchmark, args.problem_class, args.nprocs)
    runner = ApplicationRunner(
        bench, ibm_sp_argonne(), seed=args.seed, trace=args.max_records
    )
    result = runner.run()
    tracer = obs.get_tracer()
    document = obs.write_chrome_trace(
        args.out, spans=tracer.spans(), machine_trace=result.trace
    )
    obs.log(
        "trace.written",
        path=args.out,
        events=len(document["traceEvents"]),
        sim_records=len(result.trace) if result.trace else 0,
        dropped=result.trace.dropped if result.trace else 0,
        total_time=round(result.total_time, 6),
    )
    print(f"wrote {args.out} — open in https://ui.perfetto.dev")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Parsing happens inside the error boundary: ``type=`` callbacks (e.g.
    ``--tier``'s policy lookup) raise :class:`ConfigurationError`, which
    must print as a clean CLI error, not a traceback.
    """
    try:
        args = build_parser().parse_args(argv)
        return _dispatch(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    """Route a parsed command to its handler."""
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.repetitions, args.seed)
    if args.command == "predict":
        return _cmd_predict(
            args.benchmark,
            args.problem_class,
            args.nprocs,
            args.chain_length,
            args.tier,
        )
    if args.command == "machine":
        return _cmd_machine()
    if args.command == "report":
        return _cmd_report(args.output, args.repetitions, args.seed)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "profile":
        return _cmd_profile(args.benchmark, args.problem_class, args.nprocs)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return 2  # pragma: no cover — argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
