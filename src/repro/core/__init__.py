"""The paper's contribution: coupling values, composition algebra, predictors.

Workflow (mirroring §2–§3 of the paper):

1. Describe the application's cyclic control flow
   (:class:`~repro.core.kernel.ControlFlow`) and enumerate chain *windows*
   of the desired length.
2. Measure each kernel in isolation and each window together
   (:mod:`repro.instrument`), or supply numbers from any other source.
3. Compute coupling values ``C_S = P_S / sum(P_k)``
   (:mod:`repro.core.coupling`).
4. Turn them into per-kernel coefficients via the paper's weighted average
   (:mod:`repro.core.coefficients`).
5. Predict ``T = T_pre + iterations * sum(alpha_k * E_k) + T_post`` with
   :class:`~repro.core.predictor.CouplingPredictor`, against the
   traditional :class:`~repro.core.predictor.SummationPredictor` baseline.
"""

from repro.core.coefficients import kernel_coefficients
from repro.core.composition import CompositionModel
from repro.core.fitting import (
    KernelScalingModel,
    ScalingModelSet,
    even_share,
    npb_work_share,
)
from repro.core.coupling import (
    ChainCoupling,
    CouplingClass,
    CouplingSet,
    classify,
    coupling_value,
)
from repro.core.kernel import ControlFlow, Kernel
from repro.core.metrics import Metric, combine_isolated
from repro.core.models import (
    AnalyticalNPBModel,
    KernelModel,
    MeasuredModel,
    analytical_loop_models,
)
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    PredictionReport,
    SummationPredictor,
    best_chain_length,
)
from repro.core.reuse import CouplingStore, ReusedPrediction
from repro.core.selection import ChainLengthSelector, TrainingCase
from repro.core.scaling import CouplingScalingStudy, ScalingPoint
from repro.core.transitions import TransitionAnalysis, count_transitions, expected_transitions
from repro.core.uncertainty import MeasuredQuantity, PredictionInterval, prediction_interval

__all__ = [
    "AnalyticalNPBModel",
    "ChainLengthSelector",
    "CompositionModel",
    "ChainCoupling",
    "ControlFlow",
    "CouplingClass",
    "CouplingPredictor",
    "CouplingScalingStudy",
    "CouplingSet",
    "CouplingStore",
    "Kernel",
    "KernelModel",
    "KernelScalingModel",
    "MeasuredModel",
    "MeasuredQuantity",
    "Metric",
    "PredictionInputs",
    "PredictionInterval",
    "PredictionReport",
    "ReusedPrediction",
    "ScalingModelSet",
    "ScalingPoint",
    "SummationPredictor",
    "TrainingCase",
    "TransitionAnalysis",
    "analytical_loop_models",
    "best_chain_length",
    "classify",
    "combine_isolated",
    "count_transitions",
    "coupling_value",
    "even_share",
    "expected_transitions",
    "kernel_coefficients",
    "npb_work_share",
    "prediction_interval",
]
