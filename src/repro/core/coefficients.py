"""The composition algebra: chain couplings → per-kernel coefficients (§3).

For application time ``T = sum_k coeff_k * E_k``, the coefficient of kernel
``k`` is the weighted average of the coupling values of every chain window
containing ``k``, weighted by the measured chain times::

    coeff_k = sum_{w ∋ k} C_w * P_w  /  sum_{w ∋ k} P_w

This reproduces the paper's explicit four-kernel formulas for both the
pairwise case (α = [(C_AB·P_AB) + (C_DA·P_DA)] / (P_AB + P_DA)) and the
length-3 case, and generalizes to any flow length and chain length.
"""

from __future__ import annotations

from repro.core.coupling import CouplingSet
from repro.errors import PredictionError
from repro.util.stats import weighted_average

__all__ = ["kernel_coefficients"]


def kernel_coefficients(couplings: CouplingSet) -> dict[str, float]:
    """Compute ``kernel -> coefficient`` from a full coupling set.

    Assumes (as the paper does) that all measurements used fixed kernel
    call counts and identical inputs; the :class:`CouplingSet` constructor
    enforces that every window of the flow was measured.
    """
    out: dict[str, float] = {}
    for kernel in couplings.flow.names:
        chains = couplings.containing(kernel)
        if not chains:  # pragma: no cover — CouplingSet guarantees coverage
            raise PredictionError(f"no chains contain kernel {kernel!r}")
        out[kernel] = weighted_average(
            values=[c.value for c in chains],
            weights=[c.chain_performance for c in chains],
        )
    return out
