"""The composition model as an explicit equation (paper §3, Eq. 3).

The paper frames its result as an equation the analyst can read::

    T = alpha * E_A + beta * E_B + gamma * E_C + delta * E_D        (Eq. 3)

:class:`CompositionModel` materializes that object: per-kernel coefficients
bound to per-kernel models, with one-shot pre/post terms, evaluable and
renderable. Build one from measurements via :meth:`CompositionModel.fit`
(which runs the coupling predictor's algebra) or assemble it by hand from
analytical models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.kernel import ControlFlow
from repro.core.models import KernelModel, MeasuredModel
from repro.core.predictor import CouplingPredictor, PredictionInputs
from repro.errors import PredictionError

__all__ = ["CompositionModel"]

#: Coefficient symbols in the paper's order, cycled for longer flows.
_GREEK = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta")


@dataclass(frozen=True)
class CompositionModel:
    """``T = T_pre + iterations * sum(coeff_k * E_k) + T_post``."""

    flow: ControlFlow
    iterations: int
    coefficients: Mapping[str, float]
    models: Mapping[str, KernelModel]
    pre_seconds: float = 0.0
    post_seconds: float = 0.0
    chain_length: int = 0
    _symbols: dict[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        missing = [
            k for k in self.flow.names
            if k not in self.coefficients or k not in self.models
        ]
        if missing:
            raise PredictionError(
                f"composition model missing coefficients/models for {missing}"
            )

    @classmethod
    def fit(
        cls, inputs: PredictionInputs, chain_length: int
    ) -> "CompositionModel":
        """Build the model from a full set of measurements."""
        predictor = CouplingPredictor(chain_length)
        coefficients = predictor.coefficients(inputs)
        models = {
            k: MeasuredModel(k, inputs.loop_times[k]) for k in inputs.flow.names
        }
        return cls(
            flow=inputs.flow,
            iterations=inputs.iterations,
            coefficients=dict(coefficients),
            models=models,
            pre_seconds=sum(inputs.pre_times.values()),
            post_seconds=sum(inputs.post_times.values()),
            chain_length=chain_length,
        )

    # -- use ------------------------------------------------------------------

    def loop_body_seconds(self) -> float:
        """One loop iteration: ``sum(coeff_k * E_k * calls_k)``."""
        return sum(
            self.coefficients[k.name]
            * self.models[k.name].evaluate()
            * k.calls_per_iteration
            for k in self.flow.kernels
        )

    def evaluate(self) -> float:
        """Predicted application execution time in seconds."""
        return (
            self.pre_seconds
            + self.iterations * self.loop_body_seconds()
            + self.post_seconds
        )

    def symbol_for(self, kernel: str) -> str:
        """The Greek coefficient name of ``kernel`` (alpha, beta, ...)."""
        if kernel not in self.flow.names:
            raise PredictionError(f"kernel {kernel!r} not in flow")
        index = self.flow.names.index(kernel)
        base = _GREEK[index % len(_GREEK)]
        suffix = index // len(_GREEK)
        return base if suffix == 0 else f"{base}{suffix + 1}"

    def equation(self, numeric: bool = False) -> str:
        """Render the paper-style equation.

        ``numeric=False`` gives the symbolic form of Eq. 3; ``numeric=True``
        substitutes the fitted coefficient values.
        """
        terms = []
        for kernel in self.flow.names:
            coeff = (
                f"{self.coefficients[kernel]:.3f}"
                if numeric
                else self.symbol_for(kernel)
            )
            terms.append(f"{coeff}*E_{kernel}")
        body = " + ".join(terms)
        parts = []
        if self.pre_seconds:
            parts.append("T_pre")
        parts.append(f"{self.iterations}*({body})")
        if self.post_seconds:
            parts.append("T_post")
        return "T = " + " + ".join(parts)

    def coefficient_table(self) -> list[tuple[str, str, float]]:
        """``(kernel, symbol, value)`` rows for reporting."""
        return [
            (k, self.symbol_for(k), self.coefficients[k])
            for k in self.flow.names
        ]
