"""Coupling values — Equations 1 and 2 of the paper.

For adjacent kernels ``i`` and ``j``::

    C_ij = P_ij / (P_i + P_j)                                   (Eq. 1)

and for a chain (set) of kernels ``S``::

    C_S = P_S / sum(P_k for k in S)                             (Eq. 2)

with ``C_S = 1`` meaning no interaction, ``C_S < 1`` a performance gain
(constructive coupling — shared resources), and ``C_S > 1`` a performance
loss (destructive coupling — interference).

The denominator's combination rule depends on the metric: execution time
and cache misses sum, rates (flop/s) need a weighted average (§2). The
:class:`~repro.core.metrics.Metric` passed in decides.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from repro.core.kernel import ControlFlow
from repro.core.metrics import Metric, combine_isolated
from repro.errors import ConfigurationError, PredictionError

__all__ = [
    "CouplingClass",
    "classify",
    "coupling_value",
    "ChainCoupling",
    "CouplingSet",
]

#: Couplings within this distance of 1.0 are treated as "no interaction".
DEFAULT_NEUTRAL_TOLERANCE = 0.02


class CouplingClass(enum.Enum):
    """The paper's three-way grouping of coupling values (§2)."""

    CONSTRUCTIVE = "constructive"  # C < 1: performance gain
    NEUTRAL = "neutral"            # C = 1: no interaction
    DESTRUCTIVE = "destructive"    # C > 1: performance loss


def classify(
    value: float, tolerance: float = DEFAULT_NEUTRAL_TOLERANCE
) -> CouplingClass:
    """Group a coupling value per the paper's three sets."""
    if value <= 0:
        raise ConfigurationError(f"coupling value must be > 0, got {value}")
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    if value < 1.0 - tolerance:
        return CouplingClass.CONSTRUCTIVE
    if value > 1.0 + tolerance:
        return CouplingClass.DESTRUCTIVE
    return CouplingClass.NEUTRAL


def coupling_value(
    chain_performance: float,
    isolated_performances: Sequence[float],
    metric: Metric = Metric.TIME,
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Compute ``C_S`` from the chain and isolated measurements (Eq. 2)."""
    if chain_performance <= 0:
        raise ConfigurationError(
            f"chain performance must be > 0, got {chain_performance}"
        )
    if not isolated_performances:
        raise ConfigurationError("need at least one isolated performance")
    combined = combine_isolated(metric, isolated_performances, weights)
    if combined <= 0:
        raise ConfigurationError(
            f"combined isolated performance must be > 0, got {combined}"
        )
    return chain_performance / combined


@dataclass(frozen=True)
class ChainCoupling:
    """A coupling value together with the measurements that produced it."""

    window: tuple[str, ...]
    value: float
    chain_performance: float
    isolated_sum: float

    @property
    def coupling_class(self) -> CouplingClass:
        """Constructive / neutral / destructive grouping."""
        return classify(self.value)


class CouplingSet:
    """All chain couplings of one (flow, chain length) configuration."""

    def __init__(self, flow: ControlFlow, chain_length: int) -> None:
        if not 2 <= chain_length <= len(flow):
            raise ConfigurationError(
                f"chain length must be in 2..{len(flow)}, got {chain_length}"
            )
        self.flow = flow
        self.chain_length = chain_length
        self._by_window: dict[tuple[str, ...], ChainCoupling] = {}

    @classmethod
    def from_performances(
        cls,
        flow: ControlFlow,
        chain_length: int,
        chain_performances: Mapping[tuple[str, ...], float],
        isolated_performances: Mapping[str, float],
        metric: Metric = Metric.TIME,
    ) -> "CouplingSet":
        """Build the full set from chain and isolated measurements."""
        out = cls(flow, chain_length)
        for window in flow.windows(chain_length):
            if window not in chain_performances:
                raise PredictionError(
                    f"missing chain measurement for window {window}"
                )
            parts = []
            for k in window:
                if k not in isolated_performances:
                    raise PredictionError(
                        f"missing isolated measurement for kernel {k!r}"
                    )
                parts.append(isolated_performances[k])
            p_chain = chain_performances[window]
            value = coupling_value(p_chain, parts, metric)
            out._by_window[window] = ChainCoupling(
                window=window,
                value=value,
                chain_performance=p_chain,
                isolated_sum=combine_isolated(metric, parts),
            )
        return out

    def __getitem__(self, window: Sequence[str]) -> ChainCoupling:
        win = tuple(window)
        try:
            return self._by_window[win]
        except KeyError:
            raise PredictionError(f"no coupling recorded for window {win}") from None

    def __iter__(self) -> Iterator[ChainCoupling]:
        return iter(self._by_window.values())

    def __len__(self) -> int:
        return len(self._by_window)

    def windows(self) -> list[tuple[str, ...]]:
        """All windows in flow order."""
        return self.flow.windows(self.chain_length)

    def containing(self, kernel: str) -> list[ChainCoupling]:
        """Couplings of the windows that include ``kernel``."""
        return [
            self._by_window[w]
            for w in self.flow.windows_containing(kernel, self.chain_length)
        ]

    def values(self) -> dict[tuple[str, ...], float]:
        """``window -> coupling value`` mapping."""
        return {w: c.value for w, c in self._by_window.items()}
