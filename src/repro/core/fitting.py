"""Scaling-curve fitting: predict processor counts never measured.

The paper's companion system, Prophesy [TG01], fits per-kernel scaling
models to measured data so whole configurations can be predicted without
running them. This module implements that loop on top of the coupling
methodology:

1. measure isolated kernels at a few processor counts (training points);
2. fit each kernel's time with the classic parallel-cost ansatz
   ``t(P) = serial + parallel / P + comm * log2(P)``
   (non-negative least squares keeps every term physical);
3. at an *unmeasured* target count, evaluate the fits and borrow chain
   couplings from the nearest measured configuration
   (:class:`~repro.core.reuse.CouplingStore`);
4. the coupling predictor then yields the target's execution time with
   zero new measurements.

The extrapolation test in ``tests/core/test_fitting.py`` trains on
{4, 9, 16} processors of BT class W and predicts 25 within a few percent
of the simulated actual.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.core.coupling import CouplingSet
from repro.core.kernel import ControlFlow
from repro.core.reuse import CouplingStore
from repro.errors import PredictionError

__all__ = ["KernelScalingModel", "ScalingModelSet", "even_share", "npb_work_share"]


#: Fraction of the total work done by the busiest rank at P processors.
WorkShare = Callable[[int], float]


def even_share(nprocs: int) -> float:
    """The idealized 1/P work share (no load imbalance)."""
    return 1.0 / nprocs


def npb_work_share(benchmark: str, problem_class: str) -> WorkShare:
    """Work share following the NPB block decomposition's ceil imbalance.

    The busiest rank owns ``max_local_points / total_points`` of the work —
    a stepwise function of P (e.g. 32 points over 5 ranks give the leader
    7/32, not 1/5). Fitting against this share instead of 1/P is what makes
    extrapolation to imbalanced processor counts accurate.
    """
    from repro.npb import make_benchmark

    def share(nprocs: int) -> float:
        bench = make_benchmark(benchmark, problem_class, nprocs)
        return bench.layout.max_local_points() / bench.size.points

    return share


def _basis(nprocs: int, work_share: WorkShare) -> NDArray[np.float64]:
    return np.array(
        [1.0, work_share(nprocs), math.log2(max(2, nprocs))]
    )


@dataclass(frozen=True)
class KernelScalingModel:
    """``t(P) = serial + parallel * share(P) + comm * log2(P)``.

    ``share(P)`` defaults to the idealized 1/P; pass
    :func:`npb_work_share` to follow the block decomposition's stepwise
    load imbalance.
    """

    kernel: str
    serial: float
    parallel: float
    comm: float
    residual: float  # rms relative error on the training points
    work_share: WorkShare = field(default=even_share, compare=False)

    def evaluate(self, nprocs: int) -> float:
        """Predicted per-invocation seconds at ``nprocs``."""
        if nprocs < 1:
            raise PredictionError(f"nprocs must be >= 1, got {nprocs}")
        return float(np.dot(
            (self.serial, self.parallel, self.comm),
            _basis(nprocs, self.work_share),
        ))

    @classmethod
    def fit(
        cls,
        kernel: str,
        samples: Mapping[int, float],
        work_share: WorkShare = even_share,
    ) -> "KernelScalingModel":
        """Non-negative least squares over ``{nprocs: seconds}`` samples."""
        if len(samples) < 2:
            raise PredictionError(
                f"kernel {kernel!r}: need >= 2 training points, "
                f"got {len(samples)}"
            )
        if any(p < 1 or t <= 0 for p, t in samples.items()):
            raise PredictionError(
                f"kernel {kernel!r}: invalid training sample"
            )
        procs = sorted(samples)
        design = np.vstack([_basis(p, work_share) for p in procs])
        target = np.array([samples[p] for p in procs])
        # Weight relative errors (times span orders of magnitude across P).
        weights = 1.0 / target
        coeffs, _ = _nnls(design * weights[:, None], target * weights)
        fitted = design @ coeffs
        residual = float(
            np.sqrt(np.mean(((fitted - target) / target) ** 2))
        )
        return cls(
            kernel=kernel,
            serial=float(coeffs[0]),
            parallel=float(coeffs[1]),
            comm=float(coeffs[2]),
            residual=residual,
            work_share=work_share,
        )


def _nnls(
    design: NDArray[np.float64], target: NDArray[np.float64]
) -> tuple[NDArray[np.float64], float]:
    """Non-negative least squares (scipy's Lawson–Hanson)."""
    from scipy.optimize import nnls

    coeffs, rnorm = nnls(design, target)
    return coeffs, float(rnorm)


class ScalingModelSet:
    """Per-kernel scaling fits plus borrowed couplings for a whole app."""

    def __init__(
        self,
        flow: ControlFlow,
        chain_length: int,
        work_share: WorkShare = even_share,
    ) -> None:
        self.flow = flow
        self.chain_length = chain_length
        self.work_share = work_share
        self.models: dict[str, KernelScalingModel] = {}
        self.one_shot_models: dict[str, KernelScalingModel] = {}
        self.couplings = CouplingStore(flow, chain_length)

    # -- training ----------------------------------------------------------------

    def fit_loop_kernels(
        self, samples: Mapping[str, Mapping[int, float]]
    ) -> None:
        """Fit every loop kernel from ``{kernel: {nprocs: seconds}}``."""
        missing = [k for k in self.flow.names if k not in samples]
        if missing:
            raise PredictionError(f"missing training data for {missing}")
        for kernel in self.flow.names:
            self.models[kernel] = KernelScalingModel.fit(
                kernel, samples[kernel], self.work_share
            )

    def fit_one_shots(
        self, samples: Mapping[str, Mapping[int, float]]
    ) -> None:
        """Fit pre/post kernels (any names; added to the constant term)."""
        for kernel, data in samples.items():
            self.one_shot_models[kernel] = KernelScalingModel.fit(
                kernel, data, self.work_share
            )

    def add_couplings(
        self, problem_class: str, nprocs: int, coupling_set: CouplingSet
    ) -> None:
        """Record a measured coupling set for borrowing."""
        self.couplings.add(problem_class, nprocs, coupling_set)

    # -- prediction -----------------------------------------------------------------

    def loop_times_at(self, nprocs: int) -> dict[str, float]:
        """Fitted per-invocation kernel times at ``nprocs``."""
        if not self.models:
            raise PredictionError("no fitted kernel models")
        return {k: m.evaluate(nprocs) for k, m in self.models.items()}

    def predict(
        self,
        problem_class: str,
        nprocs: int,
        iterations: int,
    ) -> float:
        """Execution time at an unmeasured processor count.

        Combines the fitted kernel curves with the nearest measured
        coupling set (see :class:`~repro.core.reuse.CouplingStore`).
        """
        loop_times = self.loop_times_at(nprocs)
        one_shots = {
            k: m.evaluate(nprocs) for k, m in self.one_shot_models.items()
        }
        reused = self.couplings.predict(
            problem_class,
            nprocs,
            iterations=iterations,
            loop_times=loop_times,
            pre_times=one_shots,
        )
        return reused.predicted

    def worst_training_residual(self) -> float:
        """Largest rms relative training error across fitted kernels."""
        models: Sequence[KernelScalingModel] = [
            *self.models.values(),
            *self.one_shot_models.values(),
        ]
        if not models:
            raise PredictionError("no fitted kernel models")
        return max(m.residual for m in models)
