"""Kernels and cyclic control flow.

A *kernel* is "a unit of computation that denotes a logical entity within
the larger context of an application ... a loop, procedure, or file
depending on the level of granularity" (paper §2). The applications studied
here iterate a fixed kernel sequence, so the control flow is a cycle; the
chains whose couplings the paper measures are the *windows* of that cycle
(e.g. for kernels A B C D and length 3: ABC, BCD, CDA, DAB — §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["Kernel", "ControlFlow"]


@dataclass(frozen=True)
class Kernel:
    """A named kernel with its per-loop-iteration call count."""

    name: str
    calls_per_iteration: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("Kernel needs a non-empty name")
        if self.calls_per_iteration < 1:
            raise ConfigurationError(
                f"calls_per_iteration must be >= 1, got {self.calls_per_iteration}"
            )


class ControlFlow:
    """An ordered sequence of kernels executed repeatedly in a loop."""

    def __init__(
        self, kernels: Sequence[str | Kernel], cyclic: bool = True
    ) -> None:
        if not kernels:
            raise ConfigurationError("ControlFlow needs at least one kernel")
        self.kernels: tuple[Kernel, ...] = tuple(
            k if isinstance(k, Kernel) else Kernel(k) for k in kernels
        )
        names = [k.name for k in self.kernels]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate kernel names in flow: {names}")
        self.cyclic = cyclic

    @property
    def names(self) -> tuple[str, ...]:
        """Kernel names in control-flow order."""
        return tuple(k.name for k in self.kernels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ControlFlow):
            return NotImplemented
        return self.kernels == other.kernels and self.cyclic == other.cyclic

    def __hash__(self) -> int:
        return hash((self.kernels, self.cyclic))

    def __repr__(self) -> str:
        tail = "" if self.cyclic else ", cyclic=False"
        return f"ControlFlow({list(self.names)!r}{tail})"

    def __len__(self) -> int:
        return len(self.kernels)

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def _check_length(self, length: int) -> None:
        if not 1 <= length <= len(self):
            raise ConfigurationError(
                f"chain length must be in 1..{len(self)}, got {length}"
            )

    def windows(self, length: int) -> list[tuple[str, ...]]:
        """All chains of ``length`` consecutive kernels.

        Cyclic flows have exactly ``N`` windows (one starting at each
        kernel, wrapping around); acyclic flows have ``N - length + 1``.
        For a cyclic flow of N kernels, the paper measures the ``N``
        windows of the chosen length — e.g. the "(N-1) pair-wise
        interactions" per unique control path plus the wrap-around pair.
        """
        self._check_length(length)
        names = self.names
        n = len(names)
        if self.cyclic:
            return [
                tuple(names[(start + j) % n] for j in range(length))
                for start in range(n)
            ]
        return [
            tuple(names[start + j] for j in range(length))
            for start in range(n - length + 1)
        ]

    def windows_containing(self, kernel: str, length: int) -> list[tuple[str, ...]]:
        """The windows that include ``kernel`` (the coefficient inputs).

        For a cyclic flow each kernel appears in exactly ``length`` windows
        — the invariant the paper's weighted average relies on.
        """
        if kernel not in self:
            raise ConfigurationError(
                f"kernel {kernel!r} not in flow {self.names}"
            )
        return [w for w in self.windows(length) if kernel in w]

    def adjacencies(self) -> list[tuple[str, str]]:
        """Ordered adjacent pairs of the flow (cyclic flows wrap)."""
        names = self.names
        n = len(names)
        if self.cyclic:
            return [(names[i], names[(i + 1) % n]) for i in range(n)]
        return [(names[i], names[i + 1]) for i in range(n - 1)]

    def validate_window(self, window: Iterable[str]) -> tuple[str, ...]:
        """Check that ``window`` is a window of this flow; return it."""
        win = tuple(window)
        if win not in self.windows(len(win)):
            raise ConfigurationError(
                f"{win} is not a length-{len(win)} window of {self.names}"
            )
        return win
