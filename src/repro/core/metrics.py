"""Performance metrics and their combination rules.

The paper (§2): "The summation of the isolated performance is applicable to
performance metrics such as execution time and cache misses. The summation,
however, is not applicable to all performance metrics, such as floating
point operations per second (flop/s); a weighted average would be used in
this case."
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.util.stats import weighted_average

__all__ = ["Metric", "combine_isolated"]


class Metric(enum.Enum):
    """A measurable quantity with a defined no-interaction combination."""

    TIME = "time"                  # seconds — additive
    CACHE_MISSES = "cache_misses"  # counts — additive
    FLOP_RATE = "flop_rate"        # flop/s — weighted average

    @property
    def additive(self) -> bool:
        """True when isolated values combine by summation."""
        return self in (Metric.TIME, Metric.CACHE_MISSES)


def combine_isolated(
    metric: Metric,
    values: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Expected chain performance under *no interaction* (the C_S denominator).

    Additive metrics sum; rate metrics take the weighted average (weights
    default to equal, and should be the kernels' execution times when
    available).
    """
    if not values:
        raise ConfigurationError("combine_isolated() of empty sequence")
    if metric.additive:
        if weights is not None:
            raise ConfigurationError(
                f"{metric.value} combines by summation; weights are not used"
            )
        return float(sum(values))
    if weights is None:
        weights = [1.0] * len(values)
    return weighted_average(list(values), list(weights))
