"""Analytical kernel models (the ``E_k`` of the paper's Eq. 3).

The coupling methodology combines *models of individual kernels* into an
application model. Two model families are provided:

* :class:`MeasuredModel` — backed by an isolated measurement (what the
  paper's case studies use: the per-kernel average of 50 runs);
* :class:`AnalyticalNPBModel` — a closed-form cost expression built from
  the workload constants (:mod:`repro.npb.workloads`) and the machine
  configuration: ``flops * flop_time + cold_bytes * memory_byte_time +
  messages * latency + message_bytes * byte_time``. These are the "models
  developed manually" the paper assumes exist for small kernels; tests
  check they track the simulator within a modest factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.npb import workloads as w
from repro.npb.base import Benchmark
from repro.simmachine.machine import MachineConfig

__all__ = [
    "KernelModel",
    "MeasuredModel",
    "AnalyticalNPBModel",
    "analytical_loop_models",
]


@runtime_checkable
class KernelModel(Protocol):
    """Anything that can produce a per-invocation time estimate."""

    def evaluate(self) -> float:
        """Estimated seconds for one invocation."""
        ...


@dataclass(frozen=True)
class MeasuredModel:
    """Model backed by a measured per-invocation time."""

    kernel: str
    per_call: float

    def __post_init__(self) -> None:
        if self.per_call <= 0:
            raise ConfigurationError(
                f"measured time for {self.kernel!r} must be > 0"
            )

    def evaluate(self) -> float:
        """The measured per-invocation seconds."""
        return self.per_call


@dataclass(frozen=True)
class AnalyticalNPBModel:
    """Closed-form per-invocation cost of one NPB kernel on one rank."""

    kernel: str
    flops: float
    cold_bytes: float
    messages: int
    message_bytes: float
    machine: MachineConfig

    def evaluate(self) -> float:
        """Estimated seconds for one invocation (cold caches)."""
        proc = self.machine.processor
        net = self.machine.network
        compute = self.flops * proc.flop_time
        memory = self.cold_bytes * proc.memory_byte_time
        comm = self.messages * (net.per_message_overhead + net.latency) + (
            self.message_bytes * net.byte_time
        )
        return compute + memory + comm


def _kernel_comm(bench: Benchmark, kernel: str, rank: int) -> tuple[int, float]:
    """(message count, message bytes) for one invocation on ``rank``."""
    grid = bench.grid
    nx, ny, nz = bench.layout.local_dims(rank)
    nbrs = len(grid.neighbors4(rank))
    name = bench.name
    if kernel == "COPY_FACES":
        face = {"BT": w.BT_FACE_BYTES, "SP": w.SP_FACE_BYTES}[name]
        nbytes = sum(
            face * 2 * (ny * nz if dim == 0 else nx * nz)
            for dim, step in ((0, -1), (0, +1), (1, -1), (1, +1))
            if grid.neighbor(rank, dim, step) is not None
        )
        return nbrs, float(nbytes)
    if kernel in ("X_SOLVE", "Y_SOLVE") and name in ("BT", "SP"):
        boundary = {
            "BT": w.BT_SOLVE_BOUNDARY_BYTES,
            "SP": w.SP_SOLVE_BOUNDARY_BYTES,
        }[name]
        stages = grid.px if kernel == "X_SOLVE" else grid.py
        if stages == 1:
            return 0, 0.0
        face_points = (ny if kernel == "X_SOLVE" else nx) * nz
        return stages, float(stages * boundary * face_points)
    if kernel in ("SSOR_LT", "SSOR_UT"):
        msgs = 0
        nbytes = 0.0
        if grid.px > 1:
            msgs += nz * ny
            nbytes += nz * ny * w.LU_PIPELINE_MESSAGE_BYTES
        if grid.py > 1:
            msgs += nz * nx
            nbytes += nz * nx * w.LU_PIPELINE_MESSAGE_BYTES
        return msgs, nbytes
    if kernel == "SSOR_RS":
        nbytes = sum(
            w.LU_FACE_BYTES * (ny * nz if dim == 0 else nx * nz)
            for dim, step in ((0, -1), (0, +1), (1, -1), (1, +1))
            if grid.neighbor(rank, dim, step) is not None
        )
        return nbrs, float(nbytes)
    return 0, 0.0


_FLOPS = {"BT": w.BT_FLOPS_PER_POINT, "SP": w.SP_FLOPS_PER_POINT, "LU": w.LU_FLOPS_PER_POINT}

# Bytes of data streamed per point by each loop kernel, per benchmark.
_KERNEL_FIELDS: dict[str, dict[str, tuple[str, ...]]] = {
    "BT": {
        "COPY_FACES": ("u", "forcing", "aux", "rhs"),
        "X_SOLVE": ("u", "rhs", "lhs"),
        "Y_SOLVE": ("u", "rhs", "lhs"),
        "Z_SOLVE": ("u", "rhs", "lhs"),
        "ADD": ("rhs", "u"),
    },
    "SP": {
        "COPY_FACES": ("u", "forcing", "aux", "rhs"),
        "TXINVR": ("aux", "rhs"),
        "X_SOLVE": ("u", "aux", "rhs", "lhs"),
        "Y_SOLVE": ("u", "aux", "rhs", "lhs"),
        "Z_SOLVE": ("u", "aux", "rhs", "lhs"),
        "ADD": ("rhs", "u"),
    },
    "LU": {
        "SSOR_ITER": ("rsd",),
        "SSOR_LT": ("u", "rsd", "jac"),
        "SSOR_UT": ("u", "rsd", "jac"),
        "SSOR_RS": ("frct", "u", "rsd"),
    },
}


def analytical_loop_models(
    bench: Benchmark, machine: MachineConfig, rank: int = 0
) -> dict[str, AnalyticalNPBModel]:
    """Analytical models of every loop kernel of ``bench`` (on ``rank``)."""
    pts = bench.layout.local_points(rank)
    flops_table = _FLOPS[bench.name]
    fields = _KERNEL_FIELDS[bench.name]
    out: dict[str, AnalyticalNPBModel] = {}
    for kernel in bench.loop_kernel_names:
        cold_bytes = sum(
            float(bench.region(rank, f).nbytes) for f in fields[kernel]
        )
        messages, message_bytes = _kernel_comm(bench, kernel, rank)
        out[kernel] = AnalyticalNPBModel(
            kernel=kernel,
            flops=flops_table[kernel] * pts,
            cold_bytes=cold_bytes,
            messages=messages,
            message_bytes=message_bytes,
            machine=machine,
        )
    return out
