"""Execution-time predictors: summation baseline and coupling predictor.

The *summation* methodology is the paper's baseline (§4.1)::

    Summation = T_init + iters * (T_k1 + T_k2 + ...) + T_final

The *coupling* predictor replaces each loop kernel's time with
``coeff_k * T_k`` where the coefficients come from the composition algebra
(:mod:`repro.core.coefficients`), leaving the one-shot pre/post kernels
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.core.coefficients import kernel_coefficients
from repro.core.coupling import CouplingSet
from repro.core.kernel import ControlFlow, Kernel
from repro.errors import PredictionError
from repro.util.stats import percent_relative_error

__all__ = [
    "PredictionInputs",
    "SummationPredictor",
    "CouplingPredictor",
    "PredictionReport",
    "best_chain_length",
]


@dataclass(frozen=True)
class PredictionInputs:
    """Everything a predictor consumes.

    ``loop_times`` are *per-invocation* isolated times of the loop kernels;
    ``pre_times`` / ``post_times`` are the one-shot kernels' times; chain
    measurements (per window, per chain invocation) feed the coupling
    predictor.
    """

    flow: ControlFlow
    iterations: int
    loop_times: Mapping[str, float]
    pre_times: Mapping[str, float] = field(default_factory=dict)
    post_times: Mapping[str, float] = field(default_factory=dict)
    chain_times: Mapping[tuple[str, ...], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise PredictionError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        missing = [k for k in self.flow.names if k not in self.loop_times]
        if missing:
            raise PredictionError(
                f"missing isolated times for loop kernels: {missing}"
            )

    @property
    def one_shot_total(self) -> float:
        """Combined pre + post kernel time."""
        return sum(self.pre_times.values()) + sum(self.post_times.values())

    @property
    def cache_key(self) -> tuple[Any, ...]:
        """A canonical, hashable identity of these inputs.

        Two inputs with equal measurements (regardless of mapping insertion
        order) share a key, so memoization layers — e.g.
        :mod:`repro.service` — can use the inputs themselves as cache keys.
        """
        return (
            tuple((k.name, k.calls_per_iteration) for k in self.flow.kernels),
            self.flow.cyclic,
            self.iterations,
            tuple(sorted(self.loop_times.items())),
            tuple(sorted(self.pre_times.items())),
            tuple(sorted(self.post_times.items())),
            tuple(sorted(self.chain_times.items())),
        )

    def __hash__(self) -> int:
        return hash(self.cache_key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PredictionInputs):
            return NotImplemented
        return self.cache_key == other.cache_key

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable snapshot (chain windows become lists)."""
        return {
            "flow": {
                "kernels": [
                    {"name": k.name, "calls_per_iteration": k.calls_per_iteration}
                    for k in self.flow.kernels
                ],
                "cyclic": self.flow.cyclic,
            },
            "iterations": self.iterations,
            "loop_times": dict(self.loop_times),
            "pre_times": dict(self.pre_times),
            "post_times": dict(self.post_times),
            "chain_times": [
                [list(window), t] for window, t in sorted(self.chain_times.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PredictionInputs":
        """Rebuild inputs from :meth:`to_dict` output."""
        flow_spec = data["flow"]
        flow = ControlFlow(
            [
                Kernel(k["name"], k.get("calls_per_iteration", 1))
                for k in flow_spec["kernels"]
            ],
            cyclic=flow_spec.get("cyclic", True),
        )
        return cls(
            flow=flow,
            iterations=data["iterations"],
            loop_times=dict(data["loop_times"]),
            pre_times=dict(data.get("pre_times", {})),
            post_times=dict(data.get("post_times", {})),
            chain_times={
                tuple(window): t for window, t in data.get("chain_times", [])
            },
        )


class SummationPredictor:
    """The traditional baseline: accumulate every kernel's isolated time."""

    name = "Summation"

    def predict(self, inputs: PredictionInputs) -> float:
        """Total predicted execution time in seconds."""
        loop = sum(
            inputs.loop_times[k.name] * k.calls_per_iteration
            for k in inputs.flow.kernels
        )
        return inputs.one_shot_total + inputs.iterations * loop


class CouplingPredictor:
    """The paper's predictor for a given chain length."""

    def __init__(self, chain_length: int) -> None:
        if chain_length < 2:
            raise PredictionError(
                f"coupling chains need length >= 2, got {chain_length}"
            )
        self.chain_length = chain_length

    @property
    def name(self) -> str:
        """Label used in the paper's tables."""
        return f"Coupling: {self.chain_length} kernels"

    def coupling_set(self, inputs: PredictionInputs) -> CouplingSet:
        """Chain couplings derived from the inputs' measurements."""
        return CouplingSet.from_performances(
            inputs.flow,
            self.chain_length,
            inputs.chain_times,
            dict(inputs.loop_times),
        )

    def coefficients(self, inputs: PredictionInputs) -> dict[str, float]:
        """Per-kernel coefficients (the α, β, γ, δ of §3)."""
        return kernel_coefficients(self.coupling_set(inputs))

    def predict(self, inputs: PredictionInputs) -> float:
        """Total predicted execution time in seconds."""
        coeffs = self.coefficients(inputs)
        loop = sum(
            coeffs[k.name] * inputs.loop_times[k.name] * k.calls_per_iteration
            for k in inputs.flow.kernels
        )
        return inputs.one_shot_total + inputs.iterations * loop


@dataclass(frozen=True)
class PredictionReport:
    """Actual vs predicted times with paper-style relative errors.

    ``tier`` names the serving-ladder rung that produced the numbers
    ("analytic" | "memo" | "simulation"); the default keeps pre-ladder
    producers (and pickled reports) valid. It is serving metadata, not
    prediction content: a memoized report equals the simulated report it
    was reconstructed from, so ``tier`` stays out of equality.
    """

    actual: float
    predictions: dict[str, float]
    tier: str = field(default="simulation", compare=False)

    def relative_error(self, name: str) -> float:
        """Percent relative error of one predictor."""
        return percent_relative_error(self.predictions[name], self.actual)

    def errors(self) -> dict[str, float]:
        """Percent relative error of each predictor."""
        return {name: self.relative_error(name) for name in self.predictions}

    def best(self) -> str:
        """Name of the most accurate predictor (the boldfaced row)."""
        return min(self.predictions, key=self.relative_error)


def best_chain_length(
    inputs: PredictionInputs,
    actual: float,
    lengths: Optional[Sequence[int]] = None,
) -> tuple[int, float]:
    """Chain length with the lowest relative error on this configuration.

    The paper presents "only the coupling values corresponding to the
    length of the chain of kernels that produced best predictions" (§4.1);
    this helper performs that selection. Returns ``(length, percent_error)``.
    """
    if lengths is None:
        lengths = range(2, len(inputs.flow) + 1)
    best: Optional[tuple[int, float]] = None
    for length in lengths:
        predictor = CouplingPredictor(length)
        try:
            err = percent_relative_error(predictor.predict(inputs), actual)
        except PredictionError:
            continue  # chains of this length were not measured
        if best is None or err < best[1]:
            best = (length, err)
    if best is None:
        raise PredictionError("no chain length had complete measurements")
    return best
