"""Builders for paper-style result tables."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.util.stats import mean, percent_relative_error
from repro.util.tables import Table

__all__ = [
    "dataset_table",
    "coupling_value_table",
    "execution_time_table",
    "average_error",
]


def dataset_table(
    title: str, rows: Sequence[tuple[str, tuple[int, int, int]]]
) -> Table:
    """A data-set-size table (paper Tables 1, 5, 7)."""
    table = Table(title=title, columns=["Class", "Size"])
    for cls, (nx, ny, nz) in rows:
        table.add_row(cls, f"{nx} x {ny} x {nz}")
    return table


def coupling_value_table(
    title: str,
    proc_counts: Sequence[int],
    values: Mapping[tuple[str, ...], Sequence[float]],
    precision: int = 3,
) -> Table:
    """A coupling-values table (paper Tables 2a, 3a, 4a).

    ``values`` maps each window to its coupling value per processor count.
    """
    n = len(tuple(proc_counts))
    table = Table(
        title=title,
        columns=["Kernels"] + [f"{p} procs" for p in proc_counts],
        precision=precision,
    )
    for window, series in values.items():
        if len(series) != n:
            raise ValueError(
                f"window {window}: {len(series)} values for {n} proc counts"
            )
        table.add_row(", ".join(window), *[float(v) for v in series])
    return table


def execution_time_table(
    title: str,
    proc_counts: Sequence[int],
    actual: Sequence[float],
    predictions: Mapping[str, Sequence[float]],
    precision: int = 2,
) -> Table:
    """An execution-time comparison table (paper Tables 2b, 3b, 4b, 6, 8).

    Rows: Actual, then one per predictor with ``value (% rel error)`` cells.
    """
    procs = list(proc_counts)
    if len(actual) != len(procs):
        raise ValueError("actual series length mismatch")
    table = Table(
        title=title,
        columns=["Prediction"] + [f"{p} procs" for p in procs],
        precision=precision,
    )
    table.add_row("Actual", *[float(a) for a in actual])
    for name, series in predictions.items():
        if len(series) != len(procs):
            raise ValueError(f"{name}: series length mismatch")
        cells = [
            (float(v), percent_relative_error(v, a))
            for v, a in zip(series, actual)
        ]
        table.add_row(name, *cells)
    return table


def average_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Average percent relative error across a table row."""
    return mean(
        percent_relative_error(p, a) for p, a in zip(predicted, actual)
    )
