"""Coupling-value reuse across configurations (paper §6 future work).

"Future work is focused on determining which coupling values must be
obtained and which values can be reused, thereby reducing the number of
needed experiments." This module implements the natural first version:
store coupling sets per (class, procs) configuration and, when predicting a
new configuration, borrow the couplings from the nearest measured neighbor
(couplings are ratios, which drift far more slowly across configurations
than raw times — only fresh *isolated* times are needed at the target).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.coupling import CouplingSet
from repro.core.kernel import ControlFlow
from repro.core.predictor import CouplingPredictor, PredictionInputs
from repro.errors import PredictionError

__all__ = ["CouplingStore", "ReusedPrediction"]


@dataclass(frozen=True)
class ReusedPrediction:
    """A prediction made with borrowed couplings."""

    predicted: float
    source_class: str
    source_nprocs: int
    target_nprocs: int

    @property
    def borrowed(self) -> bool:
        """True when the couplings came from a different configuration."""
        return self.source_nprocs != self.target_nprocs


class CouplingStore:
    """Chain couplings indexed by (problem class, nprocs)."""

    def __init__(self, flow: ControlFlow, chain_length: int) -> None:
        self.flow = flow
        self.chain_length = chain_length
        self._store: dict[tuple[str, int], dict[tuple[str, ...], float]] = {}

    def add(
        self, problem_class: str, nprocs: int, couplings: CouplingSet
    ) -> None:
        """Record a measured coupling set."""
        if couplings.chain_length != self.chain_length:
            raise PredictionError(
                f"store holds length-{self.chain_length} chains, got "
                f"length-{couplings.chain_length}"
            )
        self._store[(problem_class, nprocs)] = couplings.values()

    def configurations(self) -> list[tuple[str, int]]:
        """All stored (class, nprocs) pairs."""
        return sorted(self._store)

    def nearest(
        self, problem_class: str, nprocs: int
    ) -> tuple[str, int, dict[tuple[str, ...], float]]:
        """The stored configuration closest to the query.

        Same problem class is preferred; distance within a class is the
        log-ratio of processor counts (couplings shift with per-processor
        working set, which scales like 1/P).
        """
        if not self._store:
            raise PredictionError("coupling store is empty")
        candidates = [k for k in self._store if k[0] == problem_class]
        if not candidates:
            candidates = list(self._store)
        cls, p = min(
            candidates,
            key=lambda k: (k[0] != problem_class, abs(math.log(k[1] / nprocs))),
        )
        return cls, p, self._store[(cls, p)]

    def predict(
        self,
        problem_class: str,
        nprocs: int,
        iterations: int,
        loop_times: Mapping[str, float],
        pre_times: Optional[Mapping[str, float]] = None,
        post_times: Optional[Mapping[str, float]] = None,
    ) -> ReusedPrediction:
        """Predict a configuration using borrowed couplings.

        ``loop_times`` must be fresh isolated measurements at the *target*
        configuration; only the chain couplings are reused. The borrowed
        ratios are applied by synthesizing chain times
        ``P_w = C_w * sum(P_k)`` so the standard predictor machinery runs
        unchanged.
        """
        src_cls, src_p, ratios = self.nearest(problem_class, nprocs)
        chain_times = {}
        for window in self.flow.windows(self.chain_length):
            if window not in ratios:
                raise PredictionError(f"stored set is missing window {window}")
            isolated_sum = sum(loop_times[k] for k in window)
            chain_times[window] = ratios[window] * isolated_sum
        inputs = PredictionInputs(
            flow=self.flow,
            iterations=iterations,
            loop_times=dict(loop_times),
            pre_times=dict(pre_times or {}),
            post_times=dict(post_times or {}),
            chain_times=chain_times,
        )
        predicted = CouplingPredictor(self.chain_length).predict(inputs)
        return ReusedPrediction(
            predicted=predicted,
            source_class=src_cls,
            source_nprocs=src_p,
            target_nprocs=nprocs,
        )
