"""Scaling studies: how coupling values move with problem size and procs.

Aspects (2) and (3) of the paper's §1: "how the coupling values change with
scaling of the problem size" and "with the scaling of the number of
processors". A :class:`CouplingScalingStudy` sweeps one axis, measures the
chain couplings at each point, and hands the series to
:mod:`repro.core.transitions` for the finite-transition analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.coupling import CouplingSet
from repro.core.kernel import ControlFlow
from repro.core.transitions import TransitionAnalysis
from repro.errors import ConfigurationError
from repro.instrument.runner import ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine.machine import MachineConfig

__all__ = ["ScalingPoint", "CouplingScalingStudy"]


@dataclass(frozen=True)
class ScalingPoint:
    """Couplings measured at one (class, procs) sweep point."""

    problem_class: str
    nprocs: int
    footprint_bytes: int
    couplings: dict[tuple[str, ...], float]


class CouplingScalingStudy:
    """Measure chain couplings along a scaling axis of one benchmark."""

    def __init__(
        self,
        benchmark_name: str,
        machine: MachineConfig,
        chain_length: int = 2,
        measurement: MeasurementConfig = MeasurementConfig(),
    ) -> None:
        self.benchmark_name = benchmark_name
        self.machine = machine
        self.chain_length = chain_length
        self.measurement = measurement
        self.points: list[ScalingPoint] = []

    def _measure_point(self, problem_class: str, nprocs: int) -> ScalingPoint:
        bench = make_benchmark(self.benchmark_name, problem_class, nprocs)
        flow = ControlFlow(bench.loop_kernel_names)
        runner = ChainRunner(bench, self.machine, self.measurement)
        isolated = {
            k: m.mean
            for k, m in runner.measure_all_isolated(flow.names).items()
        }
        chains = {
            win: m.mean
            for win, m in runner.measure_windows(
                flow.windows(self.chain_length)
            ).items()
        }
        couplings = CouplingSet.from_performances(
            flow, self.chain_length, chains, isolated
        )
        return ScalingPoint(
            problem_class=problem_class,
            nprocs=nprocs,
            footprint_bytes=bench.footprint_bytes(0),
            couplings=couplings.values(),
        )

    def sweep_procs(
        self, problem_class: str, proc_counts: Sequence[int]
    ) -> list[ScalingPoint]:
        """Fix the class; scale the processor count."""
        pts = [self._measure_point(problem_class, p) for p in proc_counts]
        self.points.extend(pts)
        return pts

    def sweep_classes(
        self, classes: Sequence[str], nprocs: int
    ) -> list[ScalingPoint]:
        """Fix the processor count; scale the problem size."""
        pts = [self._measure_point(c, nprocs) for c in classes]
        self.points.extend(pts)
        return pts

    def series(
        self, window: tuple[str, ...], points: Optional[Sequence[ScalingPoint]] = None
    ) -> list[float]:
        """The coupling values of one window across sweep points."""
        pts = list(points if points is not None else self.points)
        if not pts:
            raise ConfigurationError("no sweep points measured yet")
        try:
            return [p.couplings[window] for p in pts]
        except KeyError:
            raise ConfigurationError(
                f"window {window} not measured (chain length "
                f"{self.chain_length})"
            ) from None

    def transition_analysis(
        self,
        window: tuple[str, ...],
        points: Optional[Sequence[ScalingPoint]] = None,
    ) -> TransitionAnalysis:
        """Observed-vs-expected transition counts for one window's series."""
        pts = list(points if points is not None else self.points)
        values = self.series(window, pts)
        return TransitionAnalysis(
            window=window,
            scale_labels=tuple(f"{p.problem_class}/{p.nprocs}p" for p in pts),
            couplings=tuple(values),
            footprints=tuple(float(p.footprint_bytes) for p in pts),
            capacities=tuple(
                float(lv.capacity_bytes)
                for lv in self.machine.processor.cache_levels
            ),
        )
