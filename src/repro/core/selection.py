"""Cross-validated chain-length selection.

"As to which group of equations will lead to the best prediction, is an
area of future work." (paper §3). The paper selects the best chain length
*post hoc*, per configuration, with the actual time in hand. This module
implements the honest version: pick the chain length on *training*
configurations (where actuals were measured anyway) and apply it to new
ones.

The observed pattern — longer chains win for larger problems — emerges from
the selector in the extension experiment (``ext_best_chain``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.predictor import CouplingPredictor, PredictionInputs
from repro.errors import PredictionError
from repro.util.stats import percent_relative_error

__all__ = ["TrainingCase", "ChainLengthSelector"]


@dataclass(frozen=True)
class TrainingCase:
    """One configuration with known actual time (a training point)."""

    inputs: PredictionInputs
    actual: float
    label: str = ""


class ChainLengthSelector:
    """Chooses the chain length that generalizes, not the post-hoc best."""

    def __init__(self, lengths: Sequence[int] = (2, 3, 4, 5)) -> None:
        if not lengths or any(length < 2 for length in lengths):
            raise PredictionError("chain lengths must all be >= 2")
        self.lengths = tuple(lengths)
        self.best_length: Optional[int] = None
        self.training_errors: dict[int, float] = {}

    def fit(self, cases: Sequence[TrainingCase]) -> "ChainLengthSelector":
        """Pick the length with the lowest mean error over ``cases``.

        Lengths whose chains were not measured in *every* case are skipped;
        at least one length must be measurable everywhere.
        """
        if not cases:
            raise PredictionError("selector needs at least one training case")
        self.training_errors = {}
        for length in self.lengths:
            predictor = CouplingPredictor(length)
            errors = []
            try:
                for case in cases:
                    errors.append(
                        percent_relative_error(
                            predictor.predict(case.inputs), case.actual
                        )
                    )
            except PredictionError:
                continue  # this length was not measured in some case
            self.training_errors[length] = sum(errors) / len(errors)
        if not self.training_errors:
            raise PredictionError(
                "no candidate chain length has complete measurements"
            )
        self.best_length = min(
            self.training_errors, key=self.training_errors.__getitem__
        )
        return self

    def predict(self, inputs: PredictionInputs) -> float:
        """Predict a new configuration with the selected length."""
        if self.best_length is None:
            raise PredictionError("selector not fitted")
        return CouplingPredictor(self.best_length).predict(inputs)

    def evaluate(self, cases: Sequence[TrainingCase]) -> dict[str, float]:
        """Percent errors of the selected length on held-out cases."""
        if self.best_length is None:
            raise PredictionError("selector not fitted")
        predictor = CouplingPredictor(self.best_length)
        return {
            case.label or f"case{i}": percent_relative_error(
                predictor.predict(case.inputs), case.actual
            )
            for i, case in enumerate(cases)
        }
