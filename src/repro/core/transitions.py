"""Coupling-transition analysis (paper §4.1.4 / §6).

"As the problem size and number of processors scale, the coupling values go
through a finite number of major value changes that is dependent on the
memory subsystem of the processor architecture."

Two sides are implemented:

* **observed** — :func:`count_transitions` counts the *major* changes in a
  coupling-vs-scale series (a change is major when it exceeds a relative
  threshold);
* **expected** — :func:`expected_transitions` counts how many cache-level
  capacities the per-processor working set crosses over the same sweep;
  the paper's claim is that these two counts agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["count_transitions", "expected_transitions", "TransitionAnalysis"]

#: A step is a "major value change" above this relative magnitude.
DEFAULT_THRESHOLD = 0.05


def count_transitions(
    values: Sequence[float], threshold: float = DEFAULT_THRESHOLD
) -> int:
    """Count major changes between consecutive points of a coupling series.

    Consecutive steps in the same direction belong to the *same* transition
    (a working set gradually sliding out of a cache level is one change of
    regime, not several), so runs of same-signed major steps count once.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    if any(v <= 0 for v in values):
        raise ConfigurationError("coupling values must be > 0")
    if len(values) < 2:
        return 0
    transitions = 0
    previous_direction = 0
    for a, b in zip(values, values[1:]):
        step = (b - a) / a
        if abs(step) < threshold:
            previous_direction = 0
            continue
        direction = 1 if step > 0 else -1
        if direction != previous_direction:
            transitions += 1
        previous_direction = direction
    return transitions


def expected_transitions(
    footprints: Sequence[float], capacities: Sequence[float]
) -> int:
    """Cache-capacity crossings of a working-set series.

    ``footprints`` is the per-processor working set at each sweep point (in
    bytes, any monotone order); a transition is expected each time the
    series crosses one of the ``capacities``.
    """
    if not capacities:
        raise ConfigurationError("need at least one cache capacity")
    if len(footprints) < 2:
        return 0
    crossings = 0
    for cap in capacities:
        if cap <= 0:
            raise ConfigurationError(f"capacities must be > 0, got {cap}")
        for a, b in zip(footprints, footprints[1:]):
            if (a <= cap) != (b <= cap):
                crossings += 1
    return crossings


@dataclass(frozen=True)
class TransitionAnalysis:
    """Observed vs expected transition counts for one coupling series."""

    window: tuple[str, ...]
    scale_labels: tuple[str, ...]
    couplings: tuple[float, ...]
    footprints: tuple[float, ...]
    capacities: tuple[float, ...]
    threshold: float = DEFAULT_THRESHOLD

    @property
    def observed(self) -> int:
        """Major coupling-value changes actually seen."""
        return count_transitions(self.couplings, self.threshold)

    @property
    def expected(self) -> int:
        """Capacity crossings of the working set."""
        return expected_transitions(self.footprints, self.capacities)

    @property
    def finite(self) -> bool:
        """The paper's headline property: transitions bounded by the
        memory subsystem (at most one regime change per cache level per
        monotone sweep)."""
        return self.observed <= len(self.capacities) + 1
