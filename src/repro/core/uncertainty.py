"""Measurement-noise propagation into prediction intervals.

The paper's class-S results hinge on noise: "the predicted execution time
is so small, that measuring errors get magnified quickly" (§4.1.1). This
module quantifies that magnification: given each measurement's standard
error, it propagates the noise through the full (nonlinear) coupling
pipeline by seeded Monte Carlo resampling and reports a prediction
interval, so a user can tell whether a 3 % relative error is signal or
noise.

Monte Carlo is used instead of linearized error propagation because the
coefficients are ratios of correlated measurements; resampling through the
real pipeline is both simpler and exact in distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.kernel import ControlFlow
from repro.core.predictor import CouplingPredictor, PredictionInputs
from repro.errors import ConfigurationError, PredictionError
from repro.instrument.runner import Measurement

__all__ = ["MeasuredQuantity", "PredictionInterval", "prediction_interval"]


@dataclass(frozen=True)
class MeasuredQuantity:
    """A measured mean with its standard error."""

    mean: float
    sem: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {self.mean}")
        if self.sem < 0:
            raise ConfigurationError(f"sem must be >= 0, got {self.sem}")

    @classmethod
    def from_measurement(cls, m: Measurement) -> "MeasuredQuantity":
        """Mean and standard error of a harness measurement."""
        stats = m.stats
        return cls(mean=stats.mean, sem=stats.std / math.sqrt(stats.n))


@dataclass(frozen=True)
class PredictionInterval:
    """Monte Carlo summary of the coupling prediction's distribution."""

    mean: float
    std: float
    lo95: float
    hi95: float
    draws: int

    @property
    def relative_halfwidth(self) -> float:
        """Half the 95 % interval width, relative to the mean."""
        return 0.5 * (self.hi95 - self.lo95) / self.mean if self.mean else 0.0

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the 95 % interval?"""
        return self.lo95 <= value <= self.hi95


def prediction_interval(
    flow: ControlFlow,
    iterations: int,
    loop: Mapping[str, MeasuredQuantity],
    chains: Mapping[tuple[str, ...], MeasuredQuantity],
    chain_length: int,
    pre: Mapping[str, MeasuredQuantity] | None = None,
    post: Mapping[str, MeasuredQuantity] | None = None,
    draws: int = 400,
    seed: int = 0,
) -> PredictionInterval:
    """Propagate measurement noise through the coupling predictor.

    Each quantity is resampled as an independent Gaussian
    ``N(mean, sem)`` (truncated to stay positive); the coupling prediction
    is recomputed per draw with the unmodified pipeline.
    """
    if draws < 10:
        raise PredictionError(f"need >= 10 draws, got {draws}")
    pre = dict(pre or {})
    post = dict(post or {})
    rng = np.random.Generator(np.random.PCG64(seed))
    predictor = CouplingPredictor(chain_length)

    def sample(q: MeasuredQuantity) -> float:
        value = rng.normal(q.mean, q.sem) if q.sem else q.mean
        # Times are positive; reflect rare negative draws.
        return abs(value) if value != 0 else q.mean

    values = np.empty(draws)
    for i in range(draws):
        inputs = PredictionInputs(
            flow=flow,
            iterations=iterations,
            loop_times={k: sample(q) for k, q in loop.items()},
            pre_times={k: sample(q) for k, q in pre.items()},
            post_times={k: sample(q) for k, q in post.items()},
            chain_times={w: sample(q) for w, q in chains.items()},
        )
        values[i] = predictor.predict(inputs)
    lo, hi = np.percentile(values, [2.5, 97.5])
    return PredictionInterval(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)),
        lo95=float(lo),
        hi95=float(hi),
        draws=draws,
    )
