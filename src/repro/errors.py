"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid machine, benchmark, or experiment configuration."""


class SimulationError(ReproError):
    """Base class for failures inside the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    Carries the list of blocked process names so tests can assert on the
    precise set of stuck ranks.
    """

    def __init__(self, blocked: list[str]) -> None:
        self.blocked = list(blocked)
        super().__init__(
            "simulation deadlock: %d process(es) still blocked: %s"
            % (len(self.blocked), ", ".join(self.blocked))
        )


class CommunicationError(SimulationError):
    """Invalid use of the simulated message-passing layer."""


class MeasurementError(ReproError):
    """The measurement protocol could not produce a valid observation."""


class PredictionError(ReproError):
    """A predictor was asked for a prediction it cannot produce."""


class ExperimentError(ReproError):
    """An experiment driver failed or was asked for an unknown experiment."""


class ServiceError(ReproError):
    """A failure inside the prediction-serving layer."""


class ServiceSaturatedError(ServiceError):
    """The service's worker queue is full; retry after a backoff.

    Carries ``retry_after`` (seconds), the service's estimate of when
    capacity will free up, so clients can implement honest backoff instead
    of hammering a saturated queue.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class ServiceClosedError(ServiceError):
    """A request arrived after the service was shut down."""


class ServiceTimeoutError(ServiceError):
    """A request's deadline expired before its report was ready.

    Carries ``timeout`` (seconds), the deadline that was exceeded. The
    underlying computation may still complete and populate the cache; the
    error only means *this* caller stopped waiting.
    """

    def __init__(self, message: str, timeout: float = 0.0) -> None:
        self.timeout = timeout
        super().__init__(message)


class ServiceDegradedError(ServiceError):
    """The service is in cache-only degraded mode and cannot compute.

    Raised for cache misses while the worker pool is unhealthy (too many
    consecutive worker crashes). Cached reports are still served; new
    simulations are refused except for periodic recovery probes.
    """


class WorkerCrashError(ServiceError):
    """A worker died (or was killed by fault injection) while running a cell.

    The pool detects these, counts a respawn, and — after enough
    consecutive crashes — declares itself unhealthy, flipping the service
    into degraded mode.
    """


class ClientDisconnectError(ServiceError):
    """The wire client vanished mid-request; no response can be delivered."""


class InjectedFaultError(ServiceError):
    """A generic failure planted by :mod:`repro.faults` at a named site."""
