"""Experiment drivers: one per table of the paper's evaluation (§4).

Use the registry to enumerate and run them::

    from repro.experiments import EXPERIMENTS, run_experiment
    result = run_experiment("table3b")
    print(result.table.render())
    print(result.comparison())      # paper-vs-measured summary

Every driver shares a :class:`~repro.experiments.pipeline.ExperimentPipeline`
so measurements are reused across tables (e.g. Tables 3a and 3b come from
the same runs, as in the paper).
"""

from repro.experiments.paper_data import PAPER_TABLES, PaperTable
from repro.experiments.pipeline import (
    ConfigResult,
    ExperimentPipeline,
    ExperimentSettings,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "ConfigResult",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentPipeline",
    "ExperimentResult",
    "ExperimentSettings",
    "PAPER_TABLES",
    "PaperTable",
    "run_experiment",
]
