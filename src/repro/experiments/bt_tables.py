"""BT experiment drivers: paper Tables 1, 2a/2b, 3a/3b, 4a/4b (§4.1)."""

from __future__ import annotations

from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.experiments.tables import (
    build_couplings_table,
    build_dataset_table,
    build_times_table,
)

__all__ = []  # everything is reached through the registry

#: BT/SP require square process counts; class S tops out at 16 in the paper.
_S_PROCS = (4, 9, 16)
_PROCS = (4, 9, 16, 25)


def _table1(_: ExperimentPipeline) -> ExperimentResult:
    return build_dataset_table(
        "table1", "Table 1: Data sets used with the NPB BT", "BT", ("S", "W", "A")
    )


def _table2a(p: ExperimentPipeline) -> ExperimentResult:
    return build_couplings_table(
        p,
        "table2a",
        "Table 2a: Coupling values for BT two kernels with Class S",
        "BT",
        "S",
        _S_PROCS,
        chain_length=2,
    )


def _table2b(p: ExperimentPipeline) -> ExperimentResult:
    return build_times_table(
        p,
        "table2b",
        "Table 2b: Comparison of execution times for BT with Class S",
        "BT",
        "S",
        _S_PROCS,
        chain_lengths=(2,),
    )


def _table3a(p: ExperimentPipeline) -> ExperimentResult:
    return build_couplings_table(
        p,
        "table3a",
        "Table 3a: Coupling values for BT three kernels with Class W",
        "BT",
        "W",
        _PROCS,
        chain_length=3,
    )


def _table3b(p: ExperimentPipeline) -> ExperimentResult:
    return build_times_table(
        p,
        "table3b",
        "Table 3b: Comparison of execution times for BT with Class W "
        "using three kernels",
        "BT",
        "W",
        _PROCS,
        chain_lengths=(3,),
    )


def _table4a(p: ExperimentPipeline) -> ExperimentResult:
    return build_couplings_table(
        p,
        "table4a",
        "Table 4a: Coupling values for BT four kernels with Class A",
        "BT",
        "A",
        _PROCS,
        chain_length=4,
    )


def _table4b(p: ExperimentPipeline) -> ExperimentResult:
    return build_times_table(
        p,
        "table4b",
        "Table 4b: Comparison of execution times for BT with Class A",
        "BT",
        "A",
        _PROCS,
        chain_lengths=(4,),
    )


register(Experiment("table1", "BT data sets", "Grid sizes per class", _table1))
register(
    Experiment(
        "table2a",
        "BT class S pair couplings",
        "Pairwise coupling values of the five BT loop kernels",
        _table2a,
    )
)
register(
    Experiment(
        "table2b",
        "BT class S execution times",
        "Actual vs summation vs 2-kernel coupling prediction",
        _table2b,
    )
)
register(
    Experiment(
        "table3a",
        "BT class W 3-kernel couplings",
        "Three-kernel chain coupling values",
        _table3a,
    )
)
register(
    Experiment(
        "table3b",
        "BT class W execution times",
        "Actual vs summation vs 3-kernel coupling prediction",
        _table3b,
    )
)
register(
    Experiment(
        "table4a",
        "BT class A 4-kernel couplings",
        "Four-kernel chain coupling values",
        _table4a,
    )
)
register(
    Experiment(
        "table4b",
        "BT class A execution times",
        "Actual vs summation vs 4-kernel coupling prediction",
        _table4b,
    )
)
