"""Cross-machine relative-performance experiment (paper §1 motivation).

"models can be used to predict the relative performance of different
systems used to execute an application." This extension runs the complete
methodology on two machines — the paper's IBM SP and a 2002-class
commodity cluster — and checks:

* each machine's coupling predictor ranks the two systems correctly
  (predicts which machine runs the application faster, and by roughly the
  right factor) without ever running the full application on either;
* coupling values themselves *differ between machines* with the same code
  and input — they are properties of the (application, memory subsystem)
  pair, exactly the paper's §6 observation that the transitions "depend on
  the memory subsystem of the processor architecture".
"""

from __future__ import annotations

from repro.core.kernel import ControlFlow
from repro.core.predictor import CouplingPredictor, PredictionInputs
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.instrument.runner import ApplicationRunner, ChainRunner
from repro.npb import make_benchmark
from repro.simmachine.machine import commodity_cluster_2002
from repro.util.tables import Table

__all__ = []

_CHAIN_LENGTH = 3
_CONFIGS = (("BT", "W", 4), ("LU", "W", 4))


def _measure_on(machine, settings, bench_name, cls, procs):
    bench = make_benchmark(bench_name, cls, procs)
    flow = ControlFlow(bench.loop_kernel_names)
    runner = ChainRunner(bench, machine, settings.measurement)
    isolated = {
        k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
    }
    chains = {
        w: runner.measure(w).mean for w in flow.windows(_CHAIN_LENGTH)
    }
    pre = {k: runner.measure((k,)).mean for k in bench.pre_kernel_names}
    post = {k: runner.measure((k,)).mean for k in bench.post_kernel_names}
    inputs = PredictionInputs(
        flow=flow,
        iterations=bench.iterations,
        loop_times=isolated,
        pre_times=pre,
        post_times=post,
        chain_times=chains,
    )
    actual = ApplicationRunner(
        bench, machine, seed=settings.application_seed
    ).run().total_time
    return inputs, actual


def _cross_machine(p: ExperimentPipeline) -> ExperimentResult:
    sp_machine = p.settings.machine
    cluster = commodity_cluster_2002()
    predictor = CouplingPredictor(_CHAIN_LENGTH)
    table = Table(
        title="Extension: cross-machine relative performance "
        f"(coupling chains of {_CHAIN_LENGTH})",
        columns=[
            "Workload",
            "Machine",
            "Actual",
            "Predicted",
            "Error %",
            "Mean coupling",
        ],
        precision=2,
    )
    observations = []
    for bench_name, cls, procs in _CONFIGS:
        rows = {}
        for machine in (sp_machine, cluster):
            inputs, actual = _measure_on(
                machine, p.settings, bench_name, cls, procs
            )
            predicted = predictor.predict(inputs)
            couplings = predictor.coupling_set(inputs).values()
            mean_c = sum(couplings.values()) / len(couplings)
            err = 100 * abs(predicted - actual) / actual
            table.add_row(
                f"{bench_name} {cls} {procs}p",
                machine.name,
                actual,
                predicted,
                err,
                mean_c,
            )
            rows[machine.name] = (actual, predicted, mean_c)
        (a_act, a_pred, a_c) = rows[sp_machine.name]
        (b_act, b_pred, b_c) = rows[cluster.name]
        ranking_ok = (a_pred < b_pred) == (a_act < b_act)
        ratio_act = b_act / a_act
        ratio_pred = b_pred / a_pred
        observations.append(
            f"{bench_name} {cls}: predicted speed ratio "
            f"{ratio_pred:.2f}x vs actual {ratio_act:.2f}x "
            f"(ranking {'correct' if ranking_ok else 'WRONG'}); "
            f"mean coupling {a_c:.3f} on the SP vs {b_c:.3f} on the cluster"
        )
    return ExperimentResult(
        experiment_id="ext_cross_machine",
        table=table,
        observations=observations,
    )


register(
    Experiment(
        "ext_cross_machine",
        "Cross-machine prediction (extension)",
        "Relative performance of two systems predicted from kernel "
        "measurements and couplings alone",
        _cross_machine,
    )
)
