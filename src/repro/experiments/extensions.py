"""Extension experiments beyond the paper's tables.

* ``ext_best_chain`` — the paper's §3 open question ("which group of
  equations will lead to the best prediction") answered with honest
  cross-validation: the chain length is selected on half the processor
  counts and evaluated on the other half.
* ``ext_miss_coupling`` — the paper's §2 remark that the formulation
  applies to cache misses: coupling values computed over bytes-from-memory
  instead of seconds, side by side with the time couplings.
* ``ext_composition`` — the fitted Eq. 3 composition models, rendered as
  the paper writes them.
"""

from __future__ import annotations

from repro.core.composition import CompositionModel
from repro.core.coupling import CouplingSet
from repro.core.metrics import Metric
from repro.core.selection import ChainLengthSelector, TrainingCase
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.instrument.runner import ChainRunner
from repro.instrument.cache_counters import cache_report
from repro.npb import make_benchmark
from repro.util.tables import Table

__all__ = []


def _best_chain(p: ExperimentPipeline) -> ExperimentResult:
    table = Table(
        title="Extension: cross-validated chain-length selection",
        columns=[
            "Configuration",
            "Trained on",
            "Selected L",
            "Held-out error",
            "Post-hoc best L",
        ],
        precision=2,
    )
    observations = []
    setups = [
        ("BT", "W", (4, 9, 16, 25), (2, 3, 4, 5)),
        ("SP", "W", (4, 9, 16, 25), (4, 5)),
        ("LU", "W", (4, 8, 16, 32), (2, 3, 4)),
    ]
    for bench_name, cls, procs, lengths in setups:
        results = {
            nproc: p.config_result(bench_name, cls, nproc, lengths)
            for nproc in procs
        }
        train_procs, test_procs = procs[::2], procs[1::2]
        selector = ChainLengthSelector(lengths).fit(
            [
                TrainingCase(results[n].inputs, results[n].actual, f"{n}p")
                for n in train_procs
            ]
        )
        held_out = selector.evaluate(
            [
                TrainingCase(results[n].inputs, results[n].actual, f"{n}p")
                for n in test_procs
            ]
        )
        mean_err = sum(held_out.values()) / len(held_out)
        # Post-hoc best over every configuration, for comparison.
        from repro.core.predictor import best_chain_length

        post_hoc = {
            n: best_chain_length(results[n].inputs, results[n].actual, lengths)[0]
            for n in procs
        }
        table.add_row(
            f"{bench_name} class {cls}",
            "/".join(f"{n}p" for n in train_procs),
            selector.best_length,
            mean_err,
            "/".join(str(post_hoc[n]) for n in procs),
        )
        observations.append(
            f"{bench_name} {cls}: selected L={selector.best_length}, "
            f"held-out error {mean_err:.2f} %"
        )
    return ExperimentResult(
        experiment_id="ext_best_chain", table=table, observations=observations
    )


def _miss_coupling(p: ExperimentPipeline) -> ExperimentResult:
    bench = make_benchmark("BT", "W", 4)
    runner = ChainRunner(bench, p.settings.machine, p.settings.measurement)
    result = p.config_result("BT", "W", 4, (2,))
    flow = result.flow
    iso_miss = {
        k: float(cache_report(runner.measure((k,))).bytes_from_memory)
        for k in flow.names
    }
    chain_miss = {
        w: float(cache_report(runner.measure(w)).bytes_from_memory)
        for w in flow.windows(2)
    }
    miss_set = CouplingSet.from_performances(
        flow, 2, chain_miss, iso_miss, metric=Metric.CACHE_MISSES
    )
    time_values = result.coupling_values(2)
    table = Table(
        title="Extension: time vs cache-miss coupling (BT class W, 4 procs)",
        columns=["Kernel pair", "C (time)", "C (cache misses)"],
        precision=3,
    )
    for window in flow.windows(2):
        table.add_row(
            ", ".join(window), time_values[window], miss_set[window].value
        )
    both_constructive = all(
        time_values[w] < 1 and miss_set[w].value < 1 for w in flow.windows(2)
    )
    return ExperimentResult(
        experiment_id="ext_miss_coupling",
        table=table,
        observations=[
            "both metrics agree on the direction of every pair"
            if both_constructive
            else "metrics disagree on some pair",
            "miss couplings are stronger than time couplings (misses are "
            "the shared resource; time also contains compute)",
        ],
    )


def _composition(p: ExperimentPipeline) -> ExperimentResult:
    table = Table(
        title="Extension: fitted composition models (Eq. 3)",
        columns=["Configuration", "Equation (numeric coefficients)"],
    )
    observations = []
    for bench_name, cls, procs, length in (
        ("BT", "W", 4, 3),
        ("SP", "W", 4, 5),
        ("LU", "W", 4, 3),
    ):
        result = p.config_result(bench_name, cls, procs, (length,))
        model = CompositionModel.fit(result.inputs, length)
        table.add_row(f"{bench_name} {cls} {procs}p", model.equation(numeric=True))
        err = 100 * abs(model.evaluate() - result.actual) / result.actual
        observations.append(
            f"{bench_name} {cls}: {model.equation()} -> "
            f"evaluates within {err:.2f} % of actual"
        )
    return ExperimentResult(
        experiment_id="ext_composition", table=table, observations=observations
    )


register(
    Experiment(
        "ext_best_chain",
        "Chain-length selection (extension)",
        "Cross-validated answer to the paper's open question on chain length",
        _best_chain,
    )
)
register(
    Experiment(
        "ext_miss_coupling",
        "Cache-miss coupling (extension)",
        "Coupling values over cache misses vs over time (paper §2 remark)",
        _miss_coupling,
    )
)
register(
    Experiment(
        "ext_composition",
        "Composition models (extension)",
        "The fitted Eq. 3 equations, rendered and evaluated",
        _composition,
    )
)
