"""Extension: predict processor counts that were never measured.

Combines the Prophesy-style scaling fits (:mod:`repro.core.fitting`) with
borrowed couplings (:mod:`repro.core.reuse`): train on the three smaller
processor counts of each code, predict the largest count with **zero
measurements at the target**, and compare against the simulated actual.
"""

from __future__ import annotations

from repro.core.fitting import ScalingModelSet, npb_work_share
from repro.core.predictor import CouplingPredictor
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.util.tables import Table

__all__ = []

_SETUPS = (
    ("BT", "W", (4, 9, 16), 25, 3),
    ("SP", "W", (4, 9, 16), 25, 4),
    ("LU", "W", (4, 8, 16), 32, 3),
)


def _extrapolation(p: ExperimentPipeline) -> ExperimentResult:
    table = Table(
        title="Extension: zero-measurement extrapolation to unmeasured "
        "processor counts",
        columns=[
            "Workload",
            "Trained on",
            "Target",
            "Actual",
            "Predicted",
            "Error %",
            "Worst fit residual %",
        ],
        precision=2,
    )
    observations = []
    for bench_name, cls, train_procs, target_procs, length in _SETUPS:
        results = {
            procs: p.config_result(bench_name, cls, procs, (length,))
            for procs in train_procs
        }
        flow = results[train_procs[0]].flow
        model_set = ScalingModelSet(
            flow,
            chain_length=length,
            work_share=npb_work_share(bench_name, cls),
        )
        model_set.fit_loop_kernels(
            {
                k: {q: results[q].inputs.loop_times[k] for q in train_procs}
                for k in flow.names
            }
        )
        one_shots = {}
        for q in train_procs:
            for k, t in {**results[q].inputs.pre_times,
                         **results[q].inputs.post_times}.items():
                one_shots.setdefault(k, {})[q] = t
        model_set.fit_one_shots(one_shots)
        for q in train_procs:
            model_set.add_couplings(
                cls, q, CouplingPredictor(length).coupling_set(results[q].inputs)
            )
        # The target: only its *actual* is simulated, for scoring.
        target = p.config_result(bench_name, cls, target_procs)
        predicted = model_set.predict(
            cls, target_procs, iterations=target.inputs.iterations
        )
        err = 100 * abs(predicted - target.actual) / target.actual
        table.add_row(
            f"{bench_name} {cls}",
            "/".join(f"{q}p" for q in train_procs),
            f"{target_procs}p",
            target.actual,
            predicted,
            err,
            100 * model_set.worst_training_residual(),
        )
        observations.append(
            f"{bench_name} {cls}: {target_procs}p predicted within "
            f"{err:.2f} % with no measurements at the target"
        )
    return ExperimentResult(
        experiment_id="ext_extrapolation",
        table=table,
        observations=observations,
    )


register(
    Experiment(
        "ext_extrapolation",
        "Zero-measurement extrapolation (extension)",
        "Scaling fits + borrowed couplings predict unmeasured processor "
        "counts (the Prophesy workflow end-to-end)",
        _extrapolation,
    )
)
