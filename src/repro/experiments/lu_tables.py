"""LU experiment drivers: paper Tables 7 and 8a/8b/8c (§4.3)."""

from __future__ import annotations

from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.experiments.tables import build_dataset_table, build_times_table

__all__ = []

#: LU requires power-of-two process counts.
_PROCS = (4, 8, 16, 32)


def _table7(_: ExperimentPipeline) -> ExperimentResult:
    return build_dataset_table(
        "table7", "Table 7: Data sets used with the NPB LU", "LU", ("W", "A", "B")
    )


def _times(p: ExperimentPipeline, table_id: str, cls: str) -> ExperimentResult:
    return build_times_table(
        p,
        table_id,
        f"Table {table_id[-2:]}: Comparison of execution times for LU "
        f"with Class {cls}",
        "LU",
        cls,
        _PROCS,
        chain_lengths=(3,),
    )


register(Experiment("table7", "LU data sets", "Grid sizes per class", _table7))
register(
    Experiment(
        "table8a",
        "LU class W execution times",
        "Actual vs summation vs 3-kernel coupling prediction",
        lambda p: _times(p, "table8a", "W"),
    )
)
register(
    Experiment(
        "table8b",
        "LU class A execution times",
        "Actual vs summation vs 3-kernel coupling prediction",
        lambda p: _times(p, "table8b", "A"),
    )
)
register(
    Experiment(
        "table8c",
        "LU class B execution times",
        "Actual vs summation vs 3-kernel coupling prediction",
        lambda p: _times(p, "table8c", "B"),
    )
)
