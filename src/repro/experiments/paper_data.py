"""The paper's reported numbers, as far as the surviving text preserves them.

The available full text (an OCR-style rendering) lost most absolute table
cells but kept essentially all *relative errors* and the prose averages, so
the reproduction compares against those: per-column percent relative errors
of each predictor, and the qualitative claims about coupling-value regimes.

``None`` marks cells the text does not preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PaperTable", "PAPER_TABLES"]


@dataclass(frozen=True)
class PaperTable:
    """What the paper reports for one table."""

    table_id: str
    title: str
    proc_counts: tuple[int, ...]
    #: Percent relative errors per predictor row, aligned with proc_counts.
    errors: dict[str, tuple[Optional[float], ...]] = field(default_factory=dict)
    #: Prose averages: predictor -> average percent relative error.
    average_errors: dict[str, float] = field(default_factory=dict)
    notes: tuple[str, ...] = ()


PAPER_TABLES: dict[str, PaperTable] = {
    "table1": PaperTable(
        table_id="table1",
        title="Data sets used with the NPB BT",
        proc_counts=(),
        notes=("S = 12^3, W = 32^3, A = 64^3",),
    ),
    "table2a": PaperTable(
        table_id="table2a",
        title="Coupling values for BT two kernels with Class S",
        proc_counts=(4, 9, 16),
        notes=(
            "values lost to OCR; trend: couplings get larger as the number "
            "of processors increases, exception {Add, Copy_Faces} at 9 procs",
        ),
    ),
    "table2b": PaperTable(
        table_id="table2b",
        title="Comparison of execution times for BT with Class S",
        proc_counts=(4, 9, 16),
        errors={
            "Summation": (17.45, 37.95, 36.76),
            "Coupling: 2 kernels": (19.11, 36.47, 29.58),
        },
        average_errors={"Summation": 30.72, "Coupling: 2 kernels": 28.39},
        notes=(
            "predictions poor for everyone: small predicted times magnify "
            "measurement error; summation best at 4 procs, coupling better "
            "at 9 and 16",
        ),
    ),
    "table3a": PaperTable(
        table_id="table3a",
        title="Coupling values for BT three kernels with Class W",
        proc_counts=(4, 9, 16, 25),
        notes=(
            "large constructive coupling for all three-kernel chains; "
            "values change very little as processors scale",
        ),
    ),
    "table3b": PaperTable(
        table_id="table3b",
        title="Comparison of execution times for BT with Class W using three kernels",
        proc_counts=(4, 9, 16, 25),
        errors={
            "Summation": (23.93, 24.44, 23.22, 18.10),
            "Coupling: 3 kernels": (1.15, 2.54, 1.97, 3.00),
        },
        average_errors={"Summation": 22.42, "Coupling: 3 kernels": 1.42},
        notes=(
            "internal inconsistency in the paper: the quoted 1.42 % average "
            "does not equal the mean of the table row (2.17 %)",
        ),
    ),
    "table4a": PaperTable(
        table_id="table4a",
        title="Coupling values for BT four kernels with Class A",
        proc_counts=(4, 9, 16, 25),
        notes=(
            "couplings ~0.9 at 4 procs (working set far beyond the caches), "
            "dropping toward ~0.8 as the per-processor problem shrinks, "
            "with little change beyond 9 procs",
        ),
    ),
    "table4b": PaperTable(
        table_id="table4b",
        title="Comparison of execution times for BT with Class A",
        proc_counts=(4, 9, 16, 25),
        errors={
            "Summation": (10.64, 27.29, 25.80, 23.45),
            "Coupling: 4 kernels": (1.73, 1.04, 0.32, 0.06),
        },
        average_errors={"Summation": 21.80, "Coupling: 4 kernels": 0.79},
    ),
    "table5": PaperTable(
        table_id="table5",
        title="Data sets used with the NPB SP",
        proc_counts=(),
        notes=("W = 36^3, A = 64^3, B = 102^3",),
    ),
    "table6a": PaperTable(
        table_id="table6a",
        title="Comparison of execution times for SP with Class W",
        proc_counts=(4, 9, 16, 25),
        errors={
            "Summation": (27.61, 15.81, 12.74, 7.63),
            "Coupling: 4 kernels": (1.50, 0.23, 2.11, 2.67),
            "Coupling: 5 kernels": (0.18, 0.92, 0.55, 1.13),
        },
        average_errors={
            "Summation": 15.95,
            "Coupling: 4 kernels": 1.63,
            "Coupling: 5 kernels": 0.70,
        },
    ),
    "table6b": PaperTable(
        table_id="table6b",
        title="Comparison of execution times for SP with Class A",
        proc_counts=(4, 9, 16, 25),
        errors={
            "Summation": (29.09, 20.10, 18.04, 14.93),
            "Coupling: 4 kernels": (4.52, 2.47, 0.02, 0.86),
            "Coupling: 5 kernels": (1.83, 1.08, 1.32, 0.48),
        },
        average_errors={
            "Summation": 20.54,
            "Coupling: 4 kernels": 1.97,
            "Coupling: 5 kernels": 1.18,
        },
    ),
    "table6c": PaperTable(
        table_id="table6c",
        title="Comparison of execution times for SP with Class B",
        proc_counts=(4, 9, 16, 25),
        errors={
            "Summation": (23.09, 20.50, 19.34, 18.61),
            "Coupling: 4 kernels": (0.63, 1.00, 1.54, 1.85),
            "Coupling: 5 kernels": (1.84, 1.38, 1.00, 1.75),
        },
        notes=("worst coupling error 1.85 %; best summation error 18.61 %",),
    ),
    "table7": PaperTable(
        table_id="table7",
        title="Data sets used with the NPB LU",
        proc_counts=(),
        notes=("W = 33^3, A = 64^3, B = 102^3",),
    ),
    "table8a": PaperTable(
        table_id="table8a",
        title="Comparison of execution times for LU with Class W",
        proc_counts=(4, 8, 16, 32),
        errors={
            "Summation": (9.23, 0.21, 4.40, 37.67),
            "Coupling: 3 kernels": (1.67, 0.19, 2.54, 9.27),
        },
        average_errors={"Summation": 12.88, "Coupling: 3 kernels": 3.60},
        notes=(
            "internal inconsistency in the paper: the quoted 3.60 % average "
            "does not equal the mean of the table row (3.42 %)",
        ),
    ),
    "table8b": PaperTable(
        table_id="table8b",
        title="Comparison of execution times for LU with Class A",
        proc_counts=(4, 8, 16, 32),
        errors={
            "Summation": (8.20, 3.73, 2.17, 4.14),
            "Coupling: 3 kernels": (0.92, 0.86, 1.04, 3.07),
        },
        average_errors={"Summation": 4.56, "Coupling: 3 kernels": 1.47},
    ),
    "table8c": PaperTable(
        table_id="table8c",
        title="Comparison of execution times for LU with Class B",
        proc_counts=(4, 8, 16, 32),
        errors={
            "Summation": (3.34, 2.58, 3.80, 2.28),
            "Coupling: 3 kernels": (0.29, 0.42, 1.44, 1.31),
        },
        notes=("worst coupling error 1.44 %; best summation error 2.28 %",),
    ),
    "scaling": PaperTable(
        table_id="scaling",
        title="Finite coupling transitions under scaling (§4.1.4, §6)",
        proc_counts=(),
        notes=(
            "coupling values go through a finite number of major value "
            "changes, dependent on the memory subsystem",
        ),
    ),
}
