"""Shared measurement/prediction pipeline for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import obs
from repro.core.kernel import ControlFlow
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    SummationPredictor,
)
from repro.errors import ExperimentError
from repro.instrument.runner import (
    ApplicationRunner,
    ChainRunner,
    MeasurementConfig,
)
from repro.npb import make_benchmark
from repro.simmachine.machine import MachineConfig, ibm_sp_argonne

__all__ = ["ExperimentSettings", "ConfigResult", "ExperimentPipeline"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Machine + measurement configuration shared by all experiments."""

    machine: MachineConfig = field(default_factory=ibm_sp_argonne)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    application_seed: int = 7


@dataclass
class ConfigResult:
    """Everything measured and predicted at one (benchmark, class, procs)."""

    benchmark: str
    problem_class: str
    nprocs: int
    flow: ControlFlow
    actual: float
    inputs: PredictionInputs
    _coupling_cache: dict[int, float] = field(default_factory=dict)

    @property
    def summation(self) -> float:
        """The summation-methodology prediction."""
        return SummationPredictor().predict(self.inputs)

    def coupling_prediction(self, chain_length: int) -> float:
        """The coupling prediction for a given chain length."""
        if chain_length not in self._coupling_cache:
            self._coupling_cache[chain_length] = CouplingPredictor(
                chain_length
            ).predict(self.inputs)
        return self._coupling_cache[chain_length]

    def coupling_values(self, chain_length: int) -> dict[tuple[str, ...], float]:
        """``window -> coupling value`` for a given chain length."""
        return (
            CouplingPredictor(chain_length)
            .coupling_set(self.inputs)
            .values()
        )


class ExperimentPipeline:
    """Measures configurations on demand and caches everything.

    Chain measurements accumulate per configuration, so a table needing
    chain length 3 after another table measured length 2 only runs the new
    windows — mirroring how the paper reuses one experimental campaign
    across its tables.
    """

    def __init__(self, settings: Optional[ExperimentSettings] = None):
        self.settings = settings or ExperimentSettings()
        self._results: dict[tuple[str, str, int], ConfigResult] = {}
        self._runners: dict[tuple[str, str, int], ChainRunner] = {}

    def _base_result(
        self, benchmark: str, problem_class: str, nprocs: int
    ) -> tuple[ConfigResult, ChainRunner]:
        key = (benchmark, problem_class, nprocs)
        if key in self._results:
            return self._results[key], self._runners[key]
        bench = make_benchmark(benchmark, problem_class, nprocs)
        flow = ControlFlow(bench.loop_kernel_names)
        runner = ChainRunner(bench, self.settings.machine, self.settings.measurement)
        with obs.span(
            "pipeline.isolated", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            isolated = {
                k: m.mean
                for k, m in runner.measure_all_isolated(flow.names).items()
            }
        with obs.span(
            "pipeline.one_shots", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            pre = {k: runner.measure((k,)).mean for k in bench.pre_kernel_names}
            post = {k: runner.measure((k,)).mean for k in bench.post_kernel_names}
        with obs.span(
            "pipeline.application", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            actual = ApplicationRunner(
                bench, self.settings.machine, seed=self.settings.application_seed
            ).run().total_time
        inputs = PredictionInputs(
            flow=flow,
            iterations=bench.iterations,
            loop_times=isolated,
            pre_times=pre,
            post_times=post,
            chain_times={},
        )
        result = ConfigResult(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            flow=flow,
            actual=actual,
            inputs=inputs,
        )
        self._results[key] = result
        self._runners[key] = runner
        obs.get_registry().counter("pipeline_configs_measured").inc()
        return result, runner

    def config_result(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        chain_lengths: Sequence[int] = (),
    ) -> ConfigResult:
        """Measured + predicted numbers for one configuration.

        ``chain_lengths`` lists the coupling chain lengths the caller will
        query; their windows are measured (once) here.
        """
        result, runner = self._base_result(benchmark, problem_class, nprocs)
        chains: dict = dict(result.inputs.chain_times)
        added = False
        with obs.span(
            "pipeline.chains", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            for length in chain_lengths:
                if not 2 <= length <= len(result.flow):
                    raise ExperimentError(
                        f"chain length {length} invalid for {benchmark} "
                        f"(flow of {len(result.flow)})"
                    )
                for window in result.flow.windows(length):
                    if window not in chains:
                        chains[window] = runner.measure(window).mean
                        added = True
        if added:
            result.inputs = PredictionInputs(
                flow=result.flow,
                iterations=result.inputs.iterations,
                loop_times=result.inputs.loop_times,
                pre_times=result.inputs.pre_times,
                post_times=result.inputs.post_times,
                chain_times=chains,
            )
            result._coupling_cache.clear()
        return result

    def sweep(
        self,
        benchmark: str,
        problem_class: str,
        proc_counts: Sequence[int],
        chain_lengths: Sequence[int] = (),
    ) -> list[ConfigResult]:
        """Config results across processor counts (one table column each)."""
        return [
            self.config_result(benchmark, problem_class, p, chain_lengths)
            for p in proc_counts
        ]
