"""Shared measurement/prediction pipeline for the experiment drivers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro import faults, obs
from repro.analytic.tiers import TIER_ANALYTIC, TierPolicy, resolve_tier_policy
from repro.core.kernel import ControlFlow
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    SummationPredictor,
)
from repro.errors import ExperimentError
from repro.instrument.runner import (
    ApplicationRunner,
    ChainRunner,
    MeasurementConfig,
)
from repro.npb import make_benchmark
from repro.parallel.executor import execute_cells
from repro.parallel.memo import SimulationMemoStore
from repro.parallel.worker import (
    CellResult,
    CellSpec,
    measure_chain,
    prime_runner_overhead,
    run_application,
)
from repro.simmachine.machine import MachineConfig, ibm_sp_argonne

__all__ = ["ExperimentSettings", "ConfigResult", "ExperimentPipeline"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Machine + measurement configuration shared by all experiments."""

    machine: MachineConfig = field(default_factory=ibm_sp_argonne)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    application_seed: int = 7


@dataclass
class ConfigResult:
    """Everything measured and predicted at one (benchmark, class, procs)."""

    benchmark: str
    problem_class: str
    nprocs: int
    flow: ControlFlow
    actual: float
    inputs: PredictionInputs
    #: The serving-ladder rung that produced these numbers
    #: ("analytic" | "simulation"); memoized cells replay simulation data.
    tier: str = "simulation"
    #: Derived-value memo only — excluded from comparison and from pickling
    #: so results cross process boundaries as pure measurement data.
    _coupling_cache: dict[int, float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def summation(self) -> float:
        """The summation-methodology prediction."""
        return SummationPredictor().predict(self.inputs)

    def coupling_prediction(self, chain_length: int) -> float:
        """The coupling prediction for a given chain length."""
        if chain_length not in self._coupling_cache:
            self._coupling_cache[chain_length] = CouplingPredictor(
                chain_length
            ).predict(self.inputs)
        return self._coupling_cache[chain_length]

    def coupling_values(self, chain_length: int) -> dict[tuple[str, ...], float]:
        """``window -> coupling value`` for a given chain length."""
        return (
            CouplingPredictor(chain_length)
            .coupling_set(self.inputs)
            .values()
        )

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_coupling_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class ExperimentPipeline:
    """Measures configurations on demand and caches everything.

    Chain measurements accumulate per configuration, so a table needing
    chain length 3 after another table measured length 2 only runs the new
    windows — mirroring how the paper reuses one experimental campaign
    across its tables.

    ``memo`` (a directory path or a :class:`SimulationMemoStore`) plugs in
    the content-addressed simulation cache: every chain/application
    simulation is looked up before it runs and stored after. ``jobs > 1``
    fans independent sweep cells across worker processes. Both are safe
    because the simulation tier is deterministic (REP001): serial,
    parallel, and cache-warm runs produce bit-identical numbers.

    ``tier_policy`` (a :class:`~repro.analytic.tiers.TierPolicy` or name)
    turns on the closed-form fast path: under ``fast``/``balanced``,
    configurations the analytic tier answers within the policy's error
    budget skip measurement entirely (``ConfigResult.tier == "analytic"``);
    everything else — and every configuration under the default ``exact``
    policy — takes the unchanged simulation path, so ``exact`` results stay
    bit-identical to pre-ladder pipelines.
    """

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        memo: Union[SimulationMemoStore, str, os.PathLike, None] = None,
        jobs: int = 1,
        tier_policy: "str | TierPolicy" = "exact",
    ):
        self.settings = settings or ExperimentSettings()
        if memo is None or isinstance(memo, SimulationMemoStore):
            self.memo = memo
        else:
            self.memo = SimulationMemoStore(memo)
        self.jobs = jobs
        self.tier_policy = resolve_tier_policy(tier_policy)
        self._results: dict[tuple[str, str, int], ConfigResult] = {}
        self._runners: dict[tuple[str, str, int], ChainRunner] = {}
        #: Analytic answers are per-(config, chain lengths) — more windows
        #: mean a fresh closed-form pass, never a partial mutation.
        self._analytic_results: dict[tuple, ConfigResult] = {}

    def _runner_for(self, key: tuple[str, str, int]) -> ChainRunner:
        """The (lazily created) measurement runner for one configuration."""
        runner = self._runners.get(key)
        if runner is None:
            bench = make_benchmark(*key)
            runner = ChainRunner(
                bench, self.settings.machine, self.settings.measurement
            )
            prime_runner_overhead(runner, self.memo)
            self._runners[key] = runner
        return runner

    def _base_result(
        self, benchmark: str, problem_class: str, nprocs: int
    ) -> tuple[ConfigResult, ChainRunner]:
        key = (benchmark, problem_class, nprocs)
        if key in self._results:
            return self._results[key], self._runner_for(key)
        runner = self._runner_for(key)
        bench = runner.benchmark
        flow = ControlFlow(bench.loop_kernel_names)
        with obs.span(
            "pipeline.isolated", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            isolated = {
                k: measure_chain(runner, (k,), self.memo).mean
                for k in flow.names
            }
        with obs.span(
            "pipeline.one_shots", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            pre = {
                k: measure_chain(runner, (k,), self.memo).mean
                for k in bench.pre_kernel_names
            }
            post = {
                k: measure_chain(runner, (k,), self.memo).mean
                for k in bench.post_kernel_names
            }
        with obs.span(
            "pipeline.application", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            actual = run_application(
                ApplicationRunner(
                    bench,
                    self.settings.machine,
                    seed=self.settings.application_seed,
                ),
                self.memo,
            )
        inputs = PredictionInputs(
            flow=flow,
            iterations=bench.iterations,
            loop_times=isolated,
            pre_times=pre,
            post_times=post,
            chain_times={},
        )
        result = ConfigResult(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            flow=flow,
            actual=actual,
            inputs=inputs,
        )
        self._results[key] = result
        obs.get_registry().counter("pipeline_configs_measured").inc()
        return result, runner

    def _analytic_result(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        chain_lengths: Sequence[int],
    ) -> Optional[ConfigResult]:
        """The closed-form tier's answer, or None to escalate to simulation.

        Escalates when the benchmark has no descriptor tables, when a chain
        length is invalid (the simulation path raises the matching
        :class:`ExperimentError`), or when the self-reported confidence
        misses the policy's error budget.
        """
        from repro.errors import PredictionError

        lengths = tuple(sorted(set(int(length) for length in chain_lengths)))
        key = (benchmark, problem_class, nprocs, lengths)
        if key in self._analytic_results:
            return self._analytic_results[key]
        from repro.analytic.model import AnalyticPredictor

        try:
            predictor = AnalyticPredictor.for_config(
                self.settings.machine, benchmark, problem_class, nprocs
            )
            report = predictor.report(lengths)
        except PredictionError:
            return None
        if not self.tier_policy.accepts(report.expected_rel_error):
            return None
        result = ConfigResult(
            benchmark=report.benchmark,
            problem_class=report.problem_class,
            nprocs=report.nprocs,
            flow=report.flow,
            actual=report.actual,
            inputs=report.inputs,
            tier=TIER_ANALYTIC,
        )
        self._analytic_results[key] = result
        obs.get_registry().counter(
            "pipeline_tier_results", tier=TIER_ANALYTIC
        ).inc()
        return result

    def config_result(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        chain_lengths: Sequence[int] = (),
    ) -> ConfigResult:
        """Measured + predicted numbers for one configuration.

        ``chain_lengths`` lists the coupling chain lengths the caller will
        query; their windows are measured (once) here.
        """
        if self.tier_policy.use_analytic:
            analytic = self._analytic_result(
                benchmark, problem_class, nprocs, chain_lengths
            )
            if analytic is not None:
                return analytic
        result, runner = self._base_result(benchmark, problem_class, nprocs)
        chains: dict = dict(result.inputs.chain_times)
        added = False
        with obs.span(
            "pipeline.chains", benchmark=benchmark, cls=problem_class,
            nprocs=nprocs,
        ):
            for length in chain_lengths:
                if not 2 <= length <= len(result.flow):
                    raise ExperimentError(
                        f"chain length {length} invalid for {benchmark} "
                        f"(flow of {len(result.flow)})"
                    )
                for window in result.flow.windows(length):
                    if window not in chains:
                        chains[window] = measure_chain(
                            runner, window, self.memo
                        ).mean
                        added = True
        if added:
            result.inputs = PredictionInputs(
                flow=result.flow,
                iterations=result.inputs.iterations,
                loop_times=result.inputs.loop_times,
                pre_times=result.inputs.pre_times,
                post_times=result.inputs.post_times,
                chain_times=chains,
            )
            result._coupling_cache.clear()
        return result

    def _adopt(self, cell: CellResult) -> ConfigResult:
        """Fold a worker's :class:`CellResult` into the pipeline's caches."""
        inputs = PredictionInputs.from_dict(cell.inputs)
        result = ConfigResult(
            benchmark=cell.benchmark,
            problem_class=cell.problem_class,
            nprocs=cell.nprocs,
            flow=inputs.flow,
            actual=cell.actual,
            inputs=inputs,
        )
        key = (cell.benchmark, cell.problem_class, cell.nprocs)
        self._results[key] = result
        obs.get_registry().counter("pipeline_configs_measured").inc()
        return result

    def sweep(
        self,
        benchmark: str,
        problem_class: str,
        proc_counts: Sequence[int],
        chain_lengths: Sequence[int] = (),
        jobs: Optional[int] = None,
    ) -> list[ConfigResult]:
        """Config results across processor counts (one table column each).

        With ``jobs > 1`` the not-yet-measured cells run across a process
        pool (each worker re-installs the active fault plan and shares the
        memo store by path); results come back in ``proc_counts`` order
        either way.
        """
        jobs = self.jobs if jobs is None else jobs
        missing = [
            p
            for p in proc_counts
            if (benchmark, problem_class, p) not in self._results
        ]
        if self.tier_policy.use_analytic:
            # Cells the analytic tier answers never reach the worker pool;
            # only escalated ones are worth a process fan-out.
            missing = [
                p
                for p in missing
                if self._analytic_result(
                    benchmark, problem_class, p, chain_lengths
                )
                is None
            ]
        if jobs > 1 and len(missing) > 1:
            injector = faults.get_injector()
            cache_dir = (
                str(self.memo.root) if self.memo is not None else None
            )
            specs = [
                CellSpec(
                    benchmark=benchmark,
                    problem_class=problem_class,
                    nprocs=p,
                    chain_lengths=tuple(chain_lengths),
                    machine=self.settings.machine,
                    measurement=self.settings.measurement,
                    application_seed=self.settings.application_seed,
                    cache_dir=cache_dir,
                    fault_plan=injector.plan if injector else None,
                    profile_interval=obs.profile.worker_interval(),
                )
                for p in missing
            ]
            for cell in execute_cells(specs, jobs=jobs):
                self._adopt(cell)
        return [
            self.config_result(benchmark, problem_class, p, chain_lengths)
            for p in proc_counts
        ]
