"""Experiment registry: lookup and run by table id."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExperimentError
from repro.experiments.paper_data import PAPER_TABLES, PaperTable
from repro.experiments.pipeline import ExperimentPipeline, ExperimentSettings
from repro.util.tables import Table

__all__ = ["Experiment", "ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    """A regenerated table plus the paper-vs-measured comparison data."""

    experiment_id: str
    table: Table
    #: Percent relative errors per predictor, aligned with the table columns
    #: (empty for coupling-value and data-set tables).
    measured_errors: dict[str, list[float]] = field(default_factory=dict)
    #: Free-form extra observations the driver wants recorded.
    observations: list[str] = field(default_factory=list)

    @property
    def paper(self) -> Optional[PaperTable]:
        """The paper's reported numbers for this table, if known."""
        return PAPER_TABLES.get(self.experiment_id)

    def comparison(self) -> str:
        """Render a paper-vs-measured summary for EXPERIMENTS.md."""
        lines = [f"{self.experiment_id}: {self.table.title}"]
        paper = self.paper
        for predictor, measured in self.measured_errors.items():
            meas = ", ".join(f"{e:.2f}" for e in measured)
            line = f"  {predictor}: measured errors [{meas}] %"
            if paper and predictor in paper.errors:
                ref = ", ".join(
                    "?" if e is None else f"{e:.2f}"
                    for e in paper.errors[predictor]
                )
                line += f" | paper [{ref}] %"
            lines.append(line)
        if paper:
            for predictor, avg in paper.average_errors.items():
                if predictor in self.measured_errors:
                    ours = sum(self.measured_errors[predictor]) / len(
                        self.measured_errors[predictor]
                    )
                    lines.append(
                        f"  {predictor} average: measured {ours:.2f} % | "
                        f"paper {avg:.2f} %"
                    )
            for note in paper.notes:
                lines.append(f"  paper note: {note}")
        for obs in self.observations:
            lines.append(f"  observed: {obs}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """A runnable experiment keyed by the paper's table id."""

    experiment_id: str
    title: str
    description: str
    runner: Callable[[ExperimentPipeline], ExperimentResult]

    def run(self, pipeline: ExperimentPipeline) -> ExperimentResult:
        """Execute and return the regenerated table."""
        return self.runner(pipeline)


EXPERIMENTS: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (driver modules call this)."""
    if experiment.experiment_id in EXPERIMENTS:
        raise ExperimentError(
            f"duplicate experiment id {experiment.experiment_id!r}"
        )
    EXPERIMENTS[experiment.experiment_id] = experiment
    return experiment


def run_experiment(
    experiment_id: str,
    pipeline: Optional[ExperimentPipeline] = None,
    settings: Optional[ExperimentSettings] = None,
    memo=None,
    jobs: int = 1,
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"table3b"``).

    ``memo`` (a :class:`repro.parallel.SimulationMemoStore` or a cache
    directory path) and ``jobs`` are forwarded to the freshly built
    pipeline when no ``pipeline`` is passed in, so table regeneration can
    reuse a campaign's simulation cache and fan out across processes.
    """
    # Import the drivers lazily so the registry fills itself on first use
    # without import cycles.
    from repro.experiments import bt_tables, cross_machine, extensions, extrapolation_exp, lu_tables, scaling_exp, sp_tables  # noqa: F401

    if experiment_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        )
    if pipeline is None:
        pipeline = ExperimentPipeline(settings, memo=memo, jobs=jobs)
    return EXPERIMENTS[experiment_id].run(pipeline)
