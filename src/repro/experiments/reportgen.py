"""Generate EXPERIMENTS.md: paper-vs-measured for every table.

``repro report -o EXPERIMENTS.md`` runs the complete experimental campaign
(every table of the paper plus the scaling experiment) and renders a
markdown report recording, per experiment: the regenerated table, the
paper's reported numbers where the source text preserves them, and the
shape observations.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

from repro._version import __version__
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["generate_markdown"]

_ORDER = [
    "table1", "table2a", "table2b", "table3a", "table3b", "table4a",
    "table4b", "table5", "table6a", "table6b", "table6c", "table7",
    "table8a", "table8b", "table8c", "scaling",
    "ext_best_chain", "ext_miss_coupling", "ext_composition",
    "ext_cross_machine", "ext_extrapolation",
]

_PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table in *Taylor, Wu, Geisler, Stevens: "Using
Kernel Couplings to Predict Parallel Application Performance"* (HPDC
2002), regenerated on the simulated Argonne IBM SP (`repro {version}`).

**Reading guide.** Absolute seconds are not comparable — the paper ran on
real 2002 hardware, we run on a calibrated discrete-event simulator (see
DESIGN.md, "Key substitutions"); the paper's own absolute cell values were
additionally lost in the available text. What *is* compared, per table:

* the percent relative error of each predictor at each processor count
  (these survive in the paper text almost completely);
* the *shape*: which predictor wins, in which direction summation errs,
  how errors trend with processor count and problem class, and the
  coupling-value regimes (constructive/flat for class W, 0.9 -> 0.8 drop
  for class A, finite transition counts).

Regenerate this file with `repro report -o EXPERIMENTS.md` (or
`python -m repro report ...`). Each table also has a benchmark under
`benchmarks/` asserting its shape criteria.

**Analytic-tier accuracy bound.** All tables below are simulation ground
truth (the `exact` tier policy). The analytic fast path
(`repro.analytic`, selected with `--tier fast|balanced`) answers the
same BT/SP/LU cells from closed forms instead; its per-kernel `E_k`,
chain times, and application totals are cross-validated against these
tables and stay within a **10 % relative-error bound**
(`repro.analytic.model.ANALYTIC_REL_ERROR_BOUND`) — enforced by
`tests/analytic/test_cross_validation.py` (class W) and the
`bench-tiers` CI job (class A, recorded in `BENCH_tiers.json`).
"""


def generate_markdown(
    pipeline: Optional[ExperimentPipeline] = None,
    experiment_ids: Optional[Sequence[str]] = None,
) -> str:
    """Run the experiments and render the markdown report."""
    # Populate the registry.
    import repro.experiments.bt_tables  # noqa: F401
    import repro.experiments.cross_machine  # noqa: F401
    import repro.experiments.extensions  # noqa: F401
    import repro.experiments.extrapolation_exp  # noqa: F401
    import repro.experiments.lu_tables  # noqa: F401
    import repro.experiments.scaling_exp  # noqa: F401
    import repro.experiments.sp_tables  # noqa: F401

    if pipeline is None:
        pipeline = ExperimentPipeline()
    ids = list(experiment_ids) if experiment_ids else _ORDER
    out = io.StringIO()
    out.write(_PREAMBLE.format(version=__version__))

    machine = pipeline.settings.machine
    meas = pipeline.settings.measurement
    out.write("\n## Setup\n\n")
    out.write(
        f"* machine: `{machine.name}` — "
        f"{machine.processor.clock_hz / 1e6:.0f} MHz x "
        f"{machine.processor.flops_per_cycle:.0f} flops/cycle at "
        f"{100 * machine.processor.efficiency:.0f} % sustained; caches "
        + ", ".join(
            f"{lv.name} {lv.capacity_bytes // 1024} KiB"
            for lv in machine.processor.cache_levels
        )
        + f"; memory {machine.processor.memory_byte_time * 1e9:.0f} ns/B; "
        f"network {machine.network.latency * 1e6:.0f} us / "
        f"{1e-6 / machine.network.byte_time:.0f} MB/s\n"
    )
    out.write(
        f"* measurement protocol: {meas.repetitions} repetitions, "
        f"{meas.warmup} warmup, isolated context `{meas.isolated_context}`, "
        f"chain context `{meas.chain_context}`, seed {meas.seed}\n"
    )

    for exp_id in ids:
        experiment = EXPERIMENTS[exp_id]
        result = run_experiment(exp_id, pipeline=pipeline)
        out.write(f"\n## {exp_id} — {experiment.title}\n\n")
        out.write(f"{experiment.description}.\n\n")
        out.write("```\n")
        out.write(result.table.render())
        out.write("\n```\n\n")
        out.write("```\n")
        out.write(result.comparison())
        out.write("\n```\n")
    return out.getvalue()
