"""The finite-transition scaling experiment (paper §4.1.4 and §6).

Sweeps BT pair couplings across problem classes (fixed processor count) and
across processor counts (fixed class), counts the major value changes in
each coupling series, and compares against the number of cache-capacity
crossings of the per-processor working set.
"""

from __future__ import annotations

from repro.core.scaling import CouplingScalingStudy
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.util.tables import Table

__all__ = []

_CLASSES = ("S", "W", "A")
_PROCS = (4, 9, 16, 25)
_WINDOW = ("X_SOLVE", "Y_SOLVE")


def _scaling(p: ExperimentPipeline) -> ExperimentResult:
    study = CouplingScalingStudy(
        "BT",
        p.settings.machine,
        chain_length=2,
        measurement=p.settings.measurement,
    )
    by_class = study.sweep_classes(_CLASSES, nprocs=4)
    by_procs = study.sweep_procs("A", _PROCS)

    table = Table(
        title="Scaling: BT {X_SOLVE, Y_SOLVE} coupling transitions",
        columns=[
            "Sweep",
            "Points",
            "Couplings",
            "Observed transitions",
            "Expected (capacity crossings)",
            "Finite",
        ],
        precision=3,
    )
    observations = []
    for label, points in (
        ("problem size @ 4 procs", by_class),
        ("procs @ class A", by_procs),
    ):
        analysis = study.transition_analysis(_WINDOW, points)
        table.add_row(
            label,
            " ".join(analysis.scale_labels),
            " ".join(f"{c:.3f}" for c in analysis.couplings),
            analysis.observed,
            analysis.expected,
            str(analysis.finite),
        )
        observations.append(
            f"{label}: {analysis.observed} observed transitions vs "
            f"{analysis.expected} capacity crossings (finite={analysis.finite})"
        )
    return ExperimentResult(
        experiment_id="scaling",
        table=table,
        observations=observations,
    )


register(
    Experiment(
        "scaling",
        "Finite coupling transitions",
        "Coupling-value transitions across problem-size and processor "
        "scaling, against memory-subsystem capacity crossings",
        _scaling,
    )
)
