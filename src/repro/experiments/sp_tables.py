"""SP experiment drivers: paper Tables 5 and 6a/6b/6c (§4.2)."""

from __future__ import annotations

from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.experiments.tables import build_dataset_table, build_times_table

__all__ = []

_PROCS = (4, 9, 16, 25)


def _table5(_: ExperimentPipeline) -> ExperimentResult:
    return build_dataset_table(
        "table5", "Table 5: Data sets used with the NPB SP", "SP", ("W", "A", "B")
    )


def _times(p: ExperimentPipeline, table_id: str, cls: str) -> ExperimentResult:
    return build_times_table(
        p,
        table_id,
        f"Table {table_id[-2:]}: Comparison of execution times for SP "
        f"with Class {cls}",
        "SP",
        cls,
        _PROCS,
        chain_lengths=(4, 5),
    )


register(Experiment("table5", "SP data sets", "Grid sizes per class", _table5))
register(
    Experiment(
        "table6a",
        "SP class W execution times",
        "Actual vs summation vs 4- and 5-kernel coupling predictions",
        lambda p: _times(p, "table6a", "W"),
    )
)
register(
    Experiment(
        "table6b",
        "SP class A execution times",
        "Actual vs summation vs 4- and 5-kernel coupling predictions",
        lambda p: _times(p, "table6b", "A"),
    )
)
register(
    Experiment(
        "table6c",
        "SP class B execution times",
        "Actual vs summation vs 4- and 5-kernel coupling predictions",
        lambda p: _times(p, "table6c", "B"),
    )
)
