"""Shared builders used by the per-benchmark experiment drivers."""

from __future__ import annotations

from typing import Sequence

from repro.core.report import (
    coupling_value_table,
    dataset_table,
    execution_time_table,
)
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.registry import ExperimentResult
from repro.npb.classes import problem_size
from repro.util.stats import percent_relative_error

__all__ = ["build_times_table", "build_couplings_table", "build_dataset_table"]


def build_times_table(
    pipeline: ExperimentPipeline,
    experiment_id: str,
    title: str,
    benchmark: str,
    problem_class: str,
    proc_counts: Sequence[int],
    chain_lengths: Sequence[int],
) -> ExperimentResult:
    """An execution-time comparison table (Actual / Summation / Coupling)."""
    results = pipeline.sweep(benchmark, problem_class, proc_counts, chain_lengths)
    actual = [r.actual for r in results]
    predictions: dict[str, list[float]] = {
        "Summation": [r.summation for r in results]
    }
    for length in chain_lengths:
        predictions[f"Coupling: {length} kernels"] = [
            r.coupling_prediction(length) for r in results
        ]
    table = execution_time_table(title, proc_counts, actual, predictions)
    errors = {
        name: [
            percent_relative_error(v, a) for v, a in zip(series, actual)
        ]
        for name, series in predictions.items()
    }
    best = min(errors, key=lambda n: sum(errors[n]))
    return ExperimentResult(
        experiment_id=experiment_id,
        table=table,
        measured_errors=errors,
        observations=[f"best predictor on average: {best}"],
    )


def build_couplings_table(
    pipeline: ExperimentPipeline,
    experiment_id: str,
    title: str,
    benchmark: str,
    problem_class: str,
    proc_counts: Sequence[int],
    chain_length: int,
) -> ExperimentResult:
    """A coupling-values table (windows x processor counts)."""
    results = pipeline.sweep(
        benchmark, problem_class, proc_counts, (chain_length,)
    )
    windows = results[0].flow.windows(chain_length)
    values = {
        window: [r.coupling_values(chain_length)[window] for r in results]
        for window in windows
    }
    table = coupling_value_table(title, proc_counts, values)
    flat = [v for series in values.values() for v in series]
    observations = [
        f"coupling range: {min(flat):.3f} .. {max(flat):.3f}",
        "all constructive (< 1)" if max(flat) < 1.0 else "mixed signs present",
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        table=table,
        observations=observations,
    )


def build_dataset_table(
    experiment_id: str, title: str, benchmark: str, classes: Sequence[str]
) -> ExperimentResult:
    """A data-set-size table straight from the class definitions."""
    rows = []
    for cls in classes:
        size = problem_size(benchmark, cls)
        rows.append((cls, (size.nx, size.ny, size.nz)))
    return ExperimentResult(
        experiment_id=experiment_id,
        table=dataset_table(title, rows),
    )
