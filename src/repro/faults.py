"""Deterministic, seedable fault injection for the serving stack.

Production code is threaded with named *fault sites* — fixed checkpoints
where a specific failure can be planted::

    spec = faults.check("worker.cell.crash")
    if spec is not None:
        raise WorkerCrashError("injected worker crash")

A site is inert (one module-global read and a ``None`` test) until a
:class:`FaultPlan` is installed.  The plan lists :class:`FaultSpec`
triggers — fire every Nth hit, fire with probability p, fire after a
warm-up, cap total fires — and a seed.  Every probabilistic decision is
drawn from a per-site stream derived from ``(seed, site)``, so:

* the same plan replayed over the same per-site hit sequence fires at
  exactly the same hits, regardless of how threads interleave *across*
  sites (each site owns its stream);
* the chaos harness can reconcile observed behaviour against
  :meth:`FaultInjector.fires` and the ``fault_injected{site=...}``
  counter in the global obs registry.

The registered site table lives in :data:`SITES`; the static analyzer's
REP004 rule (``repro lint``) keeps it in sync with the ``faults.check``
checkpoints threaded through the codebase in both directions.
"""

from __future__ import annotations

import json
import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "install",
    "clear",
    "get_injector",
    "active",
    "check",
]

#: The registered fault sites: every string production code passes to
#: :func:`check` must appear here, and every entry here must have a live
#: checkpoint (REP004 in ``repro lint`` enforces both directions).  Tests
#: may use ad-hoc site names; plans built against unregistered sites are
#: simply inert.
SITES: Mapping[str, str] = {
    "worker.cell.crash": "cell execution raises WorkerCrashError",
    "worker.cell.stall": "cell execution sleeps `param` wall seconds first",
    "pool.submit.reject": "worker pool pretends its queue is full",
    "engine.dispatch.error": "dispatch fails the whole batch with a typed error",
    "batch.dispatch.error": "the batcher's dispatch callable raises",
    "cache.l1.drop": "the L1 report entry evaporates (read corruption)",
    "db.write.corrupt": "sqlite-tier samples are corrupted on write",
    "db.read.corrupt": "sqlite-tier samples bit-rot on read",
    "api.disconnect": "the wire client disconnects mid-request",
    "shard.process.exit": "a serving shard process dies (hard exit) mid-line",
    "sim.run.error": "the discrete-event simulator crashes",
    "sim.run.noise": "event delays this run are scaled by `param`",
}


@dataclass(frozen=True)
class FaultSpec:
    """When one site fires.

    Exactly one trigger must be set: ``every_nth`` (deterministic cadence
    — fire on the Nth, 2Nth, ... hit) or ``probability`` (per-hit
    Bernoulli from the site's seeded stream). ``after`` skips that many
    initial hits, ``max_fires`` caps total fires, and ``param`` carries a
    site-specific magnitude (stall seconds, delay scale factor).
    """

    site: str
    probability: float = 0.0
    every_nth: int = 0
    after: int = 0
    max_fires: Optional[int] = None
    param: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigurationError("fault site name must be non-empty")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.every_nth < 0:
            raise ConfigurationError(
                f"every_nth must be >= 0, got {self.every_nth}"
            )
        if (self.every_nth > 0) == (self.probability > 0.0):
            raise ConfigurationError(
                f"fault site {self.site!r} needs exactly one trigger: "
                "every_nth or probability"
            )
        if self.after < 0:
            raise ConfigurationError(f"after must be >= 0, got {self.after}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigurationError(
                f"max_fires must be >= 1, got {self.max_fires}"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"site": self.site}
        if self.probability:
            out["probability"] = self.probability
        if self.every_nth:
            out["every_nth"] = self.every_nth
        if self.after:
            out["after"] = self.after
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.param:
            out["param"] = self.param
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = {"site", "probability", "every_nth", "after", "max_fires", "param"}
        extra = set(data) - known
        if extra:
            raise ConfigurationError(
                f"unknown fault spec fields: {sorted(extra)}"
            )
        return cls(
            site=data["site"],
            probability=float(data.get("probability", 0.0)),
            every_nth=int(data.get("every_nth", 0)),
            after=int(data.get("after", 0)),
            max_fires=data.get("max_fires"),
            param=float(data.get("param", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the set of sites to perturb (one spec per site)."""

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        sites = [s.site for s in self.specs]
        dupes = {s for s in sites if sites.count(s) > 1}
        if dupes:
            raise ConfigurationError(
                f"duplicate fault sites in plan: {sorted(dupes)}"
            )
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(s.site for s in self.specs)

    def schedule(self, site: str, hits: int) -> tuple[bool, ...]:
        """The exact fire/no-fire decisions for the first ``hits`` hits.

        Pure: building the schedule twice (or installing the plan twice)
        yields bit-identical sequences — the determinism contract the
        chaos harness pins.
        """
        injector = FaultInjector(self, record_metrics=False)
        return tuple(
            injector.check(site) is not None for _ in range(hits)
        )

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [s.to_dict() for s in self.specs]},
            indent=2,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec.from_dict(item) for item in data.get("faults", ())
            ),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid fault plan JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("fault plan must be a JSON object")
        return cls.from_dict(data)


def _site_seed(seed: int, site: str) -> int:
    """A stable per-site stream seed (crc32 keeps it version-independent)."""
    return (seed << 32) ^ zlib.crc32(site.encode("utf-8"))


@dataclass
class _SiteState:
    spec: FaultSpec
    rng: random.Random
    hits: int = 0
    fires: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class FaultInjector:
    """Live decision-maker for one installed :class:`FaultPlan`.

    Thread-safe; per-site locks keep hit counting and the RNG stream
    consistent under concurrent checkpoints.
    """

    def __init__(self, plan: FaultPlan, record_metrics: bool = True) -> None:
        self.plan = plan
        self._record_metrics = record_metrics
        self._sites = {
            spec.site: _SiteState(
                spec=spec, rng=random.Random(_site_seed(plan.seed, spec.site))
            )
            for spec in plan.specs
        }

    def check(self, site: str) -> Optional[FaultSpec]:
        """One checkpoint hit: the spec when the fault fires, else None."""
        state = self._sites.get(site)
        if state is None:
            return None
        spec = state.spec
        with state.lock:
            index = state.hits
            state.hits += 1
            if index < spec.after:
                return None
            if spec.max_fires is not None and state.fires >= spec.max_fires:
                return None
            if spec.every_nth:
                fire = (index - spec.after + 1) % spec.every_nth == 0
            else:
                # One draw per eligible hit keeps the stream aligned with
                # the hit index, independent of earlier max_fires cutoffs.
                fire = state.rng.random() < spec.probability
            if not fire:
                return None
            state.fires += 1
        if self._record_metrics:
            from repro import obs

            obs.get_registry().counter("fault_injected", site=site).inc()
            obs.log("fault.injected", site=site, fire=state.fires)
        return spec

    def fires(self) -> dict[str, int]:
        """Total fires per site so far."""
        return {site: st.fires for site, st in self._sites.items()}

    def hits(self) -> dict[str, int]:
        """Total checkpoint hits per site so far."""
        return {site: st.hits for site, st in self._sites.items()}


_lock = threading.Lock()
_active: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Activate a plan process-wide; returns the injector for accounting."""
    global _active
    with _lock:
        injector = FaultInjector(plan)
        _active = injector
    return injector


def clear() -> None:
    """Deactivate fault injection (every site goes back to inert)."""
    global _active
    with _lock:
        _active = None


def get_injector() -> Optional[FaultInjector]:
    """The live injector, or None when no plan is installed."""
    return _active


@contextmanager
def active(plan: FaultPlan) -> Iterator[FaultInjector]:
    """``with faults.active(plan) as injector: ...`` — scoped installation."""
    injector = install(plan)
    try:
        yield injector
    finally:
        clear()


def check(site: str) -> Optional[FaultSpec]:
    """The hot-path checkpoint: None unless a plan is installed and fires.

    Cost with no plan installed: one global read and one ``is None`` test.
    """
    injector = _active
    if injector is None:
        return None
    return injector.check(site)


def plan_from_specs(
    specs: Sequence[Mapping[str, Any]], seed: int = 0
) -> FaultPlan:
    """Convenience builder from plain dicts (CLI / test helpers)."""
    return FaultPlan(
        specs=tuple(FaultSpec.from_dict(s) for s in specs), seed=seed
    )
