"""Measurement harness: the paper's kernel-isolation protocol.

The paper obtains each performance value "by placing a given kernel or pair
of kernels into a loop, such that the loop dominates the application
execution time", then subtracting the time beyond the kernel(s) (§2).
:class:`~repro.instrument.runner.ChainRunner` implements that protocol on
the simulated machine:

* the chain (length 1 = isolated kernel) runs in a timing loop;
* before each timed iteration the caches are flushed and the network
  backlog drained — re-creating the *application context* around the chain
  (between two executions of a kernel in the real application, the other
  kernels run and evict its data), while interactions *within* the chain
  are preserved;
* a separate empty-chain run measures the harness overhead, which is
  subtracted — the paper's "time beyond the given kernel or pair";
* each measurement is averaged over repetitions with independent seeded
  noise (the paper averages 50 runs).

:class:`~repro.instrument.runner.ApplicationRunner` produces the "Actual"
rows of the paper's tables by running the full application (optionally
extrapolating the homogeneous main loop from a measured window — validated
against full runs in the test suite).
"""

from repro.instrument.cache_counters import CacheCounterReport, cache_report
from repro.instrument.database import PerformanceDatabase
from repro.instrument.profiler import KernelProfile, ProfileReport, profile_application
from repro.instrument.runner import (
    ApplicationResult,
    ApplicationRunner,
    ChainRunner,
    Measurement,
    MeasurementConfig,
)
from repro.instrument.sweeps import Campaign, CampaignPlan
from repro.instrument.timeline import render_timeline

__all__ = [
    "ApplicationResult",
    "ApplicationRunner",
    "CacheCounterReport",
    "Campaign",
    "CampaignPlan",
    "ChainRunner",
    "KernelProfile",
    "Measurement",
    "MeasurementConfig",
    "PerformanceDatabase",
    "ProfileReport",
    "cache_report",
    "profile_application",
    "render_timeline",
]
