"""Cache-miss counters as an alternative coupling metric.

The paper notes (§2) that the coupling formulation applies to any additive
metric, naming cache misses explicitly. This module extracts per-kernel
memory-traffic counters from a measurement so coupling values can be
computed over ``bytes_from_memory`` instead of time (exercised by the
metric-generality tests and an ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import MeasurementError
from repro.instrument.runner import Measurement

__all__ = ["CacheCounterReport", "cache_report"]


@dataclass(frozen=True)
class CacheCounterReport:
    """Memory-traffic summary of one measured chain."""

    kernels: tuple[str, ...]
    bytes_touched: int
    bytes_from_memory: int

    @property
    def miss_ratio(self) -> float:
        """Fraction of touched bytes served by main memory."""
        if self.bytes_touched == 0:
            return 0.0
        return self.bytes_from_memory / self.bytes_touched


def cache_report(
    measurement: Measurement, kernels: Sequence[str] | None = None
) -> CacheCounterReport:
    """Aggregate the cache counters of ``kernels`` within a measurement.

    Defaults to the kernels the chain was measured over. Counters include
    the warmup iterations (they are traffic totals, not rates); coupling
    values over misses are ratios, so the common factor cancels.
    """
    names = tuple(kernels) if kernels is not None else measurement.kernels
    touched = 0
    from_memory = 0
    for name in names:
        if name not in measurement.counters:
            raise MeasurementError(
                f"measurement of {measurement.kernels} has no counters for "
                f"{name!r}"
            )
        c = measurement.counters[name]
        touched += c.bytes_touched
        from_memory += c.bytes_from_memory
    return CacheCounterReport(
        kernels=names, bytes_touched=touched, bytes_from_memory=from_memory
    )
