"""Prophesy-style performance database.

The paper's companion system, Prophesy [TG01], archives kernel-level
measurements so models can be built without re-running experiments. This is
a small sqlite-backed equivalent: measurements are keyed by (benchmark,
class, nprocs, kernel chain) and store the sample vector, so coupling sets
and predictors can be reconstructed offline.

The database is safe for concurrent use from multiple threads (the serving
layer in :mod:`repro.service` hits it from a worker pool): file-backed
stores open one connection per thread, in-memory stores share a single
connection behind a lock, and :meth:`store_if_absent` /
:meth:`get_or_measure` are free of check-then-insert races (``INSERT OR
IGNORE`` followed by a re-read decides the winner).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import zlib
from typing import Iterator, Optional

from repro import faults
from repro.errors import MeasurementError
from repro.instrument.runner import Measurement

__all__ = ["PerformanceDatabase", "payload_checksum"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS measurements (
    id INTEGER PRIMARY KEY,
    benchmark TEXT NOT NULL,
    problem_class TEXT NOT NULL,
    nprocs INTEGER NOT NULL,
    kernels TEXT NOT NULL,          -- JSON list, control-flow order
    samples TEXT NOT NULL,          -- JSON list of per-iteration seconds
    overhead REAL NOT NULL,
    checksum TEXT,                  -- crc32 of samples|overhead (NULL = legacy)
    UNIQUE (benchmark, problem_class, nprocs, kernels)
);
"""


def payload_checksum(samples_json: str, overhead: float) -> str:
    """Integrity checksum of one stored measurement payload.

    crc32 over the canonical JSON sample vector plus the overhead — enough
    to catch bit-rot / partial writes; not a cryptographic signature.
    """
    return format(
        zlib.crc32(f"{samples_json}|{overhead!r}".encode("utf-8")), "08x"
    )


def _tamper(samples_json: str) -> str:
    """Deterministic payload corruption used by the db.* fault sites."""
    return samples_json.replace("[", "[666333.0, ", 1)


class PerformanceDatabase:
    """Store and retrieve :class:`Measurement` records.

    Use ``":memory:"`` (the default) for ephemeral runs or a file path to
    persist across processes. The database is also a memoization layer:
    :meth:`get_or_measure` only runs the harness on a miss.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._closed = False
        # An in-memory sqlite database exists per connection, so it must be
        # shared across threads; file-backed stores get per-thread
        # connections instead (sqlite serializes writers itself).
        self._shared: Optional[sqlite3.Connection] = None
        if path == ":memory:":
            self._shared = sqlite3.connect(path, check_same_thread=False)
        conn = self._connection()
        with self._lock:
            conn.execute(_SCHEMA)
            # Legacy databases predate the checksum column; add it in place
            # (NULL checksums are accepted as unverifiable legacy rows).
            columns = {
                row[1]
                for row in conn.execute("PRAGMA table_info(measurements)")
            }
            if "checksum" not in columns:
                conn.execute(
                    "ALTER TABLE measurements ADD COLUMN checksum TEXT"
                )
            conn.commit()

    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise MeasurementError("performance database is closed")
        if self._shared is not None:
            return self._shared
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path)
            self._local.conn = conn
            with self._lock:
                self._connections.append(conn)
        return conn

    def close(self) -> None:
        """Close every connection this database opened."""
        with self._lock:
            self._closed = True
            if self._shared is not None:
                self._shared.close()
            for conn in self._connections:
                try:
                    conn.close()
                except sqlite3.ProgrammingError:  # pragma: no cover
                    pass  # already closed by its owning thread
            self._connections.clear()

    def __enter__(self) -> "PerformanceDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- write ---------------------------------------------------------------

    @staticmethod
    def _row(measurement: Measurement) -> tuple:
        samples_json = json.dumps(list(measurement.samples))
        checksum = payload_checksum(samples_json, measurement.overhead)
        # Write-corruption fault: the payload rots on its way to disk while
        # the checksum (computed from the pristine data) stays honest, so
        # the corruption is *detectable* on the next read.
        if faults.check("db.write.corrupt") is not None:
            samples_json = _tamper(samples_json)
        return (
            measurement.benchmark,
            measurement.problem_class,
            measurement.nprocs,
            json.dumps(list(measurement.kernels)),
            samples_json,
            measurement.overhead,
            checksum,
        )

    def store(self, measurement: Measurement, replace: bool = False) -> None:
        """Insert a measurement; duplicates error unless ``replace``."""
        verb = "INSERT OR REPLACE" if replace else "INSERT"
        with self._lock:
            conn = self._connection()
            try:
                conn.execute(
                    f"{verb} INTO measurements "
                    "(benchmark, problem_class, nprocs, kernels, samples, "
                    "overhead, checksum) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    self._row(measurement),
                )
            except sqlite3.IntegrityError as exc:
                raise MeasurementError(
                    f"measurement {measurement.key} already stored"
                ) from exc
            conn.commit()

    def store_if_absent(self, measurement: Measurement) -> Measurement:
        """Race-free idempotent insert; returns the winning record.

        ``INSERT OR IGNORE`` then re-read: whichever concurrent writer got
        there first wins, and every caller sees that winner — the pattern
        the serving layer's workers rely on. A corrupted winner (checksum
        mismatch, see :meth:`get`) is purged and the insert retried once,
        so a single bout of write corruption self-heals.
        """
        for _attempt in range(2):
            conn = self._connection()
            with self._lock:
                conn.execute(
                    "INSERT OR IGNORE INTO measurements "
                    "(benchmark, problem_class, nprocs, kernels, samples, "
                    "overhead, checksum) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    self._row(measurement),
                )
                conn.commit()
            stored = self.get(
                measurement.benchmark,
                measurement.problem_class,
                measurement.nprocs,
                measurement.kernels,
            )
            if stored is not None:
                return stored
        raise MeasurementError(
            f"measurement {measurement.key} failed integrity verification "
            "after retry (persistent corruption)"
        )

    # -- read ----------------------------------------------------------------

    def get(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        kernels: tuple[str, ...],
    ) -> Optional[Measurement]:
        """Fetch one measurement, or None.

        Rows are verified against their stored checksum: a mismatch (disk
        bit-rot, a torn write, or an injected ``db.*.corrupt`` fault) is
        counted as ``cache_corruption_detected``, the bad row is purged,
        and the call reports a miss — so corrupted payloads are re-measured
        instead of silently poisoning predictions. Legacy rows without a
        checksum are accepted as-is.
        """
        kernels_json = json.dumps(list(kernels))
        with self._lock:
            row = self._connection().execute(
                "SELECT samples, overhead, checksum FROM measurements WHERE "
                "benchmark=? AND problem_class=? AND nprocs=? AND kernels=?",
                (benchmark, problem_class, nprocs, kernels_json),
            ).fetchone()
        if row is None:
            return None
        samples, overhead, checksum = row
        if faults.check("db.read.corrupt") is not None:
            samples = _tamper(samples)
        if checksum is not None and payload_checksum(samples, overhead) != checksum:
            self._purge_corrupt(benchmark, problem_class, nprocs, kernels_json)
            return None
        return Measurement(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            kernels=tuple(kernels),
            samples=tuple(json.loads(samples)),
            overhead=overhead,
        )

    def _purge_corrupt(
        self, benchmark: str, problem_class: str, nprocs: int, kernels_json: str
    ) -> None:
        """Drop a row that failed verification and account for it."""
        from repro import obs

        with self._lock:
            conn = self._connection()
            conn.execute(
                "DELETE FROM measurements WHERE benchmark=? AND "
                "problem_class=? AND nprocs=? AND kernels=?",
                (benchmark, problem_class, nprocs, kernels_json),
            )
            conn.commit()
        obs.get_registry().counter("cache_corruption_detected").inc()
        obs.log(
            "db.corruption_detected",
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            kernels=kernels_json,
        )

    def __iter__(self) -> Iterator[Measurement]:
        with self._lock:
            rows = self._connection().execute(
                "SELECT benchmark, problem_class, nprocs, kernels, samples, overhead "
                "FROM measurements ORDER BY id"
            ).fetchall()
        for bench, cls, nprocs, kernels, samples, overhead in rows:
            yield Measurement(
                benchmark=bench,
                problem_class=cls,
                nprocs=nprocs,
                kernels=tuple(json.loads(kernels)),
                samples=tuple(json.loads(samples)),
                overhead=overhead,
            )

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._connection().execute(
                "SELECT COUNT(*) FROM measurements"
            ).fetchone()
        return n

    # -- memoization ------------------------------------------------------------

    def get_or_measure(self, runner, kernels: tuple[str, ...]) -> Measurement:
        """Return the stored measurement or run ``runner.measure`` and store.

        Concurrent callers racing on the same key may both measure, but
        exactly one result is stored and both see it (single-flight
        deduplication of the *measurement* itself lives a layer up, in
        :mod:`repro.service.batching`).
        """
        bench = runner.benchmark
        found = self.get(
            bench.name, bench.size.problem_class, bench.nprocs, tuple(kernels)
        )
        if found is not None:
            return found
        measured = runner.measure(kernels)
        return self.store_if_absent(measured)
