"""Prophesy-style performance database.

The paper's companion system, Prophesy [TG01], archives kernel-level
measurements so models can be built without re-running experiments. This is
a small sqlite-backed equivalent: measurements are keyed by (benchmark,
class, nprocs, kernel chain) and store the sample vector, so coupling sets
and predictors can be reconstructed offline.

The database is safe for concurrent use from multiple threads (the serving
layer in :mod:`repro.service` hits it from a worker pool): file-backed
stores open one connection per thread, in-memory stores share a single
connection behind a lock, and :meth:`store_if_absent` /
:meth:`get_or_measure` are free of check-then-insert races (``INSERT OR
IGNORE`` followed by a re-read decides the winner).
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Iterator, Optional

from repro.errors import MeasurementError
from repro.instrument.runner import Measurement

__all__ = ["PerformanceDatabase"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS measurements (
    id INTEGER PRIMARY KEY,
    benchmark TEXT NOT NULL,
    problem_class TEXT NOT NULL,
    nprocs INTEGER NOT NULL,
    kernels TEXT NOT NULL,          -- JSON list, control-flow order
    samples TEXT NOT NULL,          -- JSON list of per-iteration seconds
    overhead REAL NOT NULL,
    UNIQUE (benchmark, problem_class, nprocs, kernels)
);
"""


class PerformanceDatabase:
    """Store and retrieve :class:`Measurement` records.

    Use ``":memory:"`` (the default) for ephemeral runs or a file path to
    persist across processes. The database is also a memoization layer:
    :meth:`get_or_measure` only runs the harness on a miss.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._closed = False
        # An in-memory sqlite database exists per connection, so it must be
        # shared across threads; file-backed stores get per-thread
        # connections instead (sqlite serializes writers itself).
        self._shared: Optional[sqlite3.Connection] = None
        if path == ":memory:":
            self._shared = sqlite3.connect(path, check_same_thread=False)
        conn = self._connection()
        with self._lock:
            conn.execute(_SCHEMA)
            conn.commit()

    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise MeasurementError("performance database is closed")
        if self._shared is not None:
            return self._shared
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path)
            self._local.conn = conn
            with self._lock:
                self._connections.append(conn)
        return conn

    def close(self) -> None:
        """Close every connection this database opened."""
        with self._lock:
            self._closed = True
            if self._shared is not None:
                self._shared.close()
            for conn in self._connections:
                try:
                    conn.close()
                except sqlite3.ProgrammingError:  # pragma: no cover
                    pass  # already closed by its owning thread
            self._connections.clear()

    def __enter__(self) -> "PerformanceDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- write ---------------------------------------------------------------

    @staticmethod
    def _row(measurement: Measurement) -> tuple:
        return (
            measurement.benchmark,
            measurement.problem_class,
            measurement.nprocs,
            json.dumps(list(measurement.kernels)),
            json.dumps(list(measurement.samples)),
            measurement.overhead,
        )

    def store(self, measurement: Measurement, replace: bool = False) -> None:
        """Insert a measurement; duplicates error unless ``replace``."""
        verb = "INSERT OR REPLACE" if replace else "INSERT"
        with self._lock:
            conn = self._connection()
            try:
                conn.execute(
                    f"{verb} INTO measurements "
                    "(benchmark, problem_class, nprocs, kernels, samples, overhead) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    self._row(measurement),
                )
            except sqlite3.IntegrityError as exc:
                raise MeasurementError(
                    f"measurement {measurement.key} already stored"
                ) from exc
            conn.commit()

    def store_if_absent(self, measurement: Measurement) -> Measurement:
        """Race-free idempotent insert; returns the winning record.

        ``INSERT OR IGNORE`` then re-read: whichever concurrent writer got
        there first wins, and every caller sees that winner — the pattern
        the serving layer's workers rely on.
        """
        conn = self._connection()
        with self._lock:
            conn.execute(
                "INSERT OR IGNORE INTO measurements "
                "(benchmark, problem_class, nprocs, kernels, samples, overhead) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                self._row(measurement),
            )
            conn.commit()
        stored = self.get(
            measurement.benchmark,
            measurement.problem_class,
            measurement.nprocs,
            measurement.kernels,
        )
        if stored is None:  # pragma: no cover — defensive
            raise MeasurementError(
                f"measurement {measurement.key} vanished during insert"
            )
        return stored

    # -- read ----------------------------------------------------------------

    def get(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        kernels: tuple[str, ...],
    ) -> Optional[Measurement]:
        """Fetch one measurement, or None."""
        with self._lock:
            row = self._connection().execute(
                "SELECT samples, overhead FROM measurements WHERE "
                "benchmark=? AND problem_class=? AND nprocs=? AND kernels=?",
                (benchmark, problem_class, nprocs, json.dumps(list(kernels))),
            ).fetchone()
        if row is None:
            return None
        samples, overhead = row
        return Measurement(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            kernels=tuple(kernels),
            samples=tuple(json.loads(samples)),
            overhead=overhead,
        )

    def __iter__(self) -> Iterator[Measurement]:
        with self._lock:
            rows = self._connection().execute(
                "SELECT benchmark, problem_class, nprocs, kernels, samples, overhead "
                "FROM measurements ORDER BY id"
            ).fetchall()
        for bench, cls, nprocs, kernels, samples, overhead in rows:
            yield Measurement(
                benchmark=bench,
                problem_class=cls,
                nprocs=nprocs,
                kernels=tuple(json.loads(kernels)),
                samples=tuple(json.loads(samples)),
                overhead=overhead,
            )

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._connection().execute(
                "SELECT COUNT(*) FROM measurements"
            ).fetchone()
        return n

    # -- memoization ------------------------------------------------------------

    def get_or_measure(self, runner, kernels: tuple[str, ...]) -> Measurement:
        """Return the stored measurement or run ``runner.measure`` and store.

        Concurrent callers racing on the same key may both measure, but
        exactly one result is stored and both see it (single-flight
        deduplication of the *measurement* itself lives a layer up, in
        :mod:`repro.service.batching`).
        """
        bench = runner.benchmark
        found = self.get(
            bench.name, bench.size.problem_class, bench.nprocs, tuple(kernels)
        )
        if found is not None:
            return found
        measured = runner.measure(kernels)
        return self.store_if_absent(measured)
