"""Prophesy-style performance database.

The paper's companion system, Prophesy [TG01], archives kernel-level
measurements so models can be built without re-running experiments. This is
a small sqlite-backed equivalent: measurements are keyed by (benchmark,
class, nprocs, kernel chain) and store the sample vector, so coupling sets
and predictors can be reconstructed offline.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterator, Optional

from repro.errors import MeasurementError
from repro.instrument.runner import Measurement

__all__ = ["PerformanceDatabase"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS measurements (
    id INTEGER PRIMARY KEY,
    benchmark TEXT NOT NULL,
    problem_class TEXT NOT NULL,
    nprocs INTEGER NOT NULL,
    kernels TEXT NOT NULL,          -- JSON list, control-flow order
    samples TEXT NOT NULL,          -- JSON list of per-iteration seconds
    overhead REAL NOT NULL,
    UNIQUE (benchmark, problem_class, nprocs, kernels)
);
"""


class PerformanceDatabase:
    """Store and retrieve :class:`Measurement` records.

    Use ``":memory:"`` (the default) for ephemeral runs or a file path to
    persist across processes. The database is also a memoization layer:
    :meth:`get_or_measure` only runs the harness on a miss.
    """

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.execute(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "PerformanceDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- write ---------------------------------------------------------------

    def store(self, measurement: Measurement, replace: bool = False) -> None:
        """Insert a measurement; duplicates error unless ``replace``."""
        verb = "INSERT OR REPLACE" if replace else "INSERT"
        try:
            self._conn.execute(
                f"{verb} INTO measurements "
                "(benchmark, problem_class, nprocs, kernels, samples, overhead) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    measurement.benchmark,
                    measurement.problem_class,
                    measurement.nprocs,
                    json.dumps(list(measurement.kernels)),
                    json.dumps(list(measurement.samples)),
                    measurement.overhead,
                ),
            )
        except sqlite3.IntegrityError as exc:
            raise MeasurementError(
                f"measurement {measurement.key} already stored"
            ) from exc
        self._conn.commit()

    # -- read ----------------------------------------------------------------

    def get(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        kernels: tuple[str, ...],
    ) -> Optional[Measurement]:
        """Fetch one measurement, or None."""
        row = self._conn.execute(
            "SELECT samples, overhead FROM measurements WHERE "
            "benchmark=? AND problem_class=? AND nprocs=? AND kernels=?",
            (benchmark, problem_class, nprocs, json.dumps(list(kernels))),
        ).fetchone()
        if row is None:
            return None
        samples, overhead = row
        return Measurement(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            kernels=tuple(kernels),
            samples=tuple(json.loads(samples)),
            overhead=overhead,
        )

    def __iter__(self) -> Iterator[Measurement]:
        rows = self._conn.execute(
            "SELECT benchmark, problem_class, nprocs, kernels, samples, overhead "
            "FROM measurements ORDER BY id"
        )
        for bench, cls, nprocs, kernels, samples, overhead in rows:
            yield Measurement(
                benchmark=bench,
                problem_class=cls,
                nprocs=nprocs,
                kernels=tuple(json.loads(kernels)),
                samples=tuple(json.loads(samples)),
                overhead=overhead,
            )

    def __len__(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM measurements").fetchone()
        return n

    # -- memoization ------------------------------------------------------------

    def get_or_measure(self, runner, kernels: tuple[str, ...]) -> Measurement:
        """Return the stored measurement or run ``runner.measure`` and store."""
        bench = runner.benchmark
        found = self.get(
            bench.name, bench.size.problem_class, bench.nprocs, tuple(kernels)
        )
        if found is not None:
            return found
        measured = runner.measure(kernels)
        self.store(measured)
        return measured
