"""Per-kernel breakdown of an application run.

Answers "where did the time go" questions per kernel: compute vs memory vs
communication wait, aggregated over ranks. This is the diagnostic view the
paper's analysis leans on when explaining *why* a coupling value moved
(e.g. "the number of messages and load balancing issues are affecting the
coupling more than the message sizes and cache effects", §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import MeasurementError
from repro.instrument.runner import ApplicationResult, ApplicationRunner
from repro.npb.base import Benchmark
from repro.simmachine.machine import MachineConfig

__all__ = ["KernelProfile", "ProfileReport", "profile_application"]


@dataclass(frozen=True)
class KernelProfile:
    """Aggregated activity of one kernel across all ranks."""

    kernel: str
    compute_time: float
    memory_time: float
    wait_time: float
    flops: float
    bytes_touched: int
    bytes_from_memory: int
    messages_sent: int

    @property
    def total_time(self) -> float:
        """Compute + memory + wait seconds (rank-summed)."""
        return self.compute_time + self.memory_time + self.wait_time

    @property
    def wait_fraction(self) -> float:
        """Share of the kernel's time spent blocked on communication."""
        total = self.total_time
        return self.wait_time / total if total else 0.0

    @property
    def miss_ratio(self) -> float:
        """Fraction of touched bytes that came from main memory."""
        if self.bytes_touched == 0:
            return 0.0
        return self.bytes_from_memory / self.bytes_touched


@dataclass(frozen=True)
class ProfileReport:
    """Application-wide per-kernel profile."""

    application: ApplicationResult
    kernels: dict[str, KernelProfile]

    def dominant_kernel(self) -> str:
        """The kernel with the largest aggregate time."""
        if not self.kernels:
            raise MeasurementError("profile has no kernels")
        return max(self.kernels.values(), key=lambda k: k.total_time).kernel

    def render(self) -> str:
        """Human-readable breakdown, largest kernel first."""
        lines = [
            f"{self.application.benchmark} class "
            f"{self.application.problem_class} on "
            f"{self.application.nprocs} procs — total "
            f"{self.application.total_time:.2f} s",
            f"{'kernel':<16} {'compute':>10} {'memory':>10} {'wait':>10} "
            f"{'wait%':>6} {'miss%':>6}",
        ]
        for prof in sorted(
            self.kernels.values(), key=lambda k: -k.total_time
        ):
            lines.append(
                f"{prof.kernel:<16} {prof.compute_time:>10.3f} "
                f"{prof.memory_time:>10.3f} {prof.wait_time:>10.3f} "
                f"{100 * prof.wait_fraction:>5.1f}% "
                f"{100 * prof.miss_ratio:>5.1f}%"
            )
        return "\n".join(lines)


def profile_application(
    benchmark: Benchmark,
    machine: MachineConfig,
    seed: int = 0,
    extrapolate: bool | None = None,
) -> ProfileReport:
    """Run the application and return its per-kernel profile."""
    with obs.span(
        "profile.application",
        benchmark=benchmark.name,
        cls=benchmark.size.problem_class,
        nprocs=benchmark.nprocs,
    ):
        runner = ApplicationRunner(benchmark, machine, seed=seed)
        result = runner.run(extrapolate=extrapolate)
    kernels = {}
    for label, c in result.counters.items():
        kernels[label] = KernelProfile(
            kernel=label,
            compute_time=c.compute_time,
            memory_time=c.memory_time,
            wait_time=c.wait_time,
            flops=c.flops,
            bytes_touched=c.bytes_touched,
            bytes_from_memory=c.bytes_from_memory,
            messages_sent=c.messages_sent,
        )
    return ProfileReport(application=result, kernels=kernels)
