"""Chain and application runners (see package docstring for the protocol)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Sequence, Union

from repro import obs
from repro.errors import MeasurementError
from repro.npb.base import Benchmark
from repro.simmachine.machine import MachineConfig
from repro.simmachine.process import KernelCounters, Machine
from repro.simmachine.trace import Trace
from repro.simmpi.comm import attach_world
from repro.util.stats import Summary, summary

__all__ = [
    "MeasurementConfig",
    "Measurement",
    "ChainRunner",
    "ApplicationResult",
    "ApplicationRunner",
]


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs of the measurement protocol.

    Attributes
    ----------
    repetitions:
        Timed loop iterations per measurement (the paper uses 50; the
        simulator's noise is milder, so fewer suffice — raise it for
        high-noise studies).
    warmup:
        Untimed leading iterations (settle adapter state).
    isolated_context / chain_context:
        What happens to machine state between timed iterations for
        single-kernel and multi-kernel measurements respectively:

        * ``"flush"`` — cold caches + drained network before every timed
          iteration. Default for *isolated* kernels: the methodology's
          per-kernel models ``E_k`` are cold-start by construction (an
          analytical model of a kernel knows nothing about what other
          kernels leave in the cache), and the coupling coefficients are
          precisely the correction from cold models to in-context reality.
        * ``"none"`` — self-warming back-to-back loop, the paper's literal
          protocol ("placing a given kernel or pair of kernels into a
          loop"). Default for *chains*: the steady state of the chain loop
          exposes the inter-kernel reuse the coupling value quantifies.
        * ``"replay"`` — the kernels that run between two executions of
          the chain in the application's cyclic flow stream their data
          through the caches first (state only, no simulated time). This
          re-creates the exact in-application start state; with it on both
          isolated and chain measurements all couplings collapse to ~1
          (exercised by the ablation tests).
    seed:
        Base noise seed; each distinct chain gets an independent stream.
    subtract_overhead:
        Subtract the empty-chain (harness) time from each sample.
    """

    repetitions: int = 8
    warmup: int = 1
    isolated_context: str = "flush"
    chain_context: str = "none"
    seed: int = 0
    subtract_overhead: bool = True

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise MeasurementError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.warmup < 0:
            raise MeasurementError(f"warmup must be >= 0, got {self.warmup}")
        for name, value in (
            ("isolated_context", self.isolated_context),
            ("chain_context", self.chain_context),
        ):
            if value not in ("replay", "flush", "none"):
                raise MeasurementError(
                    f"{name} must be replay/flush/none, got {value!r}"
                )

    def context_for(self, kernels: Sequence[str]) -> str:
        """Context mode applying to a measurement of ``kernels``."""
        return self.isolated_context if len(kernels) <= 1 else self.chain_context


@dataclass(frozen=True)
class Measurement:
    """One measured chain: per-iteration makespan of the kernels together."""

    benchmark: str
    problem_class: str
    nprocs: int
    kernels: tuple[str, ...]
    samples: tuple[float, ...]
    overhead: float
    counters: dict[str, KernelCounters] = field(default_factory=dict, compare=False)

    @property
    def mean(self) -> float:
        """Mean per-iteration time of the chain (overhead already removed)."""
        return sum(self.samples) / len(self.samples)

    @property
    def stats(self) -> Summary:
        """Sample statistics of the per-iteration times."""
        return summary(self.samples)

    @property
    def key(self) -> tuple:
        """Identity of this measurement in a database."""
        return (self.benchmark, self.problem_class, self.nprocs, self.kernels)


class ChainRunner:
    """Measures kernels and chains of kernels per the paper's protocol."""

    def __init__(
        self,
        benchmark: Benchmark,
        machine_config: MachineConfig,
        config: MeasurementConfig = MeasurementConfig(),
    ) -> None:
        self.benchmark = benchmark
        self.machine_config = machine_config
        self.config = config
        self._overhead: Optional[float] = None

    # -- internals -----------------------------------------------------------

    def _context_kernels(self, kernels: Sequence[str]) -> list[str]:
        """Kernels that run between two executions of this chain in the app.

        For a window of the cyclic loop flow, these are the remaining loop
        kernels starting after the window's last element and wrapping to
        its first. One-shot pre kernels see a cold machine (empty list:
        nothing precedes INITIALIZATION); one-shot post kernels see the
        whole loop's state.
        """
        names = self.benchmark.loop_kernel_names
        window = tuple(kernels)
        if not window:
            return []
        if all(k in self.benchmark.pre_kernel_names for k in window):
            return []
        if not all(k in names for k in window):
            return list(names)  # post kernels: the loop just ran
        n = len(names)
        for start in range(n):
            if tuple(names[(start + j) % n] for j in range(len(window))) == window:
                seq = []
                i = (start + len(window)) % n
                while i != start:
                    seq.append(names[i])
                    i = (i + 1) % n
                return seq
        raise MeasurementError(
            f"{window} is not a contiguous window of the loop flow {names}"
        )

    def _replay_context(self, ctx, context_kernels: Sequence[str]) -> None:
        """Stream the context kernels' data through this rank's caches."""
        bench = self.benchmark
        fields = bench.kernel_fields()
        for kernel in context_kernels:
            for field in fields[kernel]:
                ctx.memory.touch(bench.region(ctx.rank, field))

    def _run_loop(self, kernels: Sequence[str], run_id: str) -> Measurement:
        bench = self.benchmark
        cfg = self.config
        context = cfg.context_for(kernels)
        machine = Machine(
            self.machine_config, bench.nprocs, seed=cfg.seed, run_id=run_id
        )
        attach_world(machine)
        bodies = [bench.kernel(k) for k in kernels]
        total = cfg.warmup + cfg.repetitions
        samples: list[float] = []
        context_kernels = (
            self._context_kernels(kernels) if context == "replay" else []
        )

        def program(ctx) -> Generator[Any, Any, None]:
            comm = ctx.comm
            for rep in range(total):
                if context == "replay":
                    self._replay_context(ctx, context_kernels)
                    if ctx.rank == 0:
                        machine.drain_network()
                elif context == "flush":
                    ctx.memory.flush()
                    if ctx.rank == 0:
                        machine.drain_network()
                yield from comm.barrier()
                t0 = ctx.sim.now
                for body in bodies:
                    yield from body(ctx)
                yield from comm.barrier()
                if ctx.rank == 0 and rep >= cfg.warmup:
                    samples.append(ctx.sim.now - t0)

        machine.run(program, name=f"meas-{'+'.join(kernels) or 'empty'}-r")
        counters = {
            label: machine.counters_for(label) for label in machine.all_labels()
        }
        return Measurement(
            benchmark=bench.name,
            problem_class=bench.size.problem_class,
            nprocs=bench.nprocs,
            kernels=tuple(kernels),
            samples=tuple(samples),
            overhead=0.0,
            counters=counters,
        )

    def measure_overhead(self) -> float:
        """Per-iteration cost of the empty harness loop (cached)."""
        if self._overhead is None:
            raw = self._run_loop((), run_id="overhead")
            self._overhead = raw.mean
        return self._overhead

    def prime_overhead(self, value: float) -> None:
        """Preload the cached empty-loop overhead (memoization layers).

        The value must come from an identical configuration's
        :meth:`measure_overhead` — the simulator's determinism (REP001)
        makes such replayed values bit-identical to a fresh run.
        """
        self._overhead = value

    # -- public API --------------------------------------------------------------

    def measure(self, kernels: Sequence[str]) -> Measurement:
        """Measure a chain (or, with one name, an isolated kernel)."""
        if not kernels:
            raise MeasurementError("measure() needs at least one kernel")
        for k in kernels:
            self.benchmark.kernel(k)  # validate names early
        with obs.span(
            "measure.chain",
            benchmark=self.benchmark.name,
            kernels="+".join(kernels),
            nprocs=self.benchmark.nprocs,
        ):
            return self._measure(tuple(kernels))

    def _measure(self, kernels: tuple[str, ...]) -> Measurement:
        overhead = self.measure_overhead() if self.config.subtract_overhead else 0.0
        raw = self._run_loop(tuple(kernels), run_id="+".join(kernels))
        samples = tuple(max(0.0, s - overhead) for s in raw.samples)
        if all(s == 0.0 for s in samples):
            raise MeasurementError(
                f"chain {tuple(kernels)} measured as all-zero after overhead "
                "subtraction; the loop does not dominate the harness"
            )
        return Measurement(
            benchmark=raw.benchmark,
            problem_class=raw.problem_class,
            nprocs=raw.nprocs,
            kernels=raw.kernels,
            samples=samples,
            overhead=overhead,
            counters=raw.counters,
        )

    def measure_all_isolated(self, kernels: Sequence[str]) -> dict[str, Measurement]:
        """Isolated measurement of each kernel (the summation inputs)."""
        return {k: self.measure((k,)) for k in kernels}

    def measure_windows(
        self, windows: Sequence[tuple[str, ...]]
    ) -> dict[tuple[str, ...], Measurement]:
        """Measure every chain window (the coupling inputs)."""
        return {tuple(win): self.measure(win) for win in windows}


@dataclass(frozen=True)
class ApplicationResult:
    """Outcome of running the full application."""

    benchmark: str
    problem_class: str
    nprocs: int
    total_time: float
    pre_time: float
    loop_time: float
    post_time: float
    iterations: int
    measured_iterations: int
    extrapolated: bool
    counters: dict[str, KernelCounters] = field(default_factory=dict, compare=False)
    #: The run's event trace when the runner was built with ``trace`` on
    #: (``repro trace`` exports this); ``None`` otherwise.
    trace: Optional[Trace] = field(default=None, compare=False, repr=False)

    @property
    def per_iteration(self) -> float:
        """Average main-loop iteration time."""
        return self.loop_time / self.iterations


class ApplicationRunner:
    """Runs the complete application to produce the tables' "Actual" row."""

    #: Run the loop in full when the class has at most this many iterations.
    FULL_RUN_MAX_ITERATIONS = 60

    def __init__(
        self,
        benchmark: Benchmark,
        machine_config: MachineConfig,
        seed: int = 0,
        warmup_iterations: int = 2,
        measured_iterations: int = 6,
        trace: Union[bool, int, Trace] = False,
    ):
        self.benchmark = benchmark
        self.machine_config = machine_config
        self.seed = seed
        self.warmup_iterations = warmup_iterations
        self.measured_iterations = measured_iterations
        self.trace = trace

    def run(self, extrapolate: Optional[bool] = None) -> ApplicationResult:
        """Simulate the application.

        ``extrapolate=None`` (default) decides automatically: classes with
        few iterations run in full; long loops simulate
        ``warmup + measured`` iterations and extrapolate the steady-state
        rate (equivalence with full runs is covered by integration tests).
        """
        with obs.span(
            "app.run",
            benchmark=self.benchmark.name,
            cls=self.benchmark.size.problem_class,
            nprocs=self.benchmark.nprocs,
        ):
            return self._run(extrapolate)

    def _run(self, extrapolate: Optional[bool]) -> ApplicationResult:
        bench = self.benchmark
        iterations = bench.iterations
        if extrapolate is None:
            extrapolate = iterations > self.FULL_RUN_MAX_ITERATIONS
        simulate_iters = (
            self.warmup_iterations + self.measured_iterations
            if extrapolate
            else iterations
        )
        if extrapolate and simulate_iters > iterations:
            extrapolate = False
            simulate_iters = iterations

        machine = Machine(
            self.machine_config,
            bench.nprocs,
            seed=self.seed,
            run_id="application",
            trace=self.trace,
        )
        attach_world(machine)
        marks: dict[str, float] = {}

        def program(ctx) -> Generator[Any, Any, None]:
            comm = ctx.comm
            for k in bench.pre_kernel_names:
                yield from bench.kernel(k)(ctx)
            yield from comm.barrier()
            if ctx.rank == 0:
                marks["pre_end"] = ctx.sim.now
            for it in range(simulate_iters):
                if extrapolate and it == self.warmup_iterations:
                    yield from comm.barrier()
                    if ctx.rank == 0:
                        marks["steady_start"] = ctx.sim.now
                for k in bench.loop_kernel_names:
                    yield from bench.kernel(k)(ctx)
            yield from comm.barrier()
            if ctx.rank == 0:
                marks["loop_end"] = ctx.sim.now
            for k in bench.post_kernel_names:
                yield from bench.kernel(k)(ctx)

        total_sim = machine.run(program, name="app-r")
        pre_time = marks["pre_end"]
        post_time = total_sim - marks["loop_end"]
        if extrapolate:
            steady = marks["loop_end"] - marks["steady_start"]
            rate = steady / self.measured_iterations
            loop_time = rate * iterations
            total_time = pre_time + loop_time + post_time
        else:
            loop_time = marks["loop_end"] - marks["pre_end"]
            total_time = total_sim
        counters = {
            label: machine.counters_for(label) for label in machine.all_labels()
        }
        return ApplicationResult(
            benchmark=bench.name,
            problem_class=bench.size.problem_class,
            nprocs=bench.nprocs,
            total_time=total_time,
            pre_time=pre_time,
            loop_time=loop_time,
            post_time=post_time,
            iterations=iterations,
            measured_iterations=simulate_iters,
            extrapolated=extrapolate,
            counters=counters,
            trace=machine.trace,
        )
