"""Measurement campaigns: multi-configuration sweeps with persistence.

A :class:`Campaign` runs the full measurement protocol (isolated kernels,
chain windows, pre/post kernels) over a grid of (class, nprocs)
configurations, memoizing every measurement in a
:class:`~repro.instrument.database.PerformanceDatabase`. Re-running a
campaign against the same database is incremental: only missing
measurements execute — the practical workflow the paper's Prophesy system
[TG01] was built around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import obs
from repro.core.kernel import ControlFlow
from repro.core.predictor import PredictionInputs
from repro.errors import MeasurementError
from repro.instrument.database import PerformanceDatabase
from repro.instrument.runner import ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.parallel.memo import SimulationMemoStore
from repro.parallel.worker import measure_chain, prime_runner_overhead
from repro.simmachine.machine import MachineConfig

__all__ = ["CampaignPlan", "Campaign"]


@dataclass(frozen=True)
class CampaignPlan:
    """What a campaign should measure."""

    benchmark: str
    problem_classes: tuple[str, ...]
    proc_counts: tuple[int, ...]
    chain_lengths: tuple[int, ...] = (2,)
    include_one_shots: bool = True

    def __post_init__(self) -> None:
        if not self.problem_classes or not self.proc_counts:
            raise MeasurementError("campaign plan needs classes and proc counts")
        if any(length < 2 for length in self.chain_lengths):
            raise MeasurementError("chain lengths must be >= 2")

    def configurations(self) -> list[tuple[str, int]]:
        """All (class, nprocs) cells of the sweep grid."""
        return [
            (cls, procs)
            for cls in self.problem_classes
            for procs in self.proc_counts
        ]

    @classmethod
    def for_cell(
        cls,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        chain_lengths: Sequence[int] = (2,),
        include_one_shots: bool = True,
    ) -> "CampaignPlan":
        """A single-cell plan — the unit the serving layer batches on.

        :mod:`repro.service.batching` groups coalesced requests by
        (benchmark, class, nprocs) and turns each group into one of these,
        so a batch shares the runner warm-up and memoizes through the same
        database a sweep would.
        """
        return cls(
            benchmark=benchmark,
            problem_classes=(problem_class,),
            proc_counts=(nprocs,),
            chain_lengths=tuple(sorted(set(chain_lengths))),
            include_one_shots=include_one_shots,
        )


@dataclass
class Campaign:
    """Executes a plan, memoizing through a performance database."""

    plan: CampaignPlan
    machine: MachineConfig
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    database: Optional[PerformanceDatabase] = None
    #: Optional content-addressed simulation memo (see
    #: :mod:`repro.parallel.memo`) layered *under* the database: a database
    #: miss consults the memo before simulating, so campaigns share
    #: already-simulated work with pipelines and the serving engine.
    memo: Optional[SimulationMemoStore] = None

    def __post_init__(self) -> None:
        if self.database is None:
            self.database = PerformanceDatabase()
        self.measurements_run = 0
        self.measurements_reused = 0

    def _measure(self, runner: ChainRunner, kernels: Sequence[str]):
        bench = runner.benchmark
        cached = self.database.get(
            bench.name, bench.size.problem_class, bench.nprocs, tuple(kernels)
        )
        if cached is not None:
            self.measurements_reused += 1
            obs.get_registry().counter("campaign_measurements_reused").inc()
            return cached
        measured = measure_chain(runner, kernels, self.memo)
        stored = self.database.store_if_absent(measured)
        self.measurements_run += 1
        obs.get_registry().counter("campaign_measurements_run").inc()
        return stored

    def run_configuration(self, problem_class: str, nprocs: int) -> PredictionInputs:
        """Measure (or load) one cell; returns ready prediction inputs."""
        with obs.span(
            "campaign.run",
            benchmark=self.plan.benchmark,
            cls=problem_class,
            nprocs=nprocs,
        ):
            inputs = self._run_configuration(problem_class, nprocs)
        obs.get_registry().counter("campaign_runs_completed").inc()
        return inputs

    def _run_configuration(
        self, problem_class: str, nprocs: int
    ) -> PredictionInputs:
        bench = make_benchmark(self.plan.benchmark, problem_class, nprocs)
        flow = ControlFlow(bench.loop_kernel_names)
        runner = ChainRunner(bench, self.machine, self.measurement)
        prime_runner_overhead(runner, self.memo)
        loop_times = {
            k: self._measure(runner, (k,)).mean for k in flow.names
        }
        pre: dict[str, float] = {}
        post: dict[str, float] = {}
        if self.plan.include_one_shots:
            pre = {
                k: self._measure(runner, (k,)).mean
                for k in bench.pre_kernel_names
            }
            post = {
                k: self._measure(runner, (k,)).mean
                for k in bench.post_kernel_names
            }
        chain_times = {}
        for length in self.plan.chain_lengths:
            for window in flow.windows(length):
                chain_times[window] = self._measure(runner, window).mean
        return PredictionInputs(
            flow=flow,
            iterations=bench.iterations,
            loop_times=loop_times,
            pre_times=pre,
            post_times=post,
            chain_times=chain_times,
        )

    def run(self) -> dict[tuple[str, int], PredictionInputs]:
        """Measure every cell of the plan; returns inputs per cell."""
        return {
            (cls, procs): self.run_configuration(cls, procs)
            for cls, procs in self.plan.configurations()
        }
