"""Text timeline (Gantt-style) rendering of a traced run.

Turns a :class:`~repro.simmachine.trace.Trace` into a per-rank character
timeline: one row per rank, one column per time bucket, each cell showing
the initial of the kernel active in that bucket (``.`` for untraced time).
Useful for eyeballing wavefront pipelining, load imbalance and
kernel-boundary overlap when debugging new kernels::

    rank 0 |IIICCCXXXXYYYYZZZZA
    rank 1 |III.CCCXXXXYYYYZZZA
"""

from __future__ import annotations

from repro.errors import MeasurementError
from repro.simmachine.trace import Trace

__all__ = ["render_timeline"]


def render_timeline(
    trace: Trace, nprocs: int, width: int = 72, legend: bool = True
) -> str:
    """Render a traced run as one character row per rank.

    Each rank's phase records partition its time axis; a bucket shows the
    first letter of the kernel label active at the bucket's start.
    """
    if width < 10:
        raise MeasurementError(f"timeline width must be >= 10, got {width}")
    phases = trace.by_kind("phase")
    if not phases:
        raise MeasurementError("trace has no phase records (enable trace=True)")
    t_end = max(r.time for r in trace.records)
    t_end = t_end if t_end > 0 else 1.0
    dt = t_end / width

    labels_used: dict[str, str] = {}

    def letter(label: str) -> str:
        if label not in labels_used:
            # Prefer the first unused character of the label (skipping
            # separators), so SSOR_LT / SSOR_UT get distinct letters.
            taken = set(labels_used.values())
            chosen = "?"
            for ch in label:
                if ch.isalnum() and ch.upper() not in taken:
                    chosen = ch.upper()
                    break
            else:
                for ch in "0123456789abcdefghijklmnopqrstuvwxyz":
                    if ch not in taken:
                        chosen = ch
                        break
            labels_used[label] = chosen
        return labels_used[label]

    lines = []
    for rank in range(nprocs):
        spans = [(r.time, r.label) for r in phases if r.rank == rank]
        row = []
        for bucket in range(width):
            t = bucket * dt
            active = None
            for start, label in spans:
                if start <= t:
                    active = label
                else:
                    break
            row.append(letter(active) if active else ".")
        lines.append(f"rank {rank:>2} |{''.join(row)}")
    if legend:
        pairs = sorted(
            {(letter(lbl), lbl) for _t, lbl in
             ((r.time, r.label) for r in phases)}
        )
        lines.append(
            "legend: "
            + "  ".join(f"{ch}={label}" for ch, label in pairs)
            + f"  (span {t_end:.4g} s, {dt:.3g} s/col)"
        )
    return "\n".join(lines)
