"""NAS Parallel Benchmark work-alikes (BT, SP, LU) for the simulated machine.

Each benchmark is described as an ordered set of *kernels* — the exact
decomposition the paper uses (§4.1–§4.3) — with per-invocation flop counts,
data-region footprints and communication patterns taken from the NPB 2
specifications. Kernels run on the simulated machine as generator programs
(see :mod:`repro.simmachine`), so their cost reflects cache state, network
contention and load imbalance at the moment they run — which is what makes
isolated and in-context executions differ, i.e. what coupling measures.

The underlying numerical methods (5×5 block-tridiagonal solves, scalar
pentadiagonal solves, SSOR) are also implemented *for real* in
:mod:`repro.npb.numerics` and validated against SciPy; the simulator uses
their operation counts, and small classes can be executed end-to-end for
verification (:mod:`repro.npb.verify`).
"""

from repro.npb.base import Benchmark, KernelInstance, Layout
from repro.npb.bt import BT
from repro.npb.cg import CG
from repro.npb.classes import (
    CLASS_NAMES,
    ProblemSize,
    iterations_for,
    problem_size,
)
from repro.npb.lu import LU
from repro.npb.mg import MG
from repro.npb.sp import SP

BENCHMARKS = {"BT": BT, "SP": SP, "LU": LU, "CG": CG, "MG": MG}


def make_benchmark(name: str, problem_class: str, nprocs: int) -> Benchmark:
    """Instantiate a benchmark by name ("BT" | "SP" | "LU" | "CG" | "MG")."""
    try:
        cls = BENCHMARKS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None
    return cls(problem_class, nprocs)


__all__ = [
    "BENCHMARKS",
    "BT",
    "Benchmark",
    "CG",
    "CLASS_NAMES",
    "KernelInstance",
    "LU",
    "Layout",
    "MG",
    "ProblemSize",
    "SP",
    "iterations_for",
    "make_benchmark",
    "problem_size",
]
