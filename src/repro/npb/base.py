"""Common benchmark machinery: layouts, kernels, and comm helpers.

A :class:`Benchmark` instance binds a problem class to a process count and
exposes the paper's kernel decomposition: an ordered list of *loop kernels*
(the application's cyclic control flow), plus *pre* kernels run once before
the loop (INITIALIZATION, ...) and *post* kernels run once after (FINAL,
...). Each kernel's body is a generator taking a
:class:`~repro.simmachine.process.RankContext` and performing **one
invocation** on that rank; the measurement harness and the application
driver compose these bodies into full programs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.npb.classes import ProblemSize, problem_size
from repro.simmachine.engine import Event
from repro.simmachine.memory import DataRegion
from repro.simmachine.process import RankContext
from repro.simmpi.topology import CartGrid, partition_sizes

__all__ = ["KernelInstance", "Layout", "Benchmark", "staged_memory"]

KernelBody = Callable[[RankContext], Generator[Event, Any, Any]]


@dataclass(frozen=True)
class KernelInstance:
    """A named kernel bound to a benchmark configuration."""

    name: str
    body: KernelBody

    def __call__(self, ctx: RankContext) -> Generator[Event, Any, Any]:
        """Run one invocation on ``ctx``'s rank (labels counters first)."""
        ctx.set_label(self.name)
        return (yield from self.body(ctx))


class Layout:
    """2-D block decomposition of a cubic grid over a process grid.

    x is split over the grid's first dimension, y over the second, z stays
    local — the simplification of the NPB multi-partition/pencil schemes
    documented in DESIGN.md. Uneven divisions follow the NPB convention
    (leading ranks get the extra points), which is a deliberate source of
    load imbalance.
    """

    def __init__(self, size: ProblemSize, grid: CartGrid):
        if grid.px > size.nx or grid.py > size.ny:
            raise ConfigurationError(
                f"grid {grid.px}x{grid.py} too fine for {size.label}"
            )
        self.size = size
        self.grid = grid
        self._x_parts = partition_sizes(size.nx, grid.px)
        self._y_parts = partition_sizes(size.ny, grid.py)

    def local_dims(self, rank: int) -> tuple[int, int, int]:
        """``(nx_loc, ny_loc, nz_loc)`` for ``rank``."""
        i, j = self.grid.coords(rank)
        return (self._x_parts[i], self._y_parts[j], self.size.nz)

    def local_points(self, rank: int) -> int:
        """Grid points owned by ``rank``."""
        nx, ny, nz = self.local_dims(rank)
        return nx * ny * nz

    def max_local_points(self) -> int:
        """Points on the most loaded rank."""
        return max(self.local_points(r) for r in range(self.grid.size))


def staged_memory(
    ctx: RankContext,
    regions: Sequence[tuple[DataRegion, Optional[int], bool]],
    stages: int,
) -> float:
    """Charge a kernel's full memory traffic once, spread over ``stages``.

    Kernels that interleave computation with communication (multi-partition
    sweeps, wavefronts) stream their arrays once per invocation, not once
    per stage. Touching the region per stage would double-count residency
    (the model tracks the *first* N bytes of a region), so the traffic is
    charged in one bulk touch here and the caller adds
    ``returned_value`` seconds to each stage's delay.
    """
    if stages < 1:
        raise ConfigurationError(f"stages must be >= 1, got {stages}")
    return ctx.touch_regions(regions) / stages


class Benchmark(ABC):
    """Base class for the BT/SP/LU work-alikes."""

    #: Benchmark name, set by subclasses ("BT", "SP", "LU").
    name: str = ""

    def __init__(self, problem_class: str, nprocs: int):
        self.size: ProblemSize = self._problem_size(problem_class)
        self.nprocs = nprocs
        self.grid: CartGrid = self._make_grid(nprocs)
        self.layout = Layout(self.size, self.grid)
        self._regions: Dict[tuple[int, str], DataRegion] = {}
        self._kernels: Dict[str, KernelInstance] = {}
        self._build_kernels()

    def _problem_size(self, problem_class: str) -> ProblemSize:
        """Resolve the problem size; cubic NPB grids by default.

        Benchmarks with non-cubic data (e.g. CG's sparse system) override
        this instead of fighting the grid table.
        """
        return problem_size(self.name, problem_class)

    # -- to be provided by subclasses ---------------------------------------

    @abstractmethod
    def _make_grid(self, nprocs: int) -> CartGrid:
        """Validate ``nprocs`` and return the process grid."""

    @abstractmethod
    def _build_kernels(self) -> None:
        """Register all kernels via :meth:`_register`."""

    @property
    @abstractmethod
    def loop_kernel_names(self) -> tuple[str, ...]:
        """Loop kernels in control-flow order (the cyclic chain)."""

    @property
    @abstractmethod
    def pre_kernel_names(self) -> tuple[str, ...]:
        """Kernels run once before the loop."""

    @property
    @abstractmethod
    def post_kernel_names(self) -> tuple[str, ...]:
        """Kernels run once after the loop."""

    @abstractmethod
    def field_bytes_per_point(self) -> dict[str, int]:
        """Bytes per grid point for each named data field."""

    @abstractmethod
    def kernel_fields(self) -> dict[str, tuple[str, ...]]:
        """Data fields each kernel streams through, in touch order.

        Single source of truth shared by the kernel bodies, the analytical
        models, and the measurement harness's context replay (which
        re-creates the cache state left by the kernels that run *between*
        two executions of a measured chain).
        """

    # -- common machinery ----------------------------------------------------

    def _register(self, name: str, body: KernelBody) -> None:
        if name in self._kernels:
            raise ConfigurationError(f"duplicate kernel {name!r}")
        self._kernels[name] = KernelInstance(name, body)

    def kernel(self, name: str) -> KernelInstance:
        """Look up a kernel by name."""
        try:
            return self._kernels[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no kernel {name!r}; "
                f"known: {sorted(self._kernels)}"
            ) from None

    def kernel_names(self) -> tuple[str, ...]:
        """All kernels: pre + loop + post, in execution order."""
        return self.pre_kernel_names + self.loop_kernel_names + self.post_kernel_names

    @property
    def iterations(self) -> int:
        """Main-loop iteration count for this problem class."""
        return self.size.iterations

    def region(self, rank: int, field: str) -> DataRegion:
        """The (cached) data region of ``field`` on ``rank``."""
        key = (rank, field)
        reg = self._regions.get(key)
        if reg is None:
            per_point = self.field_bytes_per_point()
            if field not in per_point:
                raise ConfigurationError(
                    f"{self.name} has no field {field!r}; "
                    f"known: {sorted(per_point)}"
                )
            nbytes = per_point[field] * self.layout.local_points(rank)
            reg = self._regions[key] = DataRegion(f"{field}", nbytes)
        return reg

    def footprint_bytes(self, rank: int) -> int:
        """Total bytes of all fields on ``rank`` (sizes the cold-context)."""
        per_point = self.field_bytes_per_point()
        return sum(b for b in per_point.values()) * self.layout.local_points(rank)

    # -- shared communication idioms ----------------------------------------

    def exchange_faces(
        self,
        ctx: RankContext,
        bytes_per_xface_point: int,
        bytes_per_yface_point: int,
        tag: int,
        depth: int = 1,
    ) -> Generator[Event, Any, None]:
        """Nonblocking halo exchange with the (up to) four grid neighbors."""
        comm = ctx.comm
        nx, ny, nz = self.layout.local_dims(ctx.rank)
        requests = []
        for dim, step in ((0, -1), (0, +1), (1, -1), (1, +1)):
            peer = self.grid.neighbor(ctx.rank, dim, step)
            if peer is None:
                continue
            if dim == 0:
                nbytes = bytes_per_xface_point * ny * nz * depth
            else:
                nbytes = bytes_per_yface_point * nx * nz * depth
            requests.append(comm.irecv(peer, tag))
            requests.append(comm.isend(peer, nbytes, tag))
        if requests:
            yield from comm.waitall(requests)

    def ranks(self) -> range:
        """All ranks of this configuration."""
        return range(self.nprocs)
