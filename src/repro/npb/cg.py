"""CG (Conjugate Gradient) work-alike — a library extension beyond the paper.

The paper evaluates BT, SP and LU; CG is included because it stresses a
*different* coupling regime: its kernels are short, memory-streaming, and
separated by latency-bound collectives (dot-product allreduces and a
per-iteration allgather of the search direction), so couplings at scale are
dominated by the network rather than the cache hierarchy.

Decomposition of the NPB CG inner iteration (``q = Ap``; ``alpha``;
``z, r`` update; ``rho``; ``p`` update) into four loop kernels::

    INITIALIZATION | MATVEC  DOT_PQ  UPDATE_ZR  RESID_P | FINAL

Simplification (documented): rows are distributed 1-D (each rank owns a
contiguous block of rows and the mat-vec allgathers the full search
direction), instead of NPB's 2-D decomposition. The communication volume
per mat-vec — the full vector per iteration — matches the 1-D algorithm
exactly.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigurationError
from repro.npb.base import Benchmark
from repro.npb.classes import ProblemSize
from repro.simmachine.engine import Event
from repro.simmachine.memory import DataRegion
from repro.simmachine.process import RankContext
from repro.simmpi.topology import CartGrid

__all__ = ["CG", "CG_SIZES"]

DOUBLE = 8
#: Bytes per stored nonzero: value + column index.
NNZ_BYTES = DOUBLE + 4

#: Per class: (rows, nonzeros per row, iterations) from the NPB CG spec.
CG_SIZES: dict[str, tuple[int, int, int]] = {
    "S": (1400, 7, 15),
    "W": (7000, 8, 15),
    "A": (14000, 11, 15),
    "B": (75000, 13, 75),
    "C": (150000, 15, 75),
}

#: Flops per nonzero for the sparse mat-vec (multiply + add).
MATVEC_FLOPS_PER_NNZ = 2.0
#: Flops per row for each vector kernel.
DOT_FLOPS_PER_ROW = 4.0        # two dot products
UPDATE_FLOPS_PER_ROW = 4.0     # z += alpha p; r -= alpha q
RESID_FLOPS_PER_ROW = 4.0      # rho = r.r; p = r + beta p
INIT_FLOPS_PER_NNZ = 10.0      # makea: generation + sort


class CG(Benchmark):
    """The CG benchmark bound to a problem class and process count."""

    name = "CG"

    def _problem_size(self, problem_class: str) -> ProblemSize:
        cls = problem_class.upper()
        if cls not in CG_SIZES:
            raise ConfigurationError(
                f"unknown class {problem_class!r} for CG; "
                f"choose from {sorted(CG_SIZES)}"
            )
        rows, _nnz_per_row, iterations = CG_SIZES[cls]
        return ProblemSize(
            benchmark="CG",
            problem_class=cls,
            nx=rows,
            ny=1,
            nz=1,
            iterations=iterations,
        )

    def _make_grid(self, nprocs: int) -> CartGrid:
        if nprocs < 1 or nprocs & (nprocs - 1):
            raise ConfigurationError(
                f"CG requires a power-of-two number of processes, got {nprocs}"
            )
        return CartGrid(nprocs, 1)  # 1-D row distribution

    @property
    def nnz_per_row(self) -> int:
        return CG_SIZES[self.size.problem_class][1]

    @property
    def loop_kernel_names(self) -> tuple[str, ...]:
        return ("MATVEC", "DOT_PQ", "UPDATE_ZR", "RESID_P")

    @property
    def pre_kernel_names(self) -> tuple[str, ...]:
        return ("INITIALIZATION",)

    @property
    def post_kernel_names(self) -> tuple[str, ...]:
        return ("FINAL",)

    def field_bytes_per_point(self) -> dict[str, int]:
        # "Point" = matrix row for CG.
        return {
            "matrix": NNZ_BYTES * self.nnz_per_row,
            "p": DOUBLE,
            "q": DOUBLE,
            "r": DOUBLE,
            "z": DOUBLE,
        }

    def kernel_fields(self) -> dict[str, tuple[str, ...]]:
        return {
            "INITIALIZATION": ("matrix", "p", "r", "z"),
            "MATVEC": ("p_full", "matrix", "q"),
            "DOT_PQ": ("p", "q"),
            "UPDATE_ZR": ("p", "q", "z", "r"),
            "RESID_P": ("r", "p"),
            "FINAL": ("z", "r"),
        }

    def region(self, rank: int, field: str) -> DataRegion:
        # The allgathered search direction is full-length on every rank.
        if field == "p_full":
            key = (rank, "p_full")
            reg = self._regions.get(key)
            if reg is None:
                reg = self._regions[key] = DataRegion(
                    "p_full", DOUBLE * self.size.nx
                )
            return reg
        return super().region(rank, field)

    def footprint_bytes(self, rank: int) -> int:
        return (
            super().footprint_bytes(rank)
            + self.region(rank, "p_full").nbytes
        )

    def _local_rows(self, rank: int) -> int:
        return self.layout.local_points(rank)

    def _local_nnz(self, rank: int) -> int:
        return self._local_rows(rank) * self.nnz_per_row

    # -- kernels -----------------------------------------------------------------

    def _build_kernels(self) -> None:
        self._register("INITIALIZATION", self._initialization)
        self._register("MATVEC", self._matvec)
        self._register("DOT_PQ", self._dot_pq)
        self._register("UPDATE_ZR", self._update_zr)
        self._register("RESID_P", self._resid_p)
        self._register("FINAL", self._final)

    def _initialization(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            INIT_FLOPS_PER_NNZ * self._local_nnz(r),
            [
                (self.region(r, "matrix"), None, True),
                (self.region(r, "p"), None, True),
                (self.region(r, "r"), None, True),
                (self.region(r, "z"), None, True),
            ],
        )
        yield from ctx.comm.barrier()

    def _matvec(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        # Gather the full search direction, then q = A p.
        local_bytes = DOUBLE * self._local_rows(r)
        yield from ctx.comm.allgather(None, local_bytes)
        yield ctx.work(
            MATVEC_FLOPS_PER_NNZ * self._local_nnz(r),
            [
                (self.region(r, "p_full"), None, False),
                (self.region(r, "matrix"), None, False),
                (self.region(r, "q"), None, True),
            ],
        )

    def _dot_pq(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            DOT_FLOPS_PER_ROW * self._local_rows(r),
            [
                (self.region(r, "p"), None, False),
                (self.region(r, "q"), None, False),
            ],
        )
        yield from ctx.comm.allreduce(0.0, nbytes=DOUBLE)

    def _update_zr(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            UPDATE_FLOPS_PER_ROW * self._local_rows(r),
            [
                (self.region(r, "p"), None, False),
                (self.region(r, "q"), None, False),
                (self.region(r, "z"), None, True),
                (self.region(r, "r"), None, True),
            ],
        )

    def _resid_p(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            RESID_FLOPS_PER_ROW * self._local_rows(r),
            [
                (self.region(r, "r"), None, False),
                (self.region(r, "p"), None, True),
            ],
        )
        yield from ctx.comm.allreduce(0.0, nbytes=DOUBLE)

    def _final(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            2.0 * self._local_rows(r),
            [
                (self.region(r, "z"), None, False),
                (self.region(r, "r"), None, False),
            ],
        )
        yield from ctx.comm.allreduce(0.0, nbytes=DOUBLE)
