"""NPB problem classes: grid sizes and iteration counts.

Grid sizes per class follow the paper's Tables 1, 5 and 7; iteration counts
follow the NPB 2 specification (the paper confirms BT's: the loop kernels
are "called 60 times for Class S, and 200 times for Class W and A").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CLASS_NAMES", "ProblemSize", "problem_size", "iterations_for"]

#: Class C (162^3) is beyond the paper's evaluation but part of the NPB
#: spec; it is included for larger scaling studies.
CLASS_NAMES = ("S", "W", "A", "B", "C")


@dataclass(frozen=True)
class ProblemSize:
    """One benchmark/class combination."""

    benchmark: str
    problem_class: str
    nx: int
    ny: int
    nz: int
    iterations: int

    @property
    def points(self) -> int:
        """Total grid points."""
        return self.nx * self.ny * self.nz

    @property
    def label(self) -> str:
        """Human-readable label like ``"BT class A (64 x 64 x 64)"``."""
        return (
            f"{self.benchmark} class {self.problem_class} "
            f"({self.nx} x {self.ny} x {self.nz})"
        )


# (nx, iterations) per class; all three benchmarks use cubic grids.
_GRIDS: dict[str, dict[str, tuple[int, int]]] = {
    "BT": {
        "S": (12, 60),
        "W": (32, 200),
        "A": (64, 200),
        "B": (102, 200),
        "C": (162, 200),
    },
    "SP": {
        "S": (12, 100),
        "W": (36, 400),
        "A": (64, 400),
        "B": (102, 400),
        "C": (162, 400),
    },
    "LU": {
        "S": (12, 50),
        "W": (33, 300),
        "A": (64, 250),
        "B": (102, 250),
        "C": (162, 250),
    },
    # MG (library extension): V-cycle multigrid, power-of-two grids.
    "MG": {
        "S": (32, 4),
        "W": (128, 4),
        "A": (256, 4),
        "B": (256, 20),
        "C": (512, 20),
    },
}


def problem_size(benchmark: str, problem_class: str) -> ProblemSize:
    """Look up the grid and iteration count for a benchmark/class."""
    bench = benchmark.upper()
    if bench not in _GRIDS:
        raise ConfigurationError(
            f"unknown benchmark {benchmark!r}; choose from {sorted(_GRIDS)}"
        )
    cls = problem_class.upper()
    if cls not in _GRIDS[bench]:
        raise ConfigurationError(
            f"unknown class {problem_class!r} for {bench}; "
            f"choose from {sorted(_GRIDS[bench])}"
        )
    n, iters = _GRIDS[bench][cls]
    return ProblemSize(bench, cls, n, n, n, iters)


def iterations_for(benchmark: str, problem_class: str) -> int:
    """Number of main-loop iterations for a benchmark/class."""
    return problem_size(benchmark, problem_class).iterations
