"""User-defined applications on the simulated machine.

The coupling methodology is application-agnostic; this module lets a user
describe *their* application — kernels, data fields, control flow — and run
it through the same measurement harness and predictors as the NPB
work-alikes::

    app = CustomApplication(
        CustomSpec(
            name="MYAPP",
            nx=48, ny=48, nz=48, iterations=100,
            grid=CartGrid(2, 2),
            fields={"state": 40, "flux": 40, "scratch": 200},
            loop_kernels=("FLUX", "UPDATE"),
            kernel_fields={
                "FLUX": ("state", "flux", "scratch"),
                "UPDATE": ("flux", "state"),
            },
            flops_per_point={"FLUX": 250.0, "UPDATE": 30.0},
            halo_bytes_per_point={"FLUX": 40},
        ),
        nprocs=4,
    )
    runner = ChainRunner(app, ibm_sp_argonne())
    ...

Kernels built this way do a halo exchange (when configured) followed by one
bulk compute/touch over the declared fields — the structure of most
bulk-synchronous stencil codes. Applications needing bespoke kernel bodies
can subclass :class:`CustomApplication` and override
:meth:`~CustomApplication._build_kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping

from repro.errors import ConfigurationError
from repro.npb.base import Benchmark
from repro.npb.classes import ProblemSize
from repro.simmachine.engine import Event
from repro.simmachine.process import RankContext
from repro.simmpi.topology import CartGrid

__all__ = ["CustomSpec", "CustomApplication"]

_HALO_TAG_BASE = 900


@dataclass(frozen=True)
class CustomSpec:
    """Declarative description of a user application.

    ``fields`` maps field name to bytes per grid point. ``kernel_fields``
    lists, per kernel and in touch order, which fields it streams (the
    *last* field listed is written). ``halo_bytes_per_point`` adds a
    4-neighbor ghost exchange before the compute for the kernels listed.
    """

    name: str
    nx: int
    ny: int
    nz: int
    iterations: int
    grid: CartGrid
    fields: Mapping[str, int]
    loop_kernels: tuple[str, ...]
    kernel_fields: Mapping[str, tuple[str, ...]]
    flops_per_point: Mapping[str, float]
    pre_kernels: tuple[str, ...] = ()
    post_kernels: tuple[str, ...] = ()
    halo_bytes_per_point: Mapping[str, int] = field(default_factory=dict)

    def all_kernels(self) -> tuple[str, ...]:
        return self.pre_kernels + self.loop_kernels + self.post_kernels

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("CustomSpec needs a name")
        if not self.loop_kernels:
            raise ConfigurationError("CustomSpec needs loop kernels")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        for kernel in self.all_kernels():
            if kernel not in self.kernel_fields:
                raise ConfigurationError(
                    f"kernel {kernel!r} missing from kernel_fields"
                )
            if kernel not in self.flops_per_point:
                raise ConfigurationError(
                    f"kernel {kernel!r} missing from flops_per_point"
                )
            for fname in self.kernel_fields[kernel]:
                if fname not in self.fields:
                    raise ConfigurationError(
                        f"kernel {kernel!r} touches unknown field {fname!r}"
                    )


class CustomApplication(Benchmark):
    """A :class:`~repro.npb.base.Benchmark` built from a :class:`CustomSpec`."""

    def __init__(self, spec: CustomSpec, nprocs: int):
        spec.validate()
        if nprocs != spec.grid.size:
            raise ConfigurationError(
                f"spec grid has {spec.grid.size} ranks, requested {nprocs}"
            )
        self.spec = spec
        self.name = spec.name
        # Mirror Benchmark.__init__ without the NPB problem-size lookup.
        self.size = ProblemSize(
            benchmark=spec.name,
            problem_class="CUSTOM",
            nx=spec.nx,
            ny=spec.ny,
            nz=spec.nz,
            iterations=spec.iterations,
        )
        self.nprocs = nprocs
        self.grid = spec.grid
        from repro.npb.base import Layout

        self.layout = Layout(self.size, self.grid)
        self._regions = {}
        self._kernels = {}
        self._build_kernels()

    # -- Benchmark interface ---------------------------------------------------

    def _make_grid(self, nprocs: int) -> CartGrid:  # pragma: no cover
        return self.spec.grid

    @property
    def loop_kernel_names(self) -> tuple[str, ...]:
        return self.spec.loop_kernels

    @property
    def pre_kernel_names(self) -> tuple[str, ...]:
        return self.spec.pre_kernels

    @property
    def post_kernel_names(self) -> tuple[str, ...]:
        return self.spec.post_kernels

    def field_bytes_per_point(self) -> dict[str, int]:
        return dict(self.spec.fields)

    def kernel_fields(self) -> dict[str, tuple[str, ...]]:
        return {k: tuple(v) for k, v in self.spec.kernel_fields.items()}

    # -- kernel construction ------------------------------------------------------

    def _build_kernels(self) -> None:
        for index, kernel in enumerate(self.spec.all_kernels()):
            self._register(kernel, self._make_body(kernel, index))

    def _make_body(self, kernel: str, index: int):
        halo = self.spec.halo_bytes_per_point.get(kernel, 0)
        tag = _HALO_TAG_BASE + index

        def body(ctx: RankContext) -> Generator[Event, Any, None]:
            if halo:
                yield from self.exchange_faces(ctx, halo, halo, tag)
            fields = self.spec.kernel_fields[kernel]
            regions = [
                (
                    self.region(ctx.rank, fname),
                    None,
                    fname == fields[-1],  # last listed field is written
                )
                for fname in fields
            ]
            flops = self.spec.flops_per_point[kernel] * self.layout.local_points(
                ctx.rank
            )
            yield ctx.work(flops, regions)

        return body
