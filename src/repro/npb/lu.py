"""LU work-alike: SSOR with diagonal wavefront pipelining.

The paper's ten-kernel decomposition (§4.3)::

    INITIALIZATION  ERHS  SSOR_INIT |                        (pre, once)
    SSOR_ITER  SSOR_LT  SSOR_UT  SSOR_RS |                   (the loop)
    ERROR  PINTGR  FINAL                                     (post, once)

LU requires a power-of-two process count; the grid is halved "alternately
x and then y", giving pencil partitions. The lower/upper triangular solves
sweep diagonally: each rank processes one z-plane at a time, receiving
boundary data from its west/north neighbors before computing a plane and
forwarding to east/south (reversed for the upper sweep). Communication is
"a relatively large number of small communications of five words each" —
modelled as one *burst* per plane per neighbor with one 5-word message per
boundary point, so the simulated cost stays latency-dominated exactly as
the paper stresses, while the event count stays tractable.

The Jacobian blocks (``jac``) are plane-sized scratch shared between
SSOR_LT and SSOR_UT, mirroring NPB-LU's a/b/c/d arrays — a strong
constructive-coupling channel between the two sweeps.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.npb import workloads as w
from repro.npb.base import Benchmark, staged_memory
from repro.simmachine.engine import Event
from repro.simmachine.memory import DataRegion
from repro.simmachine.process import RankContext
from repro.simmpi.topology import CartGrid, pow2_grid_shape

__all__ = ["LU"]

_TAG_ERHS = 30
_TAG_LT_X = 31
_TAG_LT_Y = 32
_TAG_UT_X = 33
_TAG_UT_Y = 34
_TAG_RS = 35


class LU(Benchmark):
    """The LU benchmark bound to a problem class and process count."""

    name = "LU"

    @property
    def loop_kernel_names(self) -> tuple[str, ...]:
        return ("SSOR_ITER", "SSOR_LT", "SSOR_UT", "SSOR_RS")

    @property
    def pre_kernel_names(self) -> tuple[str, ...]:
        return ("INITIALIZATION", "ERHS", "SSOR_INIT")

    @property
    def post_kernel_names(self) -> tuple[str, ...]:
        return ("ERROR", "PINTGR", "FINAL")

    def field_bytes_per_point(self) -> dict[str, int]:
        return dict(w.LU_FIELD_BYTES)

    def kernel_fields(self) -> dict[str, tuple[str, ...]]:
        return {
            "INITIALIZATION": ("u", "rsd", "aux"),
            "ERHS": ("u", "frct"),
            "SSOR_INIT": ("rsd",),
            "SSOR_ITER": ("rsd",),
            "SSOR_LT": ("u", "rsd", "jac"),
            "SSOR_UT": ("u", "rsd", "jac"),
            "SSOR_RS": ("frct", "u", "rsd"),
            "ERROR": ("u",),
            "PINTGR": ("u",),
            "FINAL": ("rsd",),
        }

    def _make_grid(self, nprocs: int) -> CartGrid:
        return CartGrid(*pow2_grid_shape(nprocs))

    def _build_kernels(self) -> None:
        self._register("INITIALIZATION", self._initialization)
        self._register("ERHS", self._erhs)
        self._register("SSOR_INIT", self._ssor_init)
        self._register("SSOR_ITER", self._ssor_iter)
        self._register("SSOR_LT", self._make_sweep(lower=True))
        self._register("SSOR_UT", self._make_sweep(lower=False))
        self._register("SSOR_RS", self._ssor_rs)
        self._register("ERROR", self._error)
        self._register("PINTGR", self._pintgr)
        self._register("FINAL", self._final)

    def _flops(self, ctx: RankContext, kernel: str) -> float:
        return w.LU_FLOPS_PER_POINT[kernel] * self.layout.local_points(ctx.rank)

    def jac_region(self, rank: int) -> DataRegion:
        """Plane-sized Jacobian scratch (NPB-LU's a/b/c/d arrays)."""
        key = (rank, "jac")
        reg = self._regions.get(key)
        if reg is None:
            nx, ny, _nz = self.layout.local_dims(rank)
            nbytes = w.LU_FIELD_BYTES["jac"] * nx * ny
            reg = self._regions[key] = DataRegion("jac", nbytes)
        return reg

    def region(self, rank: int, field: str) -> DataRegion:
        # ``jac`` is plane-sized, unlike the full-volume fields.
        if field == "jac":
            return self.jac_region(rank)
        return super().region(rank, field)

    def footprint_bytes(self, rank: int) -> int:
        per_point = self.field_bytes_per_point()
        pts = self.layout.local_points(rank)
        nx, ny, _nz = self.layout.local_dims(rank)
        total = sum(b for f, b in per_point.items() if f != "jac") * pts
        return total + per_point["jac"] * nx * ny

    # -- pre kernels ----------------------------------------------------------

    def _initialization(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "INITIALIZATION"),
            [
                (self.region(r, "u"), None, True),
                (self.region(r, "rsd"), None, True),
                (self.region(r, "aux"), None, True),
            ],
        )
        yield from ctx.comm.barrier()

    def _erhs(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield from self.exchange_faces(
            ctx, w.LU_FACE_BYTES, w.LU_FACE_BYTES, _TAG_ERHS, depth=1
        )
        yield ctx.work(
            self._flops(ctx, "ERHS"),
            [
                (self.region(r, "u"), None, False),
                (self.region(r, "frct"), None, True),
            ],
        )

    def _ssor_init(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "SSOR_INIT"),
            [(self.region(r, "rsd"), None, True)],
        )
        yield from ctx.comm.barrier()

    # -- loop kernels -----------------------------------------------------------

    def _ssor_iter(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        # Scale the residual by omega*dt (rsd read-modify-write).
        yield ctx.work(
            self._flops(ctx, "SSOR_ITER"),
            [(self.region(r, "rsd"), None, True)],
        )

    def _make_sweep(self, lower: bool):
        kernel = "SSOR_LT" if lower else "SSOR_UT"
        tag_x = _TAG_LT_X if lower else _TAG_UT_X
        tag_y = _TAG_LT_Y if lower else _TAG_UT_Y

        def sweep(ctx: RankContext) -> Generator[Event, Any, None]:
            r = ctx.rank
            nx, ny, nz = self.layout.local_dims(r)
            comm = ctx.comm
            # Lower sweep flows corner (0,0) -> (px-1, py-1); upper reversed.
            into = -1 if lower else +1
            outof = +1 if lower else -1
            dep_x = self.grid.neighbor(r, 0, into)
            dep_y = self.grid.neighbor(r, 1, into)
            out_x = self.grid.neighbor(r, 0, outof)
            out_y = self.grid.neighbor(r, 1, outof)
            regions = [
                (self.region(r, "u"), None, False),
                (self.region(r, "rsd"), None, True),
                (self.jac_region(r), None, True),
            ]
            per_plane_mem = staged_memory(ctx, regions, nz)
            per_plane_flops = self._flops(ctx, kernel) / nz
            msg = w.LU_PIPELINE_MESSAGE_BYTES
            for _k in range(nz):
                requests = []
                if dep_x is not None:
                    requests.append(comm.irecv(dep_x, tag_x))
                if dep_y is not None:
                    requests.append(comm.irecv(dep_y, tag_y))
                if requests:
                    yield from comm.waitall(requests)
                yield ctx.sim.timeout(
                    ctx.compute_seconds(per_plane_flops) + per_plane_mem
                )
                if out_x is not None:
                    # One 5-word message per boundary point, as a burst.
                    yield from comm.send(out_x, msg * ny, tag_x, messages=ny)
                if out_y is not None:
                    yield from comm.send(out_y, msg * nx, tag_y, messages=nx)

        return sweep

    def _ssor_rs(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        # Update the variables and recompute the RHS for the next iteration.
        yield from self.exchange_faces(
            ctx, w.LU_FACE_BYTES, w.LU_FACE_BYTES, _TAG_RS, depth=1
        )
        yield ctx.work(
            self._flops(ctx, "SSOR_RS"),
            [
                (self.region(r, "frct"), None, False),
                (self.region(r, "u"), None, True),
                (self.region(r, "rsd"), None, True),
            ],
        )
        # Newton-iteration residual norms.
        yield from ctx.comm.allreduce(0.0, nbytes=5 * w.DOUBLE)

    # -- post kernels -------------------------------------------------------------

    def _error(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "ERROR"),
            [(self.region(r, "u"), None, False)],
        )
        yield from ctx.comm.allreduce(0.0, nbytes=5 * w.DOUBLE)

    def _pintgr(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        # Surface integral over a sub-volume: touches a fraction of u.
        yield ctx.work(
            self._flops(ctx, "PINTGR"),
            [(self.region(r, "u"), self.region(r, "u").nbytes // 4, False)],
        )
        yield from ctx.comm.allreduce(0.0, nbytes=3 * w.DOUBLE)

    def _final(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "FINAL"),
            [(self.region(r, "rsd"), None, False)],
        )
        yield from ctx.comm.barrier()
