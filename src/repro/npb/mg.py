"""MG (Multigrid) work-alike — a library extension beyond the paper.

NPB MG applies V-cycles of a simple multigrid solver to a 3-D Poisson
problem. Its coupling profile is unlike BT/SP/LU's: each kernel walks the
*grid hierarchy*, and coarse levels exchange tiny halo messages whose cost
is pure latency — so at scale the V-cycle's lower half is communication-
bound while the finest level is memory-bound. Decomposition::

    INITIALIZATION | RESID  RPRJ3  PSINV  INTERP | FINAL
                     \\_________ one V-cycle ____/

Kernels walk the levels internally (RESID at the finest level only; RPRJ3
fine→coarse; PSINV smooths every level coarse→fine; INTERP coarse→fine),
with a depth-1 halo exchange per level visited.

Simplifications (documented): every rank keeps a share of every level
(NPB retires ranks below a coarsening threshold), and each level's data is
modelled as the leading slice of the hierarchical field region — which
makes coarse levels the hottest cache residents, as on real machines.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigurationError
from repro.npb.base import Benchmark
from repro.simmachine.engine import Event
from repro.simmachine.process import RankContext
from repro.simmpi.topology import CartGrid, pow2_grid_shape

__all__ = ["MG"]

DOUBLE = 8
_TAG_BASE = 50

#: Flops per finest-grid point per kernel invocation (NPB MG class A is
#: ~3.9 Gflop over 4 iterations of 256^3 => ~58 flop/point/iteration).
MG_FLOPS_PER_POINT = {
    "INITIALIZATION": 20.0,   # zran3 + setup
    "RESID": 21.0,            # 27-point residual at the finest level
    "RPRJ3": 9.0,             # restriction, summed over levels (geometric)
    "PSINV": 19.0,            # smoothing, summed over levels
    "INTERP": 9.0,            # prolongation, summed over levels
    "FINAL": 5.0,             # L2 norm
}

#: The hierarchy holds sum_l (1/8)^l ~ 8/7 of the finest grid per field.
HIERARCHY_FACTOR = 8.0 / 7.0


class MG(Benchmark):
    """The MG benchmark bound to a problem class and process count."""

    name = "MG"

    @property
    def loop_kernel_names(self) -> tuple[str, ...]:
        return ("RESID", "RPRJ3", "PSINV", "INTERP")

    @property
    def pre_kernel_names(self) -> tuple[str, ...]:
        return ("INITIALIZATION",)

    @property
    def post_kernel_names(self) -> tuple[str, ...]:
        return ("FINAL",)

    def field_bytes_per_point(self) -> dict[str, int]:
        # Per finest-grid point; the hierarchy factor covers all levels.
        per = int(round(DOUBLE * HIERARCHY_FACTOR))
        return {"u": per, "v": DOUBLE, "r": per}

    def kernel_fields(self) -> dict[str, tuple[str, ...]]:
        return {
            "INITIALIZATION": ("v", "u", "r"),
            "RESID": ("u", "v", "r"),
            "RPRJ3": ("r",),
            "PSINV": ("r", "u"),
            "INTERP": ("u",),
            "FINAL": ("r",),
        }

    def _make_grid(self, nprocs: int) -> CartGrid:
        if nprocs & (nprocs - 1):
            raise ConfigurationError(
                f"MG requires a power-of-two number of processes, got {nprocs}"
            )
        return CartGrid(*pow2_grid_shape(nprocs))

    @property
    def levels(self) -> int:
        """Hierarchy depth: halve the finest grid down to 4 points/axis."""
        n = self.size.nx
        depth = 0
        while n >= 8:
            n //= 2
            depth += 1
        return max(1, depth)

    def _flops(self, ctx: RankContext, kernel: str) -> float:
        return MG_FLOPS_PER_POINT[kernel] * self.layout.local_points(ctx.rank)

    # -- level walking ------------------------------------------------------------

    def _level_exchange(
        self, ctx: RankContext, level: int, tag: int
    ) -> Generator[Event, Any, None]:
        """Depth-1 halo exchange on level ``level`` (0 = finest)."""
        comm = ctx.comm
        nx, ny, nz = self.layout.local_dims(ctx.rank)
        shrink = 2**level
        lx = max(1, nx // shrink)
        ly = max(1, ny // shrink)
        lz = max(1, nz // shrink)
        requests = []
        for dim, step in ((0, -1), (0, +1), (1, -1), (1, +1)):
            peer = self.grid.neighbor(ctx.rank, dim, step)
            if peer is None:
                continue
            face_points = (ly if dim == 0 else lx) * lz
            nbytes = DOUBLE * face_points
            requests.append(comm.irecv(peer, tag))
            requests.append(comm.isend(peer, nbytes, tag))
        if requests:
            yield from comm.waitall(requests)

    def _walk_levels(
        self,
        ctx: RankContext,
        kernel: str,
        tag: int,
        levels: range,
        finest_only: bool = False,
    ) -> Generator[Event, Any, None]:
        """Run a kernel's per-level work: exchange + compute at each level.

        Flops and memory traffic are dominated by the finest level touched
        (geometric series); each visited level still pays its own halo
        latency — the mechanism that makes coarse levels latency-bound.
        """
        r = ctx.rank
        fields = self.kernel_fields()[kernel]
        level_list = [0] if finest_only else (list(levels) or [0])
        # Bulk memory traffic: the hierarchy slice this kernel streams.
        regions = []
        for field in fields:
            region = self.region(r, field)
            share = region.nbytes if not finest_only else int(
                region.nbytes / HIERARCHY_FACTOR
            )
            regions.append((region, share, field == fields[-1]))
        mem_per_level = ctx.touch_regions(regions) / len(level_list)
        flops_total = self._flops(ctx, kernel)
        # Geometric flop split: level l does (1/8)^l of the finest's work.
        weights = [8.0 ** -lv for lv in level_list]
        scale = sum(weights)
        for level, weight in zip(level_list, weights):
            yield from self._level_exchange(ctx, level, tag + level)
            yield ctx.sim.timeout(
                ctx.compute_seconds(flops_total * weight / scale)
                + mem_per_level
            )

    # -- kernels ----------------------------------------------------------------

    def _build_kernels(self) -> None:
        self._register("INITIALIZATION", self._initialization)
        self._register("RESID", self._resid)
        self._register("RPRJ3", self._rprj3)
        self._register("PSINV", self._psinv)
        self._register("INTERP", self._interp)
        self._register("FINAL", self._final)

    def _initialization(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "INITIALIZATION"),
            [
                (self.region(r, "v"), None, True),
                (self.region(r, "u"), None, True),
                (self.region(r, "r"), None, True),
            ],
        )
        yield from ctx.comm.barrier()

    def _resid(self, ctx: RankContext) -> Generator[Event, Any, None]:
        yield from self._walk_levels(
            ctx, "RESID", _TAG_BASE + 0, range(1), finest_only=True
        )

    def _rprj3(self, ctx: RankContext) -> Generator[Event, Any, None]:
        # Restriction: fine -> coarse, one exchange per level descended.
        yield from self._walk_levels(
            ctx, "RPRJ3", _TAG_BASE + 10, range(1, self.levels)
        )

    def _psinv(self, ctx: RankContext) -> Generator[Event, Any, None]:
        # Smoothing at every level, coarse -> fine.
        yield from self._walk_levels(
            ctx, "PSINV", _TAG_BASE + 20, range(self.levels - 1, -1, -1)
        )

    def _interp(self, ctx: RankContext) -> Generator[Event, Any, None]:
        # Prolongation: coarse -> fine.
        yield from self._walk_levels(
            ctx, "INTERP", _TAG_BASE + 40, range(self.levels - 2, -1, -1)
        )

    def _final(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "FINAL"),
            [(self.region(r, "r"), None, False)],
        )
        yield from ctx.comm.allreduce(0.0, nbytes=DOUBLE)
