"""Host-machine mini-app: real coupling values of real NumPy kernels.

Everything else in the repository measures the *simulated* machine. This
module closes the loop by applying the paper's protocol to actual code on
the actual host CPU: an ADI-style diffusion solver decomposed into three
kernels (the x/y/z sweeps), timed with ``perf_counter`` in isolation and in
chains, with genuine hardware cache effects producing the coupling values.

The kernels share the field array the way BT's solves share ``u``/``rhs``,
so adjacent sweeps reuse each other's resident data — constructive coupling
on any machine whose cache can hold a meaningful fraction of the field.

Host timings are inherently noisy; results are for demonstration and the
tests only assert well-formedness, not specific values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.coupling import CouplingSet
from repro.core.kernel import ControlFlow
from repro.errors import ConfigurationError
from repro.npb.numerics.grids import Grid3D
from repro.npb.numerics.tridiag import solve_lines_along_axis

__all__ = ["HostMeasurement", "HostMiniApp"]


@dataclass(frozen=True)
class HostMeasurement:
    """Host-clock measurement of one kernel chain."""

    kernels: tuple[str, ...]
    mean: float
    samples: tuple[float, ...]


class HostMiniApp:
    """Three-kernel ADI sweep application running on the host CPU."""

    def __init__(self, n: int = 64, dt: float = 1e-3, repetitions: int = 5):
        if n < 8:
            raise ConfigurationError(f"grid size must be >= 8, got {n}")
        if repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        self.grid = Grid3D(n, n, n)
        self.dt = dt
        self.repetitions = repetitions
        rng = np.random.default_rng(0)
        self._field = rng.standard_normal(self.grid.shape)
        self.flow = ControlFlow(["X_SWEEP", "Y_SWEEP", "Z_SWEEP"])
        self._kernels: dict[str, Callable[[np.ndarray], np.ndarray]] = {
            "X_SWEEP": self._make_sweep(0),
            "Y_SWEEP": self._make_sweep(1),
            "Z_SWEEP": self._make_sweep(2),
        }

    def _make_sweep(self, axis: int):
        h = self.grid.spacing[axis]
        r = self.dt / h**2

        def sweep(field: np.ndarray) -> np.ndarray:
            return solve_lines_along_axis(field, axis, -r, 1.0 + 2.0 * r, -r)

        return sweep

    # -- measurement -----------------------------------------------------------

    def _run_chain_once(self, kernels: Sequence[str]) -> float:
        field = self._field.copy()  # cold-ish start: fresh allocation
        # repro: ignore[REP001] — HostMiniApp measures *real host CPU* time
        t0 = time.perf_counter()
        for name in kernels:
            field = self._kernels[name](field)
        elapsed = time.perf_counter() - t0  # repro: ignore[REP001] — host clock
        # Keep the result alive so the work cannot be optimized away.
        self._sink = float(field[0, 0, 0])
        return elapsed

    def measure(self, kernels: Sequence[str]) -> HostMeasurement:
        """Median-of-repetitions host timing of a kernel chain."""
        names = tuple(kernels)
        for name in names:
            if name not in self._kernels:
                raise ConfigurationError(f"unknown kernel {name!r}")
        self._run_chain_once(names)  # warmup
        samples = tuple(
            self._run_chain_once(names) for _ in range(self.repetitions)
        )
        ordered = sorted(samples)
        return HostMeasurement(names, ordered[len(ordered) // 2], samples)

    def coupling_set(self, chain_length: int = 2) -> CouplingSet:
        """Measure isolated kernels + chains and build the coupling set."""
        isolated = {k: self.measure((k,)).mean for k in self.flow.names}
        chains = {
            w: self.measure(w).mean for w in self.flow.windows(chain_length)
        }
        return CouplingSet.from_performances(
            self.flow, chain_length, chains, isolated
        )

    def application_time(self, iterations: int = 10) -> float:
        """Host time for ``iterations`` full x->y->z sweeps."""
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        field = self._field.copy()
        # repro: ignore[REP001] — deliberate wall-clock: times the real machine
        t0 = time.perf_counter()
        for _ in range(iterations):
            for name in self.flow.names:
                field = self._kernels[name](field)
        self._sink = float(field[0, 0, 0])
        return time.perf_counter() - t0  # repro: ignore[REP001] — host clock
