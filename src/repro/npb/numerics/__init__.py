"""Executable numerical methods behind the NPB work-alikes.

The simulator charges kernels by operation counts; this subpackage contains
the *actual math* those counts describe, in NumPy:

* :mod:`repro.npb.numerics.tridiag` — 5x5 block-tridiagonal solves (BT's
  per-line systems) and scalar pentadiagonal solves (SP's);
* :mod:`repro.npb.numerics.ssor` — symmetric successive over-relaxation
  with lower/upper triangular sweeps (LU's SSOR iteration);
* :mod:`repro.npb.numerics.grids` — 3D grids, manufactured solutions, and
  ADI-style sweep drivers that string the line solvers together the way
  BT/SP do;
* :mod:`repro.npb.numerics.blockadi` — the coupled 5-component (5x5-block)
  ADI structure of BT, executable;
* :mod:`repro.npb.numerics.krylov` — conjugate gradient with CG's exact
  kernel decomposition, plus a NAS-style random SPD sparse matrix;
* :mod:`repro.npb.numerics.multigrid` — a geometric V-cycle with MG's
  kernel structure and mesh-independent convergence.

Everything is validated against SciPy (tests) and runnable end-to-end at
class-S scale (:mod:`repro.npb.verify`).
"""

from repro.npb.numerics.grids import (
    Grid3D,
    adi_diffusion_step,
    laplacian_3d,
    manufactured_solution,
    residual_norm,
)
from repro.npb.numerics.blockadi import block_adi_step
from repro.npb.numerics.krylov import (
    CGResult,
    conjugate_gradient,
    nas_style_sparse_matrix,
)
from repro.npb.numerics.multigrid import (
    mg_solve,
    prolong_field,
    restrict_field,
    v_cycle,
)
from repro.npb.numerics.ssor import ssor_solve, ssor_sweep
from repro.npb.numerics.tridiag import (
    solve_block_tridiagonal,
    solve_lines_along_axis,
    solve_pentadiagonal,
    solve_tridiagonal,
)

__all__ = [
    "CGResult",
    "Grid3D",
    "block_adi_step",
    "conjugate_gradient",
    "mg_solve",
    "nas_style_sparse_matrix",
    "prolong_field",
    "restrict_field",
    "v_cycle",
    "adi_diffusion_step",
    "laplacian_3d",
    "manufactured_solution",
    "residual_norm",
    "solve_block_tridiagonal",
    "solve_lines_along_axis",
    "solve_pentadiagonal",
    "solve_tridiagonal",
    "ssor_solve",
    "ssor_sweep",
]
