"""Block-coupled ADI: the 5-component structure of BT, executable.

BT solves systems that are "block tri-diagonal with 5x5 blocks" because
the five flow variables couple at each grid point. This module implements
that structure for real on a model problem: a system of ``b`` diffusing
fields coupled pointwise by a constant matrix ``K``::

    du/dt = kappa * Laplacian(u) + K @ u      (u has b components)

One Douglas-style ADI step solves, along each axis, block-tridiagonal
line systems with blocks ``(1 + 2r) I - dt/3 K`` on the diagonal and
``-r I`` off it — built and solved by
:func:`repro.npb.numerics.tridiag.solve_block_tridiagonal`, the same
routine validated against dense solves.

Tests verify two exact limits: with ``K = 0`` every component reproduces
the scalar ADI step, and with diagonal ``K`` the components decouple into
independent scalar problems with growth factors known in closed form.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.numerics.grids import Grid3D
from repro.npb.numerics.tridiag import solve_block_tridiagonal

__all__ = ["block_adi_step", "coupled_operator_norm"]


def _solve_block_lines(
    field: np.ndarray, axis: int, r: float, shift: np.ndarray
) -> np.ndarray:
    """Solve ``((1+2r)I - shift) x_i - r I (x_{i-1} + x_{i+1}) = rhs_i``
    along ``axis`` for every line of a (..., b)-component field."""
    b = field.shape[-1]
    moved = np.moveaxis(field, axis, 0)  # (n, ..., b)
    n = moved.shape[0]
    eye = np.eye(b)
    diag_block = (1.0 + 2.0 * r) * eye - shift
    off_block = -r * eye
    lower = np.tile(off_block, (n, 1, 1))
    upper = np.tile(off_block, (n, 1, 1))
    diag = np.tile(diag_block, (n, 1, 1))
    lower[0] = 0.0
    upper[-1] = 0.0
    flat = moved.reshape(n, -1, b)
    out = np.empty_like(flat)
    for line in range(flat.shape[1]):
        out[:, line, :] = solve_block_tridiagonal(
            lower, diag, upper, flat[:, line, :]
        )
    return np.moveaxis(out.reshape(moved.shape), 0, axis)


def block_adi_step(
    u: np.ndarray,
    grid: Grid3D,
    dt: float,
    coupling: np.ndarray,
    kappa: float = 1.0,
) -> np.ndarray:
    """One implicit ADI step of the coupled b-component diffusion system.

    ``u`` has shape ``grid.shape + (b,)``; ``coupling`` is the pointwise
    b x b coupling matrix ``K``. The ``dt/3 K`` term is split evenly over
    the three directional solves (a standard splitting; exactness in the
    diagonal-K limit is what the tests pin down).
    """
    if u.ndim != 4 or u.shape[:3] != grid.shape:
        raise ConfigurationError(
            f"field must have shape {grid.shape} + (b,), got {u.shape}"
        )
    b = u.shape[-1]
    coupling = np.asarray(coupling, dtype=np.float64)
    if coupling.shape != (b, b):
        raise ConfigurationError(
            f"coupling must be ({b}, {b}), got {coupling.shape}"
        )
    if dt <= 0 or kappa <= 0:
        raise ConfigurationError("dt and kappa must be > 0")
    work = u.astype(np.float64).copy()
    shift = (dt / 3.0) * coupling
    for axis, h in enumerate(grid.spacing):
        r = kappa * dt / h**2
        work = _solve_block_lines(work, axis, r, shift)
    return work


def coupled_operator_norm(u: np.ndarray) -> float:
    """Max-norm over all components (the stability functional the tests use)."""
    return float(np.max(np.abs(u)))
