"""3D grids, manufactured solutions, and ADI-style sweep drivers.

BT and SP both advance a 3D field by solving per-line implicit systems
"first in the x dimension, then in the y dimension, and finally in the z
dimension". :func:`adi_diffusion_step` reproduces exactly that structure —
a Douglas-style alternating-direction-implicit step for 3D diffusion —
using the line solvers from :mod:`repro.npb.numerics.tridiag`, so the
executable numerics have the same sweep skeleton as the simulated kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.numerics.tridiag import solve_lines_along_axis

__all__ = [
    "Grid3D",
    "manufactured_solution",
    "laplacian_3d",
    "residual_norm",
    "adi_diffusion_step",
]


@dataclass(frozen=True)
class Grid3D:
    """A uniform cubic grid on the unit cube with Dirichlet boundaries."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        for name, n in (("nx", self.nx), ("ny", self.ny), ("nz", self.nz)):
            if n < 3:
                raise ConfigurationError(f"{name} must be >= 3, got {n}")

    @property
    def shape(self) -> tuple[int, int, int]:
        """Interior point counts per axis."""
        return (self.nx, self.ny, self.nz)

    @property
    def spacing(self) -> tuple[float, float, float]:
        """Grid spacings (interior points; boundaries at 0 and 1)."""
        return (
            1.0 / (self.nx + 1),
            1.0 / (self.ny + 1),
            1.0 / (self.nz + 1),
        )

    def coordinates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Meshgrid arrays of the interior point coordinates."""
        hx, hy, hz = self.spacing
        x = hx * np.arange(1, self.nx + 1)
        y = hy * np.arange(1, self.ny + 1)
        z = hz * np.arange(1, self.nz + 1)
        return np.meshgrid(x, y, z, indexing="ij")


def manufactured_solution(grid: Grid3D) -> np.ndarray:
    """``sin(pi x) sin(pi y) sin(pi z)`` — vanishes on the boundary."""
    x, y, z = grid.coordinates()
    return np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)


def laplacian_3d(u: np.ndarray, grid: Grid3D) -> np.ndarray:
    """Second-order 7-point Laplacian with homogeneous Dirichlet walls."""
    if u.shape != grid.shape:
        raise ConfigurationError(
            f"field shape {u.shape} != grid shape {grid.shape}"
        )
    hx, hy, hz = grid.spacing
    out = np.zeros_like(u, dtype=np.float64)
    pad = np.pad(u, 1)
    out += (pad[2:, 1:-1, 1:-1] - 2 * u + pad[:-2, 1:-1, 1:-1]) / hx**2
    out += (pad[1:-1, 2:, 1:-1] - 2 * u + pad[1:-1, :-2, 1:-1]) / hy**2
    out += (pad[1:-1, 1:-1, 2:] - 2 * u + pad[1:-1, 1:-1, :-2]) / hz**2
    return out


def residual_norm(u: np.ndarray, rhs: np.ndarray, grid: Grid3D) -> float:
    """L2 norm of ``rhs - Laplacian(u)`` (the verification quantity)."""
    return float(np.linalg.norm(rhs - laplacian_3d(u, grid)))


def adi_diffusion_step(
    u: np.ndarray, grid: Grid3D, dt: float, kappa: float = 1.0
) -> np.ndarray:
    """One alternating-direction-implicit diffusion step (Douglas splitting).

    Advances ``du/dt = kappa * Laplacian(u)`` by ``dt`` with three
    one-dimensional implicit solves — the x, y, z sweep structure of
    BT/SP. Unconditionally stable; tests check decay of the manufactured
    mode at the analytic rate.
    """
    if dt <= 0 or kappa <= 0:
        raise ConfigurationError("dt and kappa must be > 0")
    if u.shape != grid.shape:
        raise ConfigurationError(
            f"field shape {u.shape} != grid shape {grid.shape}"
        )
    hx, hy, hz = grid.spacing
    work = u.astype(np.float64).copy()
    for axis, h in ((0, hx), (1, hy), (2, hz)):
        r = kappa * dt / h**2
        # (I - r * D2_axis) u_new = u_old, with D2 the 1-D second
        # difference: tridiagonal (-r, 1 + 2r, -r).
        work = solve_lines_along_axis(work, axis, -r, 1.0 + 2.0 * r, -r)
    return work
