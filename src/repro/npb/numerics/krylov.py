"""Conjugate gradient — the executable math behind the CG work-alike.

A matrix-free CG solver with exactly the kernel decomposition the
simulated benchmark models (mat-vec, dot products, vector updates,
residual + direction update), so the op-count formulas in
:mod:`repro.npb.cg` trace to real code. Tested against
``scipy.sparse.linalg.cg`` and against the theoretical guarantee of exact
convergence in ``n`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CGResult", "conjugate_gradient", "nas_style_sparse_matrix"]

MatVec = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CGResult:
    """Outcome of a conjugate-gradient solve."""

    x: np.ndarray
    iterations: int
    residual_norms: tuple[float, ...]
    converged: bool


def conjugate_gradient(
    matvec: MatVec,
    rhs: np.ndarray,
    tolerance: float = 1e-10,
    max_iterations: int | None = None,
) -> CGResult:
    """Solve ``A x = rhs`` for symmetric positive-definite ``A``.

    The loop body mirrors the benchmark's four kernels: MATVEC
    (``q = A p``), DOT_PQ (``alpha = rho / p.q``), UPDATE_ZR
    (``x += alpha p; r -= alpha q``), RESID_P (``rho' = r.r;
    p = r + beta p``).
    """
    if rhs.ndim != 1:
        raise ConfigurationError(f"rhs must be a vector, got shape {rhs.shape}")
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be > 0, got {tolerance}")
    n = rhs.shape[0]
    if max_iterations is None:
        max_iterations = 2 * n
    x = np.zeros_like(rhs, dtype=np.float64)
    r = rhs.astype(np.float64).copy()
    p = r.copy()
    rho = float(r @ r)
    norms = [float(np.sqrt(rho))]
    target = tolerance * max(norms[0], 1e-300)
    iterations = 0
    while norms[-1] > target and iterations < max_iterations:
        q = matvec(p)                      # MATVEC
        pq = float(p @ q)                  # DOT_PQ
        if pq <= 0:
            raise ConfigurationError(
                "operator is not positive definite (p.Ap <= 0)"
            )
        alpha = rho / pq
        x += alpha * p                     # UPDATE_ZR
        r -= alpha * q
        rho_new = float(r @ r)             # RESID_P
        p = r + (rho_new / rho) * p
        rho = rho_new
        norms.append(float(np.sqrt(rho)))
        iterations += 1
    return CGResult(
        x=x,
        iterations=iterations,
        residual_norms=tuple(norms),
        converged=norms[-1] <= target,
    )


def nas_style_sparse_matrix(
    n: int, nnz_per_row: int, seed: int = 0, shift: float = 10.0
) -> "np.ndarray | object":
    """A random SPD sparse matrix in the spirit of NPB CG's ``makea``.

    Built as ``shift * I + S S^T`` with ``S`` a random sparse pattern of
    ``nnz_per_row`` entries per row — symmetric positive definite by
    construction. Returns a ``scipy.sparse`` CSR matrix.
    """
    if n < 2 or nnz_per_row < 1 or nnz_per_row > n:
        raise ConfigurationError(
            f"invalid sparse spec n={n}, nnz_per_row={nnz_per_row}"
        )
    import scipy.sparse as sp

    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nnz_per_row)
    cols = rng.integers(0, n, size=n * nnz_per_row)
    vals = rng.standard_normal(n * nnz_per_row) / np.sqrt(nnz_per_row)
    s = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    return (shift * sp.identity(n) + s @ s.T).tocsr()
