"""Geometric multigrid V-cycle — the executable math behind the MG work-alike.

A textbook V-cycle for the 7-point operator of
:mod:`repro.npb.numerics.ssor`: damped-Jacobi smoothing, full-weighting-ish
restriction (averaging over 2x2x2 children), trilinear-ish prolongation
(nearest-parent injection with correction), and a recursive descent down to
a directly-smoothed coarsest level. The structure — resid, restrict, smooth
per level, interpolate — is exactly the kernel decomposition the simulated
MG benchmark models.

The headline property the tests pin down is *mesh-independent convergence*:
the residual contraction factor per V-cycle stays roughly constant as the
grid is refined, which is multigrid's raison d'être (and why NPB includes
it).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.numerics.ssor import apply_operator

__all__ = ["v_cycle", "mg_solve", "restrict_field", "prolong_field"]


def _smooth(
    u: np.ndarray, rhs: np.ndarray, diag: float, offdiag: float, sweeps: int
) -> None:
    """Damped-Jacobi smoothing, in place (omega = 0.8)."""
    omega = 0.8
    for _ in range(sweeps):
        residual = rhs - apply_operator(u, diag, offdiag)
        u += omega * residual / diag


def restrict_field(fine: np.ndarray) -> np.ndarray:
    """Average 2x2x2 children onto the coarse grid (dimensions halve)."""
    if any(s % 2 for s in fine.shape):
        raise ConfigurationError(
            f"restriction needs even dimensions, got {fine.shape}"
        )
    return 0.125 * (
        fine[0::2, 0::2, 0::2] + fine[1::2, 0::2, 0::2]
        + fine[0::2, 1::2, 0::2] + fine[1::2, 1::2, 0::2]
        + fine[0::2, 0::2, 1::2] + fine[1::2, 0::2, 1::2]
        + fine[0::2, 1::2, 1::2] + fine[1::2, 1::2, 1::2]
    )


def prolong_field(coarse: np.ndarray) -> np.ndarray:
    """Inject each coarse value into its 2x2x2 children (dimensions double)."""
    fine = np.empty(tuple(2 * s for s in coarse.shape), dtype=np.float64)
    for di in (0, 1):
        for dj in (0, 1):
            for dk in (0, 1):
                fine[di::2, dj::2, dk::2] = coarse
    return fine


def _coarse_operator(diag: float, offdiag: float) -> tuple[float, float]:
    """Galerkin-flavoured coarse coefficients for the 7-point operator.

    Injection-prolongation + averaging-restriction of ``diag*I - offdiag*N``
    keeps the stencil shape; the diagonal dominance margin is preserved by
    scaling both terms identically, so every level stays SPD.
    """
    return diag, offdiag


def v_cycle(
    u: np.ndarray,
    rhs: np.ndarray,
    diag: float,
    offdiag: float,
    pre_sweeps: int = 2,
    post_sweeps: int = 2,
    coarsest: int = 4,
) -> np.ndarray:
    """One V-cycle; returns the improved solution (input not modified)."""
    if u.shape != rhs.shape:
        raise ConfigurationError("u and rhs shapes differ")
    if min(u.shape) < 2:
        raise ConfigurationError(f"grid too small for a V-cycle: {u.shape}")
    work = u.astype(np.float64).copy()
    _smooth(work, rhs, diag, offdiag, pre_sweeps)          # PSINV (down)
    if min(u.shape) <= coarsest or any(s % 2 for s in u.shape):
        _smooth(work, rhs, diag, offdiag, 20)               # coarsest solve
        return work
    residual = rhs - apply_operator(work, diag, offdiag)    # RESID
    coarse_rhs = restrict_field(residual)                   # RPRJ3
    cd, co = _coarse_operator(diag, offdiag)
    coarse_u = np.zeros_like(coarse_rhs)
    coarse_u = v_cycle(
        coarse_u, coarse_rhs, cd, co, pre_sweeps, post_sweeps, coarsest
    )
    work += prolong_field(coarse_u)                         # INTERP
    _smooth(work, rhs, diag, offdiag, post_sweeps)          # PSINV (up)
    return work


def mg_solve(
    rhs: np.ndarray,
    diag: float,
    offdiag: float,
    cycles: int = 10,
) -> tuple[np.ndarray, list[float]]:
    """Run V-cycles from a zero guess; returns (solution, residual norms).

    The residual history records the norm after each cycle; the first
    entry is the initial residual (= ||rhs||).
    """
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
    if abs(diag) <= 6 * abs(offdiag):
        raise ConfigurationError("operator must be strictly diagonally dominant")
    u = np.zeros_like(rhs, dtype=np.float64)
    history = [float(np.linalg.norm(rhs))]
    for _ in range(cycles):
        u = v_cycle(u, rhs, diag, offdiag)
        residual = rhs - apply_operator(u, diag, offdiag)
        history.append(float(np.linalg.norm(residual)))
    return u, history
