"""Symmetric successive over-relaxation on a 7-point 3D stencil.

LU's core method: each iteration performs a lower-triangular sweep (points
visited in increasing lexicographic order, mirroring the diagonal wavefront)
followed by an upper-triangular sweep (decreasing order), with relaxation
factor ``omega`` (paper §4.3: "the ordering of point based operations
constituting the SSOR procedure proceeds on diagonals").

The implementation is matrix-free for the diffusion-like operator
``A = diag - offdiag * (sum of 6 neighbors)`` on a cubic grid with
homogeneous Dirichlet boundaries; plane-by-plane NumPy vectorization keeps
it usable at class-S scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ssor_sweep", "ssor_solve"]


def _check_field(u: np.ndarray) -> None:
    if u.ndim != 3:
        raise ConfigurationError(f"field must be 3-D, got shape {u.shape}")


def apply_operator(u: np.ndarray, diag: float, offdiag: float) -> np.ndarray:
    """Matrix-free ``A @ u`` for the 7-point operator (Dirichlet-0)."""
    _check_field(u)
    out = diag * u
    out[1:, :, :] -= offdiag * u[:-1, :, :]
    out[:-1, :, :] -= offdiag * u[1:, :, :]
    out[:, 1:, :] -= offdiag * u[:, :-1, :]
    out[:, :-1, :] -= offdiag * u[:, 1:, :]
    out[:, :, 1:] -= offdiag * u[:, :, :-1]
    out[:, :, :-1] -= offdiag * u[:, :, 1:]
    return out


def ssor_sweep(
    u: np.ndarray,
    rhs: np.ndarray,
    diag: float,
    offdiag: float,
    omega: float,
    lower: bool,
) -> None:
    """One triangular sweep, in place.

    ``lower=True`` visits z-planes bottom-up using already-updated
    neighbors below (a Gauss–Seidel/SOR forward sweep); ``lower=False`` is
    the mirrored backward sweep. Within a plane the i/j dependencies are
    honored line by line.
    """
    _check_field(u)
    if u.shape != rhs.shape:
        raise ConfigurationError("u and rhs shapes differ")
    if not 0 < omega < 2:
        raise ConfigurationError(f"omega must be in (0, 2), got {omega}")
    if diag <= 0:
        raise ConfigurationError(f"diag must be > 0, got {diag}")
    nx, ny, nz = u.shape
    krange = range(nz) if lower else range(nz - 1, -1, -1)
    irange = range(nx) if lower else range(nx - 1, -1, -1)
    for k in krange:
        for i in irange:
            # Gather the neighbor contributions for the whole j-line, then
            # do the j-direction recurrence as a scalar loop (true SOR
            # dependency), which is short (ny) and dominated by the
            # vectorized gathers.
            acc = rhs[i, :, k].astype(np.float64).copy()
            if i > 0:
                acc += offdiag * u[i - 1, :, k]
            if i < nx - 1:
                acc += offdiag * u[i + 1, :, k]
            if k > 0:
                acc += offdiag * u[i, :, k - 1]
            if k < nz - 1:
                acc += offdiag * u[i, :, k + 1]
            line = u[i, :, k]
            jrange = range(ny) if lower else range(ny - 1, -1, -1)
            for j in jrange:
                s = acc[j]
                if j > 0:
                    s += offdiag * line[j - 1]
                if j < ny - 1:
                    s += offdiag * line[j + 1]
                gs = s / diag
                line[j] = (1.0 - omega) * line[j] + omega * gs


def ssor_solve(
    rhs: np.ndarray,
    diag: float,
    offdiag: float,
    omega: float = 1.2,
    iterations: int = 20,
    u0: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, list[float]]:
    """Run SSOR iterations; returns ``(solution, residual_history)``.

    The residual history holds the L2 norm of ``rhs - A u`` after each
    full (lower + upper) iteration; for a diagonally dominant operator it
    decreases monotonically, which the tests assert.
    """
    _check_field(rhs)
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    if abs(diag) <= 6 * abs(offdiag):
        raise ConfigurationError(
            "operator must be strictly diagonally dominant "
            f"(|{diag}| <= 6|{offdiag}|)"
        )
    u = np.zeros_like(rhs, dtype=np.float64) if u0 is None else u0.astype(np.float64).copy()
    history: list[float] = []
    for _ in range(iterations):
        ssor_sweep(u, rhs, diag, offdiag, omega, lower=True)
        ssor_sweep(u, rhs, diag, offdiag, omega, lower=False)
        residual = rhs - apply_operator(u, diag, offdiag)
        history.append(float(np.linalg.norm(residual)))
    return u, history
