"""Banded line solvers: tridiagonal, block-tridiagonal (5x5), pentadiagonal.

These are the per-line systems BT and SP solve in each dimension: BT's are
"block tri-diagonal with 5x5 blocks", SP's are scalar pentadiagonal
(paper §4.1–4.2). All solvers use the Thomas-style forward elimination /
back substitution appropriate to their band structure, without pivoting —
the NPB systems are diagonally dominant by construction, and the tests
check the solvers against SciPy on such systems.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "solve_tridiagonal",
    "solve_block_tridiagonal",
    "solve_pentadiagonal",
    "solve_lines_along_axis",
]


def _check_1d(name: str, arr: np.ndarray, n: int) -> None:
    if arr.shape != (n,):
        raise ConfigurationError(f"{name} must have shape ({n},), got {arr.shape}")


def solve_tridiagonal(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve a scalar tridiagonal system by the Thomas algorithm.

    ``lower[0]`` and ``upper[-1]`` are ignored (outside the band). The
    right-hand side may have trailing dimensions; lines are solved for each
    trailing index simultaneously (vectorized back substitution).
    """
    n = diag.shape[0]
    if n == 0:
        raise ConfigurationError("empty tridiagonal system")
    _check_1d("lower", lower, n)
    _check_1d("upper", upper, n)
    if rhs.shape[0] != n:
        raise ConfigurationError(
            f"rhs first dimension must be {n}, got {rhs.shape[0]}"
        )
    cp = np.empty(n, dtype=np.float64)
    dp = np.empty_like(rhs, dtype=np.float64)
    if diag[0] == 0:
        raise ConfigurationError("zero pivot in tridiagonal solve")
    cp[0] = upper[0] / diag[0]
    dp[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * cp[i - 1]
        if denom == 0:
            raise ConfigurationError(f"zero pivot at row {i}")
        cp[i] = upper[i] / denom
        dp[i] = (rhs[i] - lower[i] * dp[i - 1]) / denom
    x = np.empty_like(dp)
    x[n - 1] = dp[n - 1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


def solve_block_tridiagonal(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve a block-tridiagonal system with ``b x b`` blocks (BT: b=5).

    Shapes: ``lower/diag/upper (n, b, b)``, ``rhs (n, b)``. Block Thomas:
    forward-eliminate with per-block LU solves, then back-substitute.
    """
    n, b, b2 = diag.shape
    if b != b2:
        raise ConfigurationError(f"diagonal blocks must be square, got {b}x{b2}")
    if lower.shape != (n, b, b) or upper.shape != (n, b, b):
        raise ConfigurationError("band shapes disagree with diagonal")
    if rhs.shape != (n, b):
        raise ConfigurationError(
            f"rhs must have shape ({n}, {b}), got {rhs.shape}"
        )
    # cp[i] = diag_hat[i]^-1 upper[i];  dp[i] = diag_hat[i]^-1 rhs_hat[i]
    cp = np.empty((n, b, b), dtype=np.float64)
    dp = np.empty((n, b), dtype=np.float64)
    cp[0] = np.linalg.solve(diag[0], upper[0])
    dp[0] = np.linalg.solve(diag[0], rhs[0])
    for i in range(1, n):
        dhat = diag[i] - lower[i] @ cp[i - 1]
        rhat = rhs[i] - lower[i] @ dp[i - 1]
        cp[i] = np.linalg.solve(dhat, upper[i])
        dp[i] = np.linalg.solve(dhat, rhat)
    x = np.empty((n, b), dtype=np.float64)
    x[n - 1] = dp[n - 1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] @ x[i + 1]
    return x


def solve_pentadiagonal(bands: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a scalar pentadiagonal system (SP's per-line systems).

    ``bands`` has shape ``(5, n)`` in LAPACK banded layout: rows are the
    2nd super-, 1st super-, main, 1st sub-, 2nd sub-diagonal, with the
    usual unused corner entries ignored. Elimination is the standard
    two-band forward sweep; no pivoting (diagonally dominant systems).
    """
    if bands.ndim != 2 or bands.shape[0] != 5:
        raise ConfigurationError(
            f"bands must have shape (5, n), got {bands.shape}"
        )
    n = bands.shape[1]
    if rhs.shape[0] != n:
        raise ConfigurationError(f"rhs length {rhs.shape[0]} != {n}")
    # Work on dense copies of the five diagonals.
    e = bands[4].astype(np.float64).copy()  # 2nd sub (e[i] multiplies x[i-2])
    c = bands[3].astype(np.float64).copy()  # 1st sub
    d = bands[2].astype(np.float64).copy()  # main
    a = bands[1].astype(np.float64).copy()  # 1st super (a[i] multiplies x[i+1])
    f = bands[0].astype(np.float64).copy()  # 2nd super
    b = rhs.astype(np.float64).copy()
    # LAPACK layout offsets: band row r holds coefficient of column j at
    # position j for row i = j - offset; translate to row-wise storage.
    up1 = np.zeros(n)
    up2 = np.zeros(n)
    lo1 = np.zeros(n)
    lo2 = np.zeros(n)
    up1[: n - 1] = a[1:]       # row i, column i+1
    up2[: n - 2] = f[2:]       # row i, column i+2
    lo1[1:] = c[: n - 1]       # row i, column i-1
    lo2[2:] = e[: n - 2]       # row i, column i-2
    dd = d.copy()
    bb = b.copy()
    for i in range(1, n):
        if dd[i - 1] == 0:
            raise ConfigurationError(f"zero pivot at row {i - 1}")
        m1 = lo1[i] / dd[i - 1]
        dd[i] -= m1 * up1[i - 1]
        if i < n - 1:
            up1[i] -= m1 * up2[i - 1]
        bb[i] = bb[i] - m1 * bb[i - 1]
        if i + 1 < n:
            m2 = lo2[i + 1] / dd[i - 1]
            lo1[i + 1] -= m2 * up1[i - 1]
            dd[i + 1] -= m2 * up2[i - 1]
            bb[i + 1] = bb[i + 1] - m2 * bb[i - 1]
    x = np.empty(n, dtype=np.float64)
    if dd[n - 1] == 0:
        raise ConfigurationError("zero pivot at final row")
    x[n - 1] = bb[n - 1] / dd[n - 1]
    if n >= 2:
        x[n - 2] = (bb[n - 2] - up1[n - 2] * x[n - 1]) / dd[n - 2]
    for i in range(n - 3, -1, -1):
        x[i] = (bb[i] - up1[i] * x[i + 1] - up2[i] * x[i + 2]) / dd[i]
    return x


def solve_lines_along_axis(
    field: np.ndarray,
    axis: int,
    lower: float,
    diag: float,
    upper: float,
) -> np.ndarray:
    """Solve constant-coefficient tridiagonal systems along one grid axis.

    The workhorse of the ADI sweeps: for every line of ``field`` along
    ``axis``, solve ``(lower, diag, upper)`` tridiagonal systems with the
    line as right-hand side. Vectorized over all other axes.
    """
    moved = np.moveaxis(field, axis, 0)
    n = moved.shape[0]
    lo = np.full(n, lower, dtype=np.float64)
    di = np.full(n, diag, dtype=np.float64)
    up = np.full(n, upper, dtype=np.float64)
    solved = solve_tridiagonal(lo, di, up, moved.reshape(n, -1))
    return np.moveaxis(solved.reshape(moved.shape), 0, axis)
