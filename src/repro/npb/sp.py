"""SP (Scalar Pentadiagonal) work-alike.

SP has the same three-directional sweep structure as BT but solves scalar
pentadiagonal systems, and the paper's decomposition adds an eighth kernel,
TXINVR ("phase two computation of the right hand side"), giving six loop
kernels::

    INITIALIZATION | COPY_FACES  TXINVR  X_SOLVE  Y_SOLVE  Z_SOLVE  ADD | FINAL

SP's per-point solver work is much lighter than BT's (scalar vs 5x5 block
systems) while its RHS phase is comparable, so SP is relatively more
sensitive to communication and to the ``rhs``/``u`` reuse chain.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.npb import workloads as w
from repro.npb.base import Benchmark, staged_memory
from repro.simmachine.engine import Event
from repro.simmachine.process import RankContext
from repro.simmpi.topology import CartGrid, square_grid_shape

__all__ = ["SP"]

_TAG_FACES = 20
_TAG_XSOLVE = 21
_TAG_YSOLVE = 22


class SP(Benchmark):
    """The SP benchmark bound to a problem class and process count."""

    name = "SP"

    @property
    def loop_kernel_names(self) -> tuple[str, ...]:
        return ("COPY_FACES", "TXINVR", "X_SOLVE", "Y_SOLVE", "Z_SOLVE", "ADD")

    @property
    def pre_kernel_names(self) -> tuple[str, ...]:
        return ("INITIALIZATION",)

    @property
    def post_kernel_names(self) -> tuple[str, ...]:
        return ("FINAL",)

    def field_bytes_per_point(self) -> dict[str, int]:
        return dict(w.SP_FIELD_BYTES)

    def kernel_fields(self) -> dict[str, tuple[str, ...]]:
        return {
            "INITIALIZATION": ("u", "forcing", "aux"),
            "COPY_FACES": ("u", "forcing", "aux", "rhs"),
            "TXINVR": ("aux", "rhs"),
            "X_SOLVE": ("u", "aux", "rhs", "lhs"),
            "Y_SOLVE": ("u", "aux", "rhs", "lhs"),
            "Z_SOLVE": ("u", "aux", "rhs", "lhs"),
            "ADD": ("rhs", "u"),
            "FINAL": ("u", "rhs"),
        }

    def _make_grid(self, nprocs: int) -> CartGrid:
        return CartGrid(*square_grid_shape(nprocs))

    def _build_kernels(self) -> None:
        self._register("INITIALIZATION", self._initialization)
        self._register("COPY_FACES", self._copy_faces)
        self._register("TXINVR", self._txinvr)
        self._register("X_SOLVE", self._make_xy_solve(0))
        self._register("Y_SOLVE", self._make_xy_solve(1))
        self._register("Z_SOLVE", self._z_solve)
        self._register("ADD", self._add)
        self._register("FINAL", self._final)

    def _flops(self, ctx: RankContext, kernel: str) -> float:
        return w.SP_FLOPS_PER_POINT[kernel] * self.layout.local_points(ctx.rank)

    def _initialization(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "INITIALIZATION"),
            [
                (self.region(r, "u"), None, True),
                (self.region(r, "forcing"), None, True),
                (self.region(r, "aux"), None, True),
            ],
        )
        yield from ctx.comm.barrier()

    def _copy_faces(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield from self.exchange_faces(
            ctx, w.SP_FACE_BYTES, w.SP_FACE_BYTES, _TAG_FACES, depth=2
        )
        yield ctx.work(
            self._flops(ctx, "COPY_FACES"),
            [
                (self.region(r, "u"), None, False),
                (self.region(r, "forcing"), None, False),
                (self.region(r, "aux"), None, False),
                (self.region(r, "rhs"), None, True),
            ],
        )

    def _txinvr(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        # Block-diagonal inversion of the RHS: reads the aux fields COPY_FACES
        # just produced and rewrites rhs in place — a tightly coupled pair.
        yield ctx.work(
            self._flops(ctx, "TXINVR"),
            [
                (self.region(r, "aux"), None, False),
                (self.region(r, "rhs"), None, True),
            ],
        )

    def _make_xy_solve(self, dim: int):
        kernel = "X_SOLVE" if dim == 0 else "Y_SOLVE"
        tag = _TAG_XSOLVE if dim == 0 else _TAG_YSOLVE

        def solve(ctx: RankContext) -> Generator[Event, Any, None]:
            r = ctx.rank
            stages = self.grid.px if dim == 0 else self.grid.py
            nx, ny, nz = self.layout.local_dims(r)
            face_points = (ny if dim == 0 else nx) * nz
            boundary = w.SP_SOLVE_BOUNDARY_BYTES * face_points
            regions = [
                (self.region(r, "u"), None, False),
                (self.region(r, "aux"), None, False),
                (self.region(r, "rhs"), None, True),
                (self.region(r, "lhs"), None, True),
            ]
            per_stage_mem = staged_memory(ctx, regions, stages)
            per_stage_flops = self._flops(ctx, kernel) / stages
            nxt = self.grid.neighbor(r, dim, +1, periodic=True)
            prv = self.grid.neighbor(r, dim, -1, periodic=True)
            for _stage in range(stages):
                yield ctx.sim.timeout(
                    ctx.compute_seconds(per_stage_flops) + per_stage_mem
                )
                if stages > 1:
                    yield from ctx.comm.sendrecv(
                        nxt, boundary, send_tag=tag, source=prv
                    )

        return solve

    def _z_solve(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "Z_SOLVE"),
            [
                (self.region(r, "u"), None, False),
                (self.region(r, "aux"), None, False),
                (self.region(r, "rhs"), None, True),
                (self.region(r, "lhs"), None, True),
            ],
        )

    def _add(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "ADD"),
            [
                (self.region(r, "rhs"), None, False),
                (self.region(r, "u"), None, True),
            ],
        )

    def _final(self, ctx: RankContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        yield ctx.work(
            self._flops(ctx, "FINAL"),
            [
                (self.region(r, "u"), None, False),
                (self.region(r, "rhs"), None, False),
            ],
        )
        yield from ctx.comm.allreduce(0.0, nbytes=5 * w.DOUBLE)
