"""End-to-end verification of the executable numerics at class-S scale.

Each NPB work-alike has a mini-app that exercises the *real* numerical
method on the class-S grid:

* BT — ADI diffusion sweeps built from (block-)tridiagonal line solves;
* SP — the same sweep skeleton with pentadiagonal lines along x;
* LU — SSOR iterations on the 7-point operator;
* CG — conjugate gradient on a NAS-style random SPD sparse system;
* MG — V-cycles with mesh-independent residual contraction.

``verify(benchmark)`` runs the mini-app and checks the solution against
analytic behaviour, mirroring NPB's own verification stage (the FINAL /
ERROR kernels). These are correctness gates for the operation-count
formulas the simulator charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.npb.classes import problem_size
from repro.npb.numerics.grids import (
    Grid3D,
    adi_diffusion_step,
    manufactured_solution,
)
from repro.npb.numerics.krylov import conjugate_gradient, nas_style_sparse_matrix
from repro.npb.numerics.multigrid import mg_solve
from repro.npb.numerics.ssor import apply_operator, ssor_solve
from repro.npb.numerics.tridiag import solve_pentadiagonal

__all__ = ["VerificationResult", "verify"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one mini-app verification run."""

    benchmark: str
    passed: bool
    error: float
    tolerance: float
    detail: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def _grid_for(benchmark: str) -> Grid3D:
    size = problem_size(benchmark, "S")
    return Grid3D(size.nx, size.ny, size.nz)


def _verify_bt() -> VerificationResult:
    """ADI diffusion must decay the fundamental mode at the analytic rate."""
    grid = _grid_for("BT")
    u = manufactured_solution(grid)
    dt = 1e-3
    steps = 10
    work = u.copy()
    for _ in range(steps):
        work = adi_diffusion_step(work, grid, dt)
    # For u0 = product of sines, each 1-D implicit solve scales the mode by
    # 1 / (1 + r * 4 sin^2(pi h / 2) / h^2 * h^2) exactly; compare against
    # the discrete decay factor per axis.
    factor = 1.0
    for h in grid.spacing:
        lam = 4.0 / h**2 * np.sin(np.pi * h / 2.0) ** 2
        factor *= 1.0 / (1.0 + dt * lam)
    expected = u * factor**steps
    err = float(np.max(np.abs(work - expected)) / np.max(np.abs(expected)))
    tol = 1e-10
    return VerificationResult(
        "BT", err < tol, err, tol,
        f"ADI mode decay over {steps} steps (dt={dt})",
    )


def _verify_sp() -> VerificationResult:
    """Pentadiagonal line solve must reproduce a known solution."""
    grid = _grid_for("SP")
    n = grid.nx
    rng = np.random.default_rng(42)
    x_true = rng.standard_normal(n)
    # Diagonally dominant pentadiagonal system in LAPACK banded layout.
    bands = np.zeros((5, n))
    bands[0, 2:] = 0.3          # 2nd super
    bands[1, 1:] = -1.0         # 1st super
    bands[2, :] = 6.0           # main
    bands[3, : n - 1] = -1.0    # 1st sub
    bands[4, : n - 2] = 0.3     # 2nd sub
    full = np.zeros((n, n))
    for i in range(n):
        full[i, i] = bands[2, i]
        if i + 1 < n:
            full[i, i + 1] = bands[1, i + 1]
            full[i + 1, i] = bands[3, i]
        if i + 2 < n:
            full[i, i + 2] = bands[0, i + 2]
            full[i + 2, i] = bands[4, i]
    rhs = full @ x_true
    x = solve_pentadiagonal(bands, rhs)
    err = float(np.max(np.abs(x - x_true)) / np.max(np.abs(x_true)))
    tol = 1e-10
    return VerificationResult(
        "SP", err < tol, err, tol, f"pentadiagonal solve on n={n} line"
    )


def _verify_lu() -> VerificationResult:
    """SSOR must converge to the solution of the 7-point system."""
    grid = _grid_for("LU")
    diag, offdiag = 7.0, 1.0
    x_true = manufactured_solution(grid)
    rhs = apply_operator(x_true, diag, offdiag)
    u, history = ssor_solve(rhs, diag, offdiag, omega=1.1, iterations=30)
    err = float(np.max(np.abs(u - x_true)) / np.max(np.abs(x_true)))
    tol = 1e-6
    converging = all(b <= a * 1.0000001 for a, b in zip(history, history[1:]))
    return VerificationResult(
        "LU",
        err < tol and converging,
        err,
        tol,
        f"SSOR convergence over {len(history)} iterations "
        f"(residual {history[0]:.2e} -> {history[-1]:.2e})",
    )


def _verify_cg() -> VerificationResult:
    """CG must solve a NAS-style random SPD sparse system."""
    import numpy as np

    n, nnz = 1400, 7  # the class-S spec
    matrix = nas_style_sparse_matrix(n, nnz, seed=7)
    rng = np.random.default_rng(11)
    x_true = rng.standard_normal(n)
    rhs = matrix @ x_true
    result = conjugate_gradient(lambda v: matrix @ v, rhs, tolerance=1e-10)
    err = float(
        np.max(np.abs(result.x - x_true)) / np.max(np.abs(x_true))
    )
    tol = 1e-7
    return VerificationResult(
        "CG",
        result.converged and err < tol,
        err,
        tol,
        f"sparse SPD solve, n={n}, {result.iterations} iterations "
        f"(residual {result.residual_norms[0]:.2e} -> "
        f"{result.residual_norms[-1]:.2e})",
    )


def _verify_mg() -> VerificationResult:
    """V-cycles must contract the residual at a mesh-independent rate."""
    import numpy as np

    diag, offdiag = 7.0, 1.0
    rates = []
    for n in (16, 32):
        rng = np.random.default_rng(n)
        rhs = rng.standard_normal((n, n, n))
        _, history = mg_solve(rhs, diag, offdiag, cycles=6)
        rates.append((history[-1] / history[0]) ** (1.0 / 6))
    err = abs(rates[1] - rates[0])
    tol = 0.12  # contraction factor drift between meshes
    converging = all(rate < 0.6 for rate in rates)
    return VerificationResult(
        "MG",
        converging and err < tol,
        err,
        tol,
        f"V-cycle contraction {rates[0]:.3f} @16^3 vs {rates[1]:.3f} @32^3",
    )


def verify(benchmark: str) -> VerificationResult:
    """Run the mini-app verification for a benchmark (BT/SP/LU/CG/MG)."""
    name = benchmark.upper()
    if name == "BT":
        return _verify_bt()
    if name == "SP":
        return _verify_sp()
    if name == "LU":
        return _verify_lu()
    if name == "CG":
        return _verify_cg()
    if name == "MG":
        return _verify_mg()
    raise ConfigurationError(f"unknown benchmark {benchmark!r}")
