"""Operation-count and footprint constants for the NPB work-alikes.

The totals are anchored to the published NPB operation counts (BT class A
≈ 168 Gflop over 200 iterations, SP class A ≈ 102 Gflop over 400, LU class
A ≈ 119 Gflop over 250), divided over the paper's kernel decomposition in
proportions consistent with the NPB 2 source structure. Field footprints
are bytes per grid point of the major arrays of each code.

These constants are the single source of truth shared by the simulated
kernels (:mod:`repro.npb.bt` etc.) and the analytical kernel models
(:mod:`repro.core.models`); experiments depend on their ratios (compute vs
memory vs messages), not on absolute values.
"""

from __future__ import annotations

__all__ = [
    "BT_FLOPS_PER_POINT",
    "BT_FIELD_BYTES",
    "SP_FLOPS_PER_POINT",
    "SP_FIELD_BYTES",
    "LU_FLOPS_PER_POINT",
    "LU_FIELD_BYTES",
    "DOUBLE",
]

DOUBLE = 8  # bytes

# --------------------------------------------------------------------------
# BT — Block Tridiagonal. 5x5 block systems in each dimension.
# Total ≈ 3190 flop/point/iteration (=> class A ≈ 167 Gflop over 200 iters).
# --------------------------------------------------------------------------

BT_FLOPS_PER_POINT = {
    "INITIALIZATION": 120.0,   # exact_rhs + initialize, once
    "COPY_FACES": 900.0,       # phase-one RHS computation + face copies
    "X_SOLVE": 760.0,          # 5x5 block Thomas along x
    "Y_SOLVE": 760.0,
    "Z_SOLVE": 760.0,
    "ADD": 10.0,               # u += rhs
    "FINAL": 60.0,             # verification norms, once
}

#: Bytes per grid point of BT's major arrays.
#: ``lhs`` is the 3 x (5x5) block working array *shared by the three solve
#: kernels* (in NPB BT the lhs buffer is re-built in place per direction) —
#: this scratch reuse is a major constructive-coupling channel.
BT_FIELD_BYTES = {
    "u": 5 * DOUBLE,         # solution vector
    "rhs": 5 * DOUBLE,       # right-hand side
    "forcing": 5 * DOUBLE,   # steady forcing term
    "lhs": 75 * DOUBLE,      # 3 blocks of 5x5 per point (solver scratch)
    "aux": 7 * DOUBLE,       # qs, square, rho_i, us, vs, ws, speed
}

#: Bytes per *face* point exchanged by COPY_FACES (5 components, 2 ghost
#: layers folded into the depth argument at the call site).
BT_FACE_BYTES = 5 * DOUBLE

#: Bytes per face point exchanged at each multi-partition solve stage:
#: one 5x5 block plus one 5-vector of boundary data.
BT_SOLVE_BOUNDARY_BYTES = (25 + 5) * DOUBLE

# --------------------------------------------------------------------------
# SP — Scalar Pentadiagonal.
# Total ≈ 970 flop/point/iteration (=> class A ≈ 102 Gflop over 400 iters).
# --------------------------------------------------------------------------

SP_FLOPS_PER_POINT = {
    "INITIALIZATION": 120.0,
    "COPY_FACES": 280.0,
    "TXINVR": 45.0,            # phase-two RHS (block-diagonal inversion)
    "X_SOLVE": 205.0,
    "Y_SOLVE": 205.0,
    "Z_SOLVE": 225.0,          # includes tzetar
    "ADD": 10.0,
    "FINAL": 60.0,
}

SP_FIELD_BYTES = {
    "u": 5 * DOUBLE,
    "rhs": 5 * DOUBLE,
    "forcing": 5 * DOUBLE,
    "lhs": 15 * DOUBLE,       # 5 scalar diagonals x 3 systems (scratch)
    "aux": 7 * DOUBLE,
}

SP_FACE_BYTES = 5 * DOUBLE

#: Scalar pentadiagonal boundary data per face point (5 diagonals + rhs).
SP_SOLVE_BOUNDARY_BYTES = (5 + 5) * DOUBLE

# --------------------------------------------------------------------------
# LU — SSOR with diagonal wavefront.
# Total ≈ 1820 flop/point/iteration (=> class A ≈ 119 Gflop over 250 iters).
# --------------------------------------------------------------------------

LU_FLOPS_PER_POINT = {
    "INITIALIZATION": 30.0,
    "ERHS": 300.0,             # forcing matrix, once
    "SSOR_INIT": 10.0,
    "SSOR_ITER": 30.0,         # scale rsd by omega dt
    "SSOR_LT": 650.0,          # jacld + blts (lower-triangular sweep)
    "SSOR_UT": 650.0,          # jacu + buts (upper-triangular sweep)
    "SSOR_RS": 490.0,          # rhs recomputation + update + residual
    "ERROR": 40.0,
    "PINTGR": 20.0,
    "FINAL": 20.0,
}

LU_FIELD_BYTES = {
    "u": 5 * DOUBLE,
    "rsd": 5 * DOUBLE,        # residual / SSOR working vector
    "frct": 5 * DOUBLE,       # forcing
    "jac": 100 * DOUBLE,      # a,b,c,d 5x5 Jacobian blocks (solver scratch)
    "aux": 3 * DOUBLE,
}

#: The paper: LU's pipelined exchanges are "small communications of five
#: words each" — one message per boundary grid point, 5 doubles.
LU_PIPELINE_MESSAGE_BYTES = 5 * DOUBLE

#: Bytes per face point of SSOR_RS's halo exchange (stencil ghost cells).
LU_FACE_BYTES = 5 * DOUBLE
