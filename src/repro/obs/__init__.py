"""Unified observability substrate: metrics, spans, logs, exporters.

Every layer of the codebase records into this one package:

* **Metrics** — a process-wide :class:`~repro.obs.registry.MetricsRegistry`
  (:func:`get_registry`) of counters/gauges/histograms. Histograms use
  fixed log-scale buckets (O(1) memory forever, Prometheus-compatible).
  The service keeps its own namespaced registry on top of the same
  classes (:mod:`repro.service.metrics`); the simulator and campaign
  pipeline record into the global one.
* **Spans** — ``with obs.span("campaign.run", benchmark="BT"): ...``
  times a stage, records its duration into the
  ``span_seconds{name=...}`` histogram, and keeps the finished span in a
  bounded ring buffer (:func:`get_tracer`) for the Chrome-trace exporter.
  Span contexts propagate across threads via
  :func:`~repro.obs.tracing.current_context` /
  :func:`~repro.obs.tracing.use_context`, and adopt the wire protocol's
  correlation IDs (:func:`~repro.obs.tracing.correlation`).
* **Logs** — :func:`~repro.obs.logging.log` emits structured
  ``event key=value`` lines stamped with correlation/span IDs.
* **Exporters** — :func:`~repro.obs.export.to_prometheus`,
  :func:`~repro.obs.export.to_json`, and
  :func:`~repro.obs.export.chrome_trace` (Perfetto timelines).

The whole substrate can be switched off (:func:`disable`) for overhead
measurements; the throughput benchmark pins the enabled-vs-disabled cost
of the hot serving path below 10 %.
"""

from __future__ import annotations

import threading

from repro.obs.export import (
    chrome_trace,
    collapsed_spans,
    to_json,
    to_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.delta import (
    counter_deltas,
    counter_snapshot,
    deltas_between,
    merge_counter_deltas,
)
from repro.obs.logging import configure_logging, get_logger, log
from repro.obs.profile import (
    ProfileData,
    SamplingProfiler,
    merge_child_profile,
    tag,
)
from repro.obs.profile import active as profiler_active
from repro.obs.profile import start as start_profiler
from repro.obs.profile import stop as stop_profiler
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_buckets,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    correlation,
    correlation_id,
    current_context,
    current_span,
    span,
    use_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileData",
    "SamplingProfiler",
    "Span",
    "SpanContext",
    "Tracer",
    "DEFAULT_BUCKETS",
    "chrome_trace",
    "collapsed_spans",
    "configure_logging",
    "correlation",
    "correlation_id",
    "counter_deltas",
    "counter_snapshot",
    "current_context",
    "deltas_between",
    "merge_counter_deltas",
    "current_span",
    "default_buckets",
    "disable",
    "enable",
    "enabled",
    "get_logger",
    "get_registry",
    "get_tracer",
    "log",
    "merge_child_profile",
    "profiler_active",
    "reset",
    "span",
    "start_profiler",
    "stop_profiler",
    "tag",
    "to_json",
    "to_prometheus",
    "use_context",
    "validate_chrome_trace",
    "write_chrome_trace",
]

_lock = threading.Lock()
_registry = MetricsRegistry()
_tracer = Tracer()
_enabled = True


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (simulator, pipeline, spans)."""
    return _registry


def get_tracer() -> Tracer:
    """The process-wide span ring buffer."""
    return _tracer


def enabled() -> bool:
    """Whether spans/logs/simulator-flushes record anything."""
    return _enabled


def enable() -> None:
    """Turn the substrate on (the default)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn spans, structured logs, and simulator flushes into no-ops.

    Existing explicit instruments (e.g. the service's own counters) keep
    working — this switch exists to measure the substrate's overhead and
    to run the hot path bare.
    """
    global _enabled
    _enabled = False


def reset() -> None:
    """Fresh global registry + tracer (test isolation; re-enables)."""
    global _registry, _tracer, _enabled
    with _lock:
        _registry = MetricsRegistry()
        _tracer = Tracer()
        _enabled = True
