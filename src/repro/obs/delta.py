"""Counter snapshot/delta propagation across process boundaries.

Counters are process-local; campaign pool workers and serving shards run
in *other* processes, so their increments never land in the parent's
registry by themselves. The pattern (established by the parallel campaign
executor, now shared with the sharded serving frontend):

1. the child snapshots its counters before doing work
   (:func:`counter_snapshot`),
2. ships home only the positive *deltas* as plain data
   (:func:`counter_deltas` — ``(name, label_items, amount)`` triples,
   JSON/pickle friendly),
3. the parent folds them into its own registry
   (:func:`merge_counter_deltas`), preserving every label.

For long-lived children polled repeatedly (serving shards), the parent
keeps the previous snapshot per child and diffs with
:func:`deltas_between`; ``allow_reset=True`` treats a counter that went
*backwards* as a child restart and credits its full current value, so a
respawned shard's counters are never lost or double-counted.

Correlation IDs survive the hop for free: spans in the child adopt the
wire request's ``id`` (see :func:`repro.obs.tracing.correlation`), and the
counters merged here are the quantitative trail those spans leave behind.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.obs.registry import Counter, MetricsRegistry

__all__ = [
    "counter_snapshot",
    "counter_deltas",
    "deltas_between",
    "merge_counter_deltas",
]

#: One shipped increment: (counter name, label items tuple, amount).
Delta = Tuple[str, tuple, int]

#: Snapshot form: {(name, label items): cumulative value}.
Snapshot = dict[tuple, int]


def _registry_or_default(registry: Optional[MetricsRegistry]):
    if registry is not None:
        return registry
    from repro import obs

    return obs.get_registry()


def counter_snapshot(
    registry: Optional[MetricsRegistry] = None,
) -> Snapshot:
    """Current cumulative counter values, keyed by (name, label items)."""
    return {
        (instrument.name, instrument.labels): instrument.value
        for instrument in _registry_or_default(registry).collect()
        if isinstance(instrument, Counter)
    }


def deltas_between(
    before: Snapshot,
    after: Snapshot,
    allow_reset: bool = False,
) -> tuple[Delta, ...]:
    """Positive counter movement from ``before`` to ``after``, sorted.

    ``allow_reset=True`` interprets a counter below its previous value as
    a fresh process (restart) and ships its full current value instead of
    dropping it.
    """
    deltas = []
    for (name, labels), value in sorted(after.items()):
        delta = value - before.get((name, labels), 0)
        if delta < 0 and allow_reset:
            delta = value
        if delta > 0:
            deltas.append((name, labels, delta))
    return tuple(deltas)


def counter_deltas(
    before: Snapshot,
    registry: Optional[MetricsRegistry] = None,
) -> tuple[Delta, ...]:
    """Counter movement since ``before`` in the (default) registry."""
    return deltas_between(before, counter_snapshot(registry))


def merge_counter_deltas(
    deltas: Iterable[Delta],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Fold shipped child deltas into the parent's registry."""
    target = _registry_or_default(registry)
    for name, labels, delta in deltas:
        target.counter(name, dict(labels)).inc(delta)
