"""Exporters: Prometheus text exposition, JSON snapshots, Chrome traces.

Three consumers, three formats:

* :func:`to_prometheus` — the text exposition format scraped by Prometheus
  (and answered by the TCP server's ``{"cmd": "metrics"}`` command);
* :func:`to_json` — one JSON-friendly dict merging any number of
  registries (the service's private registry plus the global one);
* :func:`chrome_trace` — the Chrome trace-event format (``chrome://tracing``
  / Perfetto) built from obs spans and/or a
  :class:`repro.simmachine.trace.Trace`: pipeline spans become complete
  ("X") slices on per-thread tracks, simulator rank activity becomes
  slices/instants on one track per rank.
"""

from __future__ import annotations

import json
import math
import re
from typing import Optional, Sequence

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span

__all__ = [
    "to_prometheus",
    "to_json",
    "chrome_trace",
    "collapsed_spans",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(registry: MetricsRegistry, raw: str) -> str:
    name = _NAME_RE.sub("_", raw)
    if registry.namespace:
        name = f"{_NAME_RE.sub('_', registry.namespace)}_{name}"
    if name and name[0].isdigit():
        name = f"_{name}"
    return name


def _render_labels(labels: tuple, extra: str = "") -> str:
    parts = [
        f'{_LABEL_RE.sub("_", key)}="{_escape(value)}"'
        for key, value in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def to_prometheus(*registries: MetricsRegistry) -> str:
    """Render every instrument in exposition format (one trailing newline).

    Counters gain a ``_total`` suffix, gauges also export a
    ``_high_water`` companion, histograms export cumulative ``_bucket``
    series plus ``_sum``/``_count`` — all per Prometheus conventions.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for registry in registries:
        for instrument in registry.collect():
            labels = _render_labels(instrument.labels)
            if isinstance(instrument, Counter):
                name = _metric_name(registry, instrument.name)
                if not name.endswith("_total"):
                    name += "_total"
                _type_line(name, "counter")
                lines.append(f"{name}{labels} {instrument.value}")
            elif isinstance(instrument, Gauge):
                name = _metric_name(registry, instrument.name)
                _type_line(name, "gauge")
                lines.append(f"{name}{labels} {_format_value(instrument.value)}")
                high = f"{name}_high_water"
                _type_line(high, "gauge")
                lines.append(
                    f"{high}{labels} {_format_value(instrument.high_water)}"
                )
            elif isinstance(instrument, Histogram):
                name = _metric_name(registry, instrument.name)
                _type_line(name, "histogram")
                for bound, cumulative in instrument.bucket_counts():
                    le = _render_labels(
                        instrument.labels, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(f"{name}_sum{labels} {_format_value(instrument.sum)}")
                lines.append(f"{name}_count{labels} {instrument.count}")
    return "\n".join(lines) + "\n" if lines else ""


def to_json(*registries: MetricsRegistry) -> dict:
    """Merge registries into one JSON-friendly snapshot dict."""
    merged: dict = {}
    for registry in registries:
        snapshot = registry.snapshot()
        if registry.namespace:
            snapshot = {
                f"{registry.namespace}.{key}": value
                for key, value in snapshot.items()
            }
        merged.update(snapshot)
    return merged


# -- Chrome trace-event format -------------------------------------------------

#: Simulator trace record kinds rendered as instant events (phase records
#: become slices lasting until the rank's next phase).
_INSTANT_KINDS = ("touch", "send", "recv", "wait")


def chrome_trace(
    spans: Sequence[Span] = (),
    machine_trace=None,
    time_unit: float = 1e-6,
) -> dict:
    """Build a ``chrome://tracing`` / Perfetto document.

    ``spans`` (wall-clock) land on ``pid=1`` ("pipeline"), one ``tid`` per
    OS thread; ``machine_trace`` (simulated time, a
    :class:`repro.simmachine.trace.Trace`) lands on ``pid=2``
    ("simulator"), one ``tid`` per rank. ``time_unit`` scales simulated
    seconds to trace microseconds (default: 1 sim second = 1e6 trace µs).
    """
    events: list[dict] = []
    if spans:
        origin = min(s.start for s in spans)
        thread_ids: dict[int, int] = {}
        events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "pipeline"},
            }
        )
        for finished in spans:
            tid = thread_ids.setdefault(finished.thread_id, len(thread_ids) + 1)
            args = {
                "trace_id": finished.trace_id,
                "span_id": finished.span_id,
            }
            if finished.parent_id:
                args["parent_id"] = finished.parent_id
            args.update(
                {key: str(value) for key, value in finished.attrs.items()}
            )
            events.append(
                {
                    "ph": "X",
                    "ts": (finished.start - origin) * 1e6,
                    "dur": max(finished.duration, 0.0) * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "name": finished.name,
                    "cat": "span",
                    "args": args,
                }
            )
    if machine_trace is not None and len(machine_trace):
        events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": 2,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "simulator"},
            }
        )
        records = sorted(machine_trace, key=lambda r: (r.rank, r.time))
        end_time = max(r.time for r in machine_trace)
        # Per rank: each "phase" record opens a slice that lasts until the
        # rank's next phase (or the end of the trace); other kinds are
        # instants inside it.
        open_phase: dict[int, object] = {}

        def _close(rank: int, until: float) -> None:
            record = open_phase.pop(rank, None)
            if record is None:
                return
            events.append(
                {
                    "ph": "X",
                    "ts": record.time / time_unit,
                    "dur": max(until - record.time, 0.0) / time_unit,
                    "pid": 2,
                    "tid": record.rank,
                    "name": record.label,
                    "cat": "phase",
                }
            )

        for record in records:
            if record.kind == "phase":
                _close(record.rank, record.time)
                open_phase[record.rank] = record
            else:
                events.append(
                    {
                        "ph": "i",
                        "ts": record.time / time_unit,
                        "pid": 2,
                        "tid": record.rank,
                        "name": f"{record.label}.{record.kind}",
                        "cat": record.kind,
                        "s": "t",
                        "args": (
                            {"info": str(record.info)}
                            if record.info is not None
                            else {}
                        ),
                    }
                )
        for rank in list(open_phase):
            _close(rank, end_time)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def collapsed_spans(spans: Sequence[Span]) -> str:
    """Render finished spans as collapsed flamegraph stacks.

    Each span contributes one ``root;child;...;leaf <microseconds>`` line
    weighted by its **self** time (duration minus the time covered by its
    direct children), so the totals sum to real wall time and
    ``flamegraph.pl`` / speedscope render the span hierarchy directly.
    Weights are integer microseconds; spans whose self time rounds to zero
    are dropped.
    """
    by_id = {s.span_id: s for s in spans}
    child_time: dict[str, float] = {}
    for s in spans:
        if s.parent_id and s.parent_id in by_id:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + (
                s.duration
            )

    def _path(s: Span) -> tuple[str, ...]:
        names: list[str] = []
        seen: set[str] = set()
        node: Optional[Span] = s
        while node is not None and node.span_id not in seen:
            seen.add(node.span_id)
            names.append(node.name)
            node = by_id.get(node.parent_id) if node.parent_id else None
        names.reverse()
        return tuple(names)

    weights: dict[tuple[str, ...], int] = {}
    for s in spans:
        self_us = round(
            max(s.duration - child_time.get(s.span_id, 0.0), 0.0) * 1e6
        )
        if self_us <= 0:
            continue
        path = _path(s)
        weights[path] = weights.get(path, 0) + self_us
    lines = [
        ";".join(path) + f" {weight}"
        for path, weight in sorted(weights.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_chrome_trace(
    path: str,
    spans: Sequence[Span] = (),
    machine_trace=None,
    time_unit: float = 1e-6,
) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the document."""
    document = chrome_trace(spans, machine_trace, time_unit)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return document


def validate_chrome_trace(document: dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a loadable Chrome trace.

    Checks the schema Perfetto requires: a ``traceEvents`` array whose
    entries carry ``ph``/``ts``/``pid``/``tid``/``name``, with durations on
    complete events.
    """
    if not isinstance(document, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace needs a 'traceEvents' array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for field in ("ph", "ts", "pid", "tid", "name"):
            if field not in event:
                raise ValueError(f"traceEvents[{index}] missing {field!r}")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"traceEvents[{index}] complete event lacks dur")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"traceEvents[{index}] bad ts {event['ts']!r}")
    json.dumps(document)  # every value must be JSON-serialisable
