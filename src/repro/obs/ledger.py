"""Append-only performance ledger with a noise-aware regression gate.

Before this module the repo's performance record was three one-shot
snapshot files (``BENCH_engine.json``, ``BENCH_campaign.json``,
``BENCH_tiers.json``), each with its own shape and no history — a number
could regress 30 % and nothing would notice as long as the snapshot still
cleared its own absolute floor. The ledger replaces that with one schema:

* every benchmark run **appends** an entry — series name, metrics (each a
  value + unit + direction), sample count, the host fingerprint it ran on,
  and the commit/timestamp *passed in by the caller* (REP001: nothing in
  the library reads a wall clock; benchmarks stamp their own entries);
* :func:`check` compares each series' newest entry against the median of
  its **same-host** history, with a tolerance of ``k`` MADs (median
  absolute deviation — a noise estimate that two outliers can't poison)
  floored at a relative band, so a noisy laptop run doesn't page anyone
  and a real regression does;
* histories shorter than ``min_history`` report ``cold`` instead of a
  verdict, which CI treats as warn-only (`repro bench check` exit 0) —
  the gate can be wired in before the history exists without flaking.

Entries are persisted as a single JSON document via atomic replace, and
:func:`migrate_legacy` folds the three historical BENCH files in as the
first same-schema generation so no history is lost.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_FILENAME",
    "Metric",
    "Finding",
    "PerfLedger",
    "host_fingerprint",
    "make_entry",
    "check_entries",
    "migrate_legacy",
]

LEDGER_SCHEMA = 1
LEDGER_FILENAME = "PERF_LEDGER.json"

#: ``direction`` values: which way is better for a metric.
HIGHER = "higher"
LOWER = "lower"


def host_fingerprint() -> dict[str, Any]:
    """A stable identity for "numbers from this machine are comparable".

    Regression checks only compare entries whose fingerprints match:
    an entry recorded on a 4-core CI runner never gates one from a
    32-core workstation.
    """
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "python": "{}.{}".format(*sys.version_info[:2]),
        "impl": platform.python_implementation(),
        "cpus": os.cpu_count() or 1,
    }


def make_entry(
    series: str,
    metrics: dict[str, dict[str, Any]],
    timestamp: float,
    commit: Optional[str] = None,
    samples: int = 1,
    meta: Optional[dict[str, Any]] = None,
    host: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Build one schema-valid ledger entry.

    ``metrics`` maps metric name to ``{"value": float, "unit": str,
    "direction": "higher"|"lower"}`` — direction tells the regression
    detector which tail is bad. ``timestamp``/``commit`` come from the
    caller (``time.time()`` and ``git rev-parse`` live in benchmark code
    and the CLI, never here).
    """
    if not series:
        raise ReproError("ledger entry needs a non-empty series name")
    if not metrics:
        raise ReproError(f"ledger entry for {series!r} has no metrics")
    for name, metric in metrics.items():
        if "value" not in metric:
            raise ReproError(f"metric {series}/{name} missing 'value'")
        direction = metric.get("direction", LOWER)
        if direction not in (HIGHER, LOWER):
            raise ReproError(
                f"metric {series}/{name} direction must be "
                f"higher|lower, got {direction!r}"
            )
    return {
        "series": series,
        "timestamp": float(timestamp),
        "commit": commit,
        "host": host if host is not None else host_fingerprint(),
        "samples": int(samples),
        "metrics": {
            name: {
                "value": float(metric["value"]),
                "unit": str(metric.get("unit", "")),
                "direction": metric.get("direction", LOWER),
            }
            for name, metric in metrics.items()
        },
        "meta": dict(meta) if meta else {},
    }


class PerfLedger:
    """The on-disk ledger: one JSON document, appended atomically."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: list[dict[str, Any]] = []
        if self.path.exists():
            document = json.loads(self.path.read_text(encoding="utf-8"))
            if document.get("schema") != LEDGER_SCHEMA:
                raise ReproError(
                    f"{self.path}: unsupported ledger schema "
                    f"{document.get('schema')!r}"
                )
            self._entries = list(document.get("entries", []))

    @property
    def entries(self) -> list[dict[str, Any]]:
        return list(self._entries)

    def series(self, name: str) -> list[dict[str, Any]]:
        """Entries of one series, oldest first (append order)."""
        return [e for e in self._entries if e.get("series") == name]

    def series_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for entry in self._entries:
            seen.setdefault(entry.get("series", "?"))
        return list(seen)

    def append(self, entry: dict[str, Any]) -> None:
        """Append one entry and persist (atomic tmp + replace)."""
        self._entries.append(entry)
        self.save()

    def save(self) -> None:
        document = {"schema": LEDGER_SCHEMA, "entries": self._entries}
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path)

    def __len__(self) -> int:
        return len(self._entries)


# -- regression detection ---------------------------------------------------


@dataclass(frozen=True)
class Metric:
    """One metric of one entry, denormalised for checking."""

    series: str
    name: str
    value: float
    unit: str
    direction: str


@dataclass(frozen=True)
class Finding:
    """The verdict for one (series, metric) pair.

    ``status`` is ``ok`` | ``regression`` | ``improved`` | ``cold``;
    ``ratio`` is current/median (1.0 when no history).
    """

    metric: Metric
    status: str
    median: float = 0.0
    tolerance: float = 0.0
    history: int = 0
    ratio: float = 1.0
    detail: str = ""

    @property
    def is_regression(self) -> bool:
        return self.status == "regression"


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _same_host(a: dict[str, Any], b: dict[str, Any]) -> bool:
    return a == b


def check_entries(
    entries: Sequence[dict[str, Any]],
    min_history: int = 3,
    mads: float = 4.0,
    rel_floor: float = 0.10,
) -> list[Finding]:
    """Judge the newest entry of every series against its history.

    For each metric of the newest entry: collect the metric's values from
    *earlier* entries of the same series recorded on the same host
    fingerprint. With fewer than ``min_history`` of those, the verdict is
    ``cold``. Otherwise the allowed band around the history median is
    ``max(mads * MAD, rel_floor * |median|)`` — wide when history is noisy,
    never tighter than the relative floor — and a value beyond the band on
    the metric's *bad* side (direction-aware) is a ``regression``; beyond
    it on the good side, ``improved``.
    """
    findings: list[Finding] = []
    by_series: dict[str, list[dict[str, Any]]] = {}
    for entry in entries:
        by_series.setdefault(entry.get("series", "?"), []).append(entry)
    for series, series_entries in by_series.items():
        newest = series_entries[-1]
        prior = [
            e
            for e in series_entries[:-1]
            if _same_host(e.get("host", {}), newest.get("host", {}))
        ]
        for name, metric_doc in newest.get("metrics", {}).items():
            metric = Metric(
                series=series,
                name=name,
                value=float(metric_doc["value"]),
                unit=metric_doc.get("unit", ""),
                direction=metric_doc.get("direction", LOWER),
            )
            history = [
                float(e["metrics"][name]["value"])
                for e in prior
                if name in e.get("metrics", {})
            ]
            if len(history) < min_history:
                findings.append(
                    Finding(
                        metric=metric,
                        status="cold",
                        history=len(history),
                        detail=(
                            f"history {len(history)} < {min_history} "
                            "same-host entries"
                        ),
                    )
                )
                continue
            median = _median(history)
            mad = _median([abs(v - median) for v in history])
            tolerance = max(mads * mad, rel_floor * abs(median))
            deviation = metric.value - median
            bad = (
                deviation > tolerance
                if metric.direction == LOWER
                else deviation < -tolerance
            )
            good = (
                deviation < -tolerance
                if metric.direction == LOWER
                else deviation > tolerance
            )
            status = "regression" if bad else "improved" if good else "ok"
            findings.append(
                Finding(
                    metric=metric,
                    status=status,
                    median=median,
                    tolerance=tolerance,
                    history=len(history),
                    ratio=(metric.value / median) if median else 1.0,
                    detail=(
                        f"value {metric.value:g} vs median {median:g} "
                        f"± {tolerance:g} over {len(history)} runs"
                    ),
                )
            )
    return findings


# -- legacy BENCH_*.json migration ------------------------------------------


def _engine_metrics(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    metrics: dict[str, dict[str, Any]] = {}
    for workload, value in doc.get("current_events_per_sec", {}).items():
        metrics[f"{workload}.events_per_sec"] = {
            "value": value,
            "unit": "events/s",
            "direction": HIGHER,
        }
    for workload, value in doc.get("speedup", {}).items():
        metrics[f"{workload}.speedup"] = {
            "value": value,
            "unit": "x",
            "direction": HIGHER,
        }
    # Compiled-engine sides (present only when the extension is built).
    for workload, value in doc.get("compiled_events_per_sec", {}).items():
        metrics[f"{workload}.compiled_events_per_sec"] = {
            "value": value,
            "unit": "events/s",
            "direction": HIGHER,
        }
    for workload, value in doc.get("compiled_speedup_vs_pure", {}).items():
        metrics[f"{workload}.compiled_speedup_vs_pure"] = {
            "value": value,
            "unit": "x",
            "direction": HIGHER,
        }
    return metrics


def _campaign_metrics(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    metrics: dict[str, dict[str, Any]] = {}
    for key, unit, direction in (
        ("serial_seconds", "s", LOWER),
        ("parallel_cold_seconds", "s", LOWER),
        ("parallel_warm_seconds", "s", LOWER),
        ("cold_speedup", "x", HIGHER),
        ("warm_speedup", "x", HIGHER),
    ):
        if key in doc:
            metrics[key] = {
                "value": doc[key],
                "unit": unit,
                "direction": direction,
            }
    return metrics


def _tiers_metrics(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    metrics: dict[str, dict[str, Any]] = {}
    for cell in doc.get("golden_cells", []):
        stem = "{}.{}.{}".format(
            cell.get("benchmark", "?"),
            cell.get("problem_class", "?"),
            cell.get("nprocs", "?"),
        )
        if "speedup" in cell:
            metrics[f"{stem}.analytic_speedup"] = {
                "value": cell["speedup"],
                "unit": "x",
                "direction": HIGHER,
            }
        if "expected_rel_error" in cell:
            metrics[f"{stem}.expected_rel_error"] = {
                "value": cell["expected_rel_error"],
                "unit": "rel",
                "direction": LOWER,
            }
    return metrics


_LEGACY = {
    "BENCH_engine.json": ("engine", _engine_metrics),
    "BENCH_campaign.json": ("campaign", _campaign_metrics),
    "BENCH_tiers.json": ("tiers", _tiers_metrics),
}


def migrate_legacy(
    ledger: PerfLedger,
    root: str | Path,
    timestamp: float,
    commit: Optional[str] = None,
) -> list[str]:
    """Fold any legacy ``BENCH_*.json`` snapshots under ``root`` into the
    ledger as first-generation entries (the original documents ride along
    untouched in each entry's ``meta.legacy``). Series that already have a
    migrated entry are skipped, so the migration is idempotent. Returns
    the series migrated on this call.
    """
    root = Path(root)
    migrated: list[str] = []
    already = {
        entry["series"]
        for entry in ledger.entries
        if entry.get("meta", {}).get("migrated_from")
    }
    for filename, (series, extract) in _LEGACY.items():
        path = root / filename
        if not path.exists() or series in already:
            continue
        doc = json.loads(path.read_text(encoding="utf-8"))
        metrics = extract(doc)
        if not metrics:
            continue
        ledger.append(
            make_entry(
                series=series,
                metrics=metrics,
                timestamp=timestamp,
                commit=commit,
                samples=1,
                meta={"migrated_from": filename, "legacy": doc},
            )
        )
        migrated.append(series)
    return migrated
