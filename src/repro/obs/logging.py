"""Structured logging with span/correlation stamping.

``obs.log("serve.listening", host=host, port=port)`` emits one
``key=value`` line through the stdlib ``repro`` logger, automatically
stamped with the current correlation ID and trace/span IDs when present —
so a grep for one request's ID reconstructs its path through the client,
batcher, workers, and simulator. This replaces bare ``print`` calls in
long-running code paths (the service front-ends, the experiment runner);
one-shot CLI *output* stays on stdout.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional, TextIO

__all__ = ["log", "get_logger", "configure_logging"]

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_configured = False


def get_logger(name: str = "repro") -> logging.Logger:
    """The library logger (configure handlers via :func:`configure_logging`)."""
    return logging.getLogger(name)


def configure_logging(
    stream: Optional[TextIO] = None, level: int = logging.INFO
) -> logging.Logger:
    """Attach a plain line handler to the ``repro`` logger (idempotent).

    Library code never calls this implicitly with handlers attached —
    applications embedding :mod:`repro` keep full control of routing; the
    CLI front-ends call it so operators see the structured lines on stderr.
    """
    global _configured
    logger = get_logger()
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(level)
        _configured = True
    return logger


def _render_value(value: Any) -> str:
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def log(event: str, level: str = "info", **fields: Any) -> None:
    """Emit one structured line: ``event key=value ...``.

    The current correlation ID (``corr=``) and open span (``trace=``,
    ``span=``) are stamped automatically when bound. No-op when
    observability is disabled.
    """
    from repro import obs
    from repro.obs.tracing import correlation_id, current_span

    if not obs.enabled():
        return
    stamped = dict(fields)
    corr = correlation_id()
    if corr is not None and "corr" not in stamped:
        stamped["corr"] = corr
    context = current_span()
    if context is not None:
        stamped.setdefault("trace", context.trace_id)
        stamped.setdefault("span", context.span_id)
    parts = [event] + [
        f"{key}={_render_value(value)}" for key, value in stamped.items()
    ]
    get_logger().log(_LEVELS.get(level, logging.INFO), " ".join(parts))
