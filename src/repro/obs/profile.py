"""Low-overhead sampling profiler with span/tag attribution.

Where :mod:`repro.obs.tracing` answers "how long did each *stage* take"
(explicit spans), this module answers "where inside a stage does the time
actually go" — by periodically sampling Python call stacks and counting
how often each stack is on-CPU. Sampling keeps the disabled cost at
literally one ``is None`` check per span (the guard the overhead benchmark
pins below 5 %), and the enabled cost proportional to the sampling rate,
not to the workload's call volume.

Two backends:

* ``signal`` — ``setitimer(ITIMER_PROF)`` + a ``SIGPROF`` handler. CPU-time
  driven (sleeping code is never charged), near-zero overhead, but POSIX
  main-thread only and it samples only the main thread.
* ``thread`` — a daemon sampler thread walking ``sys._current_frames()``.
  Works everywhere (worker pools, TCP handler threads) and sees *every*
  thread; wall-clock driven.

``backend="auto"`` picks ``signal`` when it can and falls back to
``thread``. The per-test SIGALRM timeout fixture and the signal backend
coexist because the profiler deliberately uses ``SIGPROF``.

Attribution is three-way per sample:

1. the Python frame stack (``module:function`` segments);
2. the active :mod:`repro.obs` **span stack** of the sampled thread — the
   tracer registers open span names through :func:`_span_push` /
   :func:`_span_pop` only while a profiler is installed;
3. coarse **tags** (:func:`tag`) for regions that must stay span-free —
   the simulator's run loop tags itself so flamegraphs separate simulated
   applications without paying span cost per event (REP009).

Profiles are plain data (:class:`ProfileData`): mergeable across workers
exactly like the PR 5 counter deltas (each
:class:`~repro.parallel.worker.CellResult` carries its worker's profile
dict, the executor absorbs it into the parent's active profiler), and
exportable as collapsed stacks (flamegraph.pl / speedscope / inferno) or
Chrome-trace sample events.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from collections import deque
from typing import Any, Iterator, Optional

__all__ = [
    "ProfileData",
    "SamplingProfiler",
    "active",
    "start",
    "stop",
    "tag",
    "merge_child_profile",
]

#: Hard ceiling on recorded stack depth (deeper frames are folded into a
#: ``...`` segment, keeping pathological recursion bounded).
MAX_STACK_DEPTH = 64

#: Default distinct-stack ceiling; once reached, new stacks fold into the
#: synthetic ``(TRUNCATED,)`` bucket so memory stays O(max_stacks).
DEFAULT_MAX_STACKS = 20_000

TRUNCATED = "<truncated>"

#: Frames from these modules are the profiler observing itself; skipped.
_SELF_MODULES = ("repro.obs.profile",)


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    name = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}:{name}"


def _walk_stack(frame) -> tuple[str, ...]:
    """Root-first ``module:function`` labels for one frame chain."""
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        module = frame.f_globals.get("__name__", "?")
        if not module.startswith(_SELF_MODULES):
            labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    if frame is not None:
        labels.append(TRUNCATED)
    labels.reverse()
    return tuple(labels)


class ProfileData:
    """Aggregated samples: stack -> hit count, plus span/tag attribution.

    A pure value object — no live frames, no locks required by consumers —
    so it pickles cleanly across the process-pool boundary and merges
    associatively (``a.merge(b)`` is order-independent on counts), the same
    contract the obs counter deltas follow.
    """

    SCHEMA = 1

    def __init__(self, interval: float):
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0, got {interval}")
        self.interval = interval
        self.samples: dict[tuple[str, ...], int] = {}
        self.span_samples: dict[tuple[str, ...], int] = {}
        self.sample_count = 0
        self.duration = 0.0
        self.truncated = 0
        #: Bounded raw timeline for the Chrome-trace exporter:
        #: (offset_seconds, thread_id, stack) tuples, newest kept.
        self.timeline: deque = deque(maxlen=2_000)

    # -- recording --------------------------------------------------------

    def record(
        self,
        stack: tuple[str, ...],
        spans: tuple[str, ...],
        offset: float,
        thread_id: int,
        max_stacks: int = DEFAULT_MAX_STACKS,
    ) -> None:
        self.sample_count += 1
        if stack not in self.samples and len(self.samples) >= max_stacks:
            stack = (TRUNCATED,)
            self.truncated += 1
        self.samples[stack] = self.samples.get(stack, 0) + 1
        if spans:
            self.span_samples[spans] = self.span_samples.get(spans, 0) + 1
        self.timeline.append((offset, thread_id, stack))

    def merge(self, other: "ProfileData") -> None:
        """Fold another profile (e.g. a worker's) into this one."""
        for stack, count in other.samples.items():
            self.samples[stack] = self.samples.get(stack, 0) + count
        for spans, count in other.span_samples.items():
            self.span_samples[spans] = (
                self.span_samples.get(spans, 0) + count
            )
        self.sample_count += other.sample_count
        self.duration = max(self.duration, other.duration)
        self.truncated += other.truncated

    # -- analysis ---------------------------------------------------------

    def self_seconds(self) -> dict[str, float]:
        """Estimated self time per frame label (leaf-of-stack attribution)."""
        out: dict[str, float] = {}
        for stack, count in self.samples.items():
            if not stack:
                continue
            leaf = stack[-1]
            out[leaf] = out.get(leaf, 0.0) + count * self.interval
        return out

    def cumulative_seconds(self) -> dict[str, float]:
        """Estimated cumulative time per frame label (anywhere-on-stack).

        Recursive frames count once per sample (set semantics), so a
        function's cumulative time never exceeds the profile duration.
        """
        out: dict[str, float] = {}
        for stack, count in self.samples.items():
            for label in set(stack):
                out[label] = out.get(label, 0.0) + count * self.interval
        return out

    def span_seconds(self) -> dict[str, float]:
        """Estimated time attributed to each span/tag name (innermost)."""
        out: dict[str, float] = {}
        for spans, count in self.span_samples.items():
            leaf = spans[-1]
            out[leaf] = out.get(leaf, 0.0) + count * self.interval
        return out

    def collapsed(self, kind: str = "frames") -> str:
        """Collapsed-stack flamegraph text (``a;b;c <count>`` lines).

        ``kind="frames"`` renders the Python stacks, ``kind="spans"`` the
        span/tag stacks. Feed the output to ``flamegraph.pl`` or paste it
        into https://www.speedscope.app.
        """
        if kind == "frames":
            table = self.samples
        elif kind == "spans":
            table = self.span_samples
        else:
            raise ValueError(f"kind must be frames|spans, got {kind!r}")
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(table.items())
            if stack
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def chrome_trace(self) -> dict:
        """Chrome-trace document of the retained sample timeline.

        Each retained sample becomes one complete ("X") slice of one
        sampling interval on ``pid=3`` ("profiler"), one track per
        sampled thread, named by the leaf frame with the full stack in
        ``args`` — loadable in Perfetto next to the span timeline.
        """
        events: list[dict] = [
            {
                "ph": "M",
                "ts": 0,
                "pid": 3,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "profiler"},
            }
        ]
        thread_ids: dict[int, int] = {}
        for offset, raw_tid, stack in self.timeline:
            tid = thread_ids.setdefault(raw_tid, len(thread_ids) + 1)
            events.append(
                {
                    "ph": "X",
                    "ts": max(offset, 0.0) * 1e6,
                    "dur": self.interval * 1e6,
                    "pid": 3,
                    "tid": tid,
                    "name": stack[-1] if stack else "<idle>",
                    "cat": "sample",
                    "args": {"stack": ";".join(stack)},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.SCHEMA,
            "interval": self.interval,
            "sample_count": self.sample_count,
            "duration": self.duration,
            "truncated": self.truncated,
            "samples": [
                {"stack": list(stack), "count": count}
                for stack, count in sorted(self.samples.items())
            ],
            "span_samples": [
                {"stack": list(stack), "count": count}
                for stack, count in sorted(self.span_samples.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileData":
        if data.get("schema") != cls.SCHEMA:
            raise ValueError(
                f"unsupported profile schema {data.get('schema')!r}"
            )
        profile = cls(interval=float(data["interval"]))
        profile.sample_count = int(data.get("sample_count", 0))
        profile.duration = float(data.get("duration", 0.0))
        profile.truncated = int(data.get("truncated", 0))
        for item in data.get("samples", ()):
            profile.samples[tuple(item["stack"])] = int(item["count"])
        for item in data.get("span_samples", ()):
            profile.span_samples[tuple(item["stack"])] = int(item["count"])
        return profile


# -- the module-global profiler slot and its hot-path hooks -----------------

#: The installed profiler, or None. Every hook below starts with an
#: ``is None`` check against this slot — that check IS the disabled-path
#: overhead, and the profile benchmark holds it under 5 %.
_active: Optional["SamplingProfiler"] = None
_install_lock = threading.Lock()


def active() -> Optional["SamplingProfiler"]:
    """The currently installed profiler, if any."""
    return _active


def _span_push(thread_id: int, name: str) -> None:
    """Called by the tracer when a span opens (only while profiling)."""
    profiler = _active
    if profiler is not None:
        profiler._push(thread_id, name)


def _span_pop(thread_id: int) -> None:
    profiler = _active
    if profiler is not None:
        profiler._pop(thread_id)


class _TagScope:
    """Context manager pushing a tag for the current thread (cheap no-op
    while no profiler is installed)."""

    __slots__ = ("_name", "_pushed")

    def __init__(self, name: str):
        self._name = name
        self._pushed = False

    def __enter__(self) -> "_TagScope":
        profiler = _active
        if profiler is not None:
            profiler._push(threading.get_ident(), self._name)
            self._pushed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._pushed:
            # Pop against the *current* profiler: if profiling stopped
            # inside the scope the stacks were already discarded.
            profiler = _active
            if profiler is not None:
                profiler._pop(threading.get_ident())
        return False


def tag(name: str) -> _TagScope:
    """Attribute samples inside the scope to ``name`` without a span.

    The span-free sibling of ``obs.span`` for hot regions (the simulator
    run loop): one ``is None`` check when profiling is off, a list
    append/pop when it is on — never a Span object, never a histogram.
    """
    return _TagScope(name)


class SamplingProfiler:
    """Periodic stack sampler; start/stop or use as a context manager.

    ``interval`` is the sampling period in seconds (default 5 ms — ~200
    samples/s, far below the cost of instrumenting calls). ``backend`` is
    ``"auto"`` | ``"signal"`` | ``"thread"`` (see the module docstring).
    Only one profiler can be installed per process at a time.
    """

    def __init__(
        self,
        interval: float = 0.005,
        backend: str = "auto",
        max_stacks: int = DEFAULT_MAX_STACKS,
    ):
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0, got {interval}")
        if backend not in ("auto", "signal", "thread"):
            raise ValueError(
                f"backend must be auto|signal|thread, got {backend!r}"
            )
        self.requested_backend = backend
        self.backend = ""  # resolved at start()
        self.max_stacks = max_stacks
        self.data = ProfileData(interval)
        self._span_stacks: dict[int, list[str]] = {}
        self._stacks_lock = threading.Lock()
        self._started_at = 0.0
        self._running = False
        self._sampler_thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._previous_handler: Any = None

    # -- span/tag stack bookkeeping (called via the module hooks) ---------

    def _push(self, thread_id: int, name: str) -> None:
        with self._stacks_lock:
            self._span_stacks.setdefault(thread_id, []).append(name)

    def _pop(self, thread_id: int) -> None:
        with self._stacks_lock:
            stack = self._span_stacks.get(thread_id)
            if stack:
                stack.pop()
                if not stack:
                    del self._span_stacks[thread_id]

    def _spans_of(self, thread_id: int) -> tuple[str, ...]:
        with self._stacks_lock:
            stack = self._span_stacks.get(thread_id)
            return tuple(stack) if stack else ()

    # -- lifecycle --------------------------------------------------------

    def _resolve_backend(self) -> str:
        if self.requested_backend == "thread":
            return "thread"
        can_signal = (
            hasattr(signal, "SIGPROF")
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        if self.requested_backend == "signal":
            if not can_signal:
                raise RuntimeError(
                    "signal backend needs SIGPROF/setitimer on the main "
                    "thread; use backend='thread'"
                )
            return "signal"
        return "signal" if can_signal else "thread"

    def start(self) -> "SamplingProfiler":
        global _active
        with _install_lock:
            if _active is not None:
                raise RuntimeError("a profiler is already installed")
            # Lifecycle state is serialized by the module _install_lock
            # (single profiler per process), not by _stacks_lock — that
            # one only guards the span stacks the hooks touch.
            self.backend = self._resolve_backend()  # repro: ignore[REP002]
            self._started_at = time.perf_counter()  # repro: ignore[REP002]
            self._running = True  # repro: ignore[REP002]
            _active = self
        if self.backend == "signal":
            self._previous_handler = signal.signal(  # repro: ignore[REP002]
                signal.SIGPROF, self._on_signal
            )
            signal.setitimer(
                signal.ITIMER_PROF, self.data.interval, self.data.interval
            )
        else:
            self._stop_event.clear()
            self._sampler_thread = threading.Thread(  # repro: ignore[REP002]
                target=self._sampler_loop,
                name="repro-profiler",
                daemon=True,
            )
            self._sampler_thread.start()
        return self

    def stop(self) -> ProfileData:
        global _active
        with _install_lock:
            if not self._running:
                return self.data
            self._running = False  # repro: ignore[REP002] — _install_lock
            if _active is self:
                _active = None
        if self.backend == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGPROF, self._previous_handler)
        elif self._sampler_thread is not None:
            self._stop_event.set()
            self._sampler_thread.join(timeout=5.0)
            self._sampler_thread = None  # repro: ignore[REP002]
        self.data.duration = time.perf_counter() - self._started_at
        return self.data

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ---------------------------------------------------------

    def _on_signal(self, signum, frame) -> None:
        if not self._running or frame is None:
            return
        tid = threading.get_ident()
        self.data.record(
            _walk_stack(frame),
            self._spans_of(tid),
            time.perf_counter() - self._started_at,
            tid,
            self.max_stacks,
        )

    def _sampler_loop(self) -> None:
        me = threading.get_ident()
        interval = self.data.interval
        while not self._stop_event.wait(interval):
            now = time.perf_counter() - self._started_at
            for tid, frame in sys._current_frames().items():
                if tid == me:
                    continue
                self.data.record(
                    _walk_stack(frame),
                    self._spans_of(tid),
                    now,
                    tid,
                    self.max_stacks,
                )


def start(
    interval: float = 0.005, backend: str = "auto"
) -> SamplingProfiler:
    """Install and start a process-wide profiler (see ``repro profile run``)."""
    return SamplingProfiler(interval=interval, backend=backend).start()


def stop() -> Optional[ProfileData]:
    """Stop the installed profiler, returning its data (None when idle)."""
    profiler = _active
    if profiler is None:
        return None
    return profiler.stop()


def worker_interval() -> Optional[float]:
    """The sampling interval campaign workers should inherit, if profiling."""
    profiler = _active
    return profiler.data.interval if profiler is not None else None


def merge_child_profile(data: Optional[dict]) -> bool:
    """Absorb a worker's serialized profile into the active profiler.

    The profiler analogue of the executor's counter-delta merge: the child
    returns its whole profile as data, the parent folds it in. Returns
    whether anything was merged (False when no profiler is installed or
    the child did not profile).
    """
    profiler = _active
    if profiler is None or not data:
        return False
    profiler.data.merge(ProfileData.from_dict(data))
    return True


def _iter_stacks(data: ProfileData) -> Iterator[tuple[tuple[str, ...], int]]:
    """Testing/reporting helper: deterministic stack iteration order."""
    return iter(sorted(data.samples.items()))
