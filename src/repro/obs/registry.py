"""Process-wide metrics registry: counters, gauges, bucketed histograms.

The registry is the single place every subsystem records numbers into:
the serving layer (:mod:`repro.service.metrics` builds its instruments
here), the simulator (:class:`repro.simmachine.process.Machine` flushes
event/message/cache/noise totals after each run), the campaign pipeline
(per-stage wall time), and the tracer (span duration histograms).

Design constraints, in order:

1. **Hot-path cost** — ``Counter.inc`` and ``Histogram.observe`` are a
   lock acquisition plus integer arithmetic; no allocation, no sorting.
2. **Bounded memory** — a histogram is a fixed array of log-scale bucket
   counts plus exact count/sum/min/max, so a week-long server holds O(1)
   state per instrument (Prometheus-compatible cumulative buckets).
3. **Label support** — instruments are keyed by ``(name, labels)`` so the
   tracer can keep one duration histogram per span name
   (``span_seconds{name="service.predict"}``).

Percentile estimates interpolate inside one log-scale bucket. With the
default bucket growth factor of ``10**(1/12)`` (~21 % per bucket) the
documented worst-case relative error of ``percentile()`` is half a bucket,
about **11 %**; values outside the bucketed range (below 1e-9 s or above
1e5 s) clamp to the observed min/max.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_buckets",
    "quantile_from_counts",
]


def default_buckets(
    low: float = 1e-9, high: float = 1e5, per_decade: int = 12
) -> tuple[float, ...]:
    """Geometric bucket upper bounds covering ``[low, high]``.

    ``per_decade`` buckets per factor of ten gives a growth factor of
    ``10**(1/per_decade)`` and a worst-case percentile interpolation error
    of about half that step (~11 % at the default 12/decade).
    """
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got {low}..{high}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    start = math.floor(math.log10(low) * per_decade)
    stop = math.ceil(math.log10(high) * per_decade)
    return tuple(10 ** (e / per_decade) for e in range(start, stop + 1))


#: Shared default bounds: 1 ns .. ~10^5 s in 12 buckets per decade.
DEFAULT_BUCKETS = default_buckets()


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (e.g. queue depth), with a high-water."""

    __slots__ = ("name", "labels", "_value", "_high_water", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._high_water = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._value = value
            self._high_water = max(self._high_water, value)

    def adjust(self, delta) -> None:
        with self._lock:
            self._value += delta
            self._high_water = max(self._high_water, self._value)

    @property
    def value(self):
        return self._value

    @property
    def high_water(self):
        return self._high_water


class Histogram:
    """Fixed log-scale bucket histogram with exact count/sum/min/max.

    Memory is O(len(buckets)) forever; ``observe`` is a binary search plus
    two adds. Percentiles are interpolated within the winning bucket —
    accurate to about half a bucket width (see the module docstring for the
    default error bound), with the first/last buckets clamped to the exact
    observed min/max so ``percentile(0)``/``percentile(100)`` are exact.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: tuple = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        # One slot per bound plus the overflow (+Inf) slot.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Exact mean over every observation (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def state(self) -> dict:
        """Raw cumulative state for window-delta consumers (SLO monitor).

        A consistent copy of ``(counts, count, sum, min, max)`` taken under
        the lock; subtracting two states of the same histogram yields the
        observations that landed between them (see
        :func:`quantile_from_counts`).
        """
        with self._lock:
            return {
                "bounds": self.bounds,
                "counts": tuple(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th quantile (0.0-1.0) with log interpolation.

        Unlike :meth:`percentile` (linear inside the winning bucket), this
        interpolates *geometrically*, matching the log-scale bucket layout:
        the estimate for a uniform-in-log bucket is exact, and the
        worst-case relative error stays at half a bucket width regardless
        of where in the decade the value falls. The estimate is clamped to
        the observed ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in 0..1, got {q}")
        with self._lock:
            return quantile_from_counts(
                self.bounds, self._counts, q, self._min, self._max
            )

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0-100) from the buckets."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in 0..100, got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = (p / 100.0) * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lo = self.bounds[index - 1] if index > 0 else 0.0
                    hi = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self._max
                    )
                    # Clamp to the exact observed range so the estimate
                    # never leaves [min, max].
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi <= lo:
                        return lo
                    frac = (rank - cumulative) / bucket_count
                    return lo + (hi - lo) * min(1.0, max(0.0, frac))
                cumulative += bucket_count
            return self._max  # pragma: no cover — defensive

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        Trimmed to the buckets actually in range of the observations, with
        a final ``(inf, total)`` entry, so exposition stays compact.
        """
        with self._lock:
            pairs: list[tuple[float, int]] = []
            cumulative = 0
            for index, bound in enumerate(self.bounds):
                cumulative += self._counts[index]
                if (
                    self._max is not None
                    and bound >= self._min
                    and (index == 0 or self.bounds[index - 1] <= self._max)
                ):
                    pairs.append((bound, cumulative))
            pairs.append((math.inf, self._count))
            return pairs

    def snapshot(self) -> dict[str, float]:
        """count / mean / p50 / p95 / max in one dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


def quantile_from_counts(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    observed_min: Optional[float] = None,
    observed_max: Optional[float] = None,
) -> float:
    """The ``q``-th quantile of a bucketed sample, log-interpolated.

    ``counts`` has one slot per bound plus the overflow slot (the layout
    :meth:`Histogram.state` exposes); it may be a *delta* between two
    states of the same histogram, which is how the SLO monitor derives
    rolling quantiles from cumulative instruments. ``observed_min`` /
    ``observed_max`` (when known) clamp the estimate to the really-seen
    range; for window deltas they are simply the lifetime extremes, which
    keeps the clamp conservative.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in 0..1, got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            lo = bounds[index - 1] if index > 0 else 0.0
            hi = (
                bounds[index]
                if index < len(bounds)
                else (observed_max if observed_max is not None else bounds[-1])
            )
            if observed_min is not None:
                lo = max(lo, observed_min)
            if observed_max is not None:
                hi = min(hi, observed_max)
            if hi <= lo:
                return lo
            frac = min(1.0, max(0.0, (rank - cumulative) / bucket_count))
            if lo > 0:
                # Geometric interpolation: exact for mass uniform in log
                # space, which is the natural prior for log-scale buckets.
                return lo * (hi / lo) ** frac
            return lo + (hi - lo) * frac
        cumulative += bucket_count
    if observed_max is not None:
        return observed_max
    return bounds[-1]  # pragma: no cover — defensive


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create home for every instrument in one process (or subsystem).

    Instruments are identified by ``(name, labels)``; asking twice returns
    the same object, asking for the same name as a different kind raises.
    A ``namespace`` prefixes exported metric names (``service_requests``)
    without touching in-code names.
    """

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple], object] = {}

    def _get_or_create(self, kind, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            instrument = kind(name, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument

    @staticmethod
    def _merge(labels: Optional[dict], kwargs: dict) -> dict:
        return {**(labels or {}), **kwargs}

    def counter(
        self, name: str, labels: Optional[dict] = None, **label_kwargs
    ) -> Counter:
        return self._get_or_create(
            Counter, name, self._merge(labels, label_kwargs)
        )

    def gauge(
        self, name: str, labels: Optional[dict] = None, **label_kwargs
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, self._merge(labels, label_kwargs)
        )

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[dict] = None,
        **label_kwargs,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, self._merge(labels, label_kwargs), buckets=buckets
        )

    def collect(self) -> list:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            return [
                self._instruments[key] for key in sorted(self._instruments)
            ]

    def snapshot(self) -> dict:
        """JSON-friendly dump: ``name{label=value}`` -> value / histogram dict."""
        out: dict = {}
        for instrument in self.collect():
            key = instrument.name
            if instrument.labels:
                rendered = ",".join(f"{k}={v}" for k, v in instrument.labels)
                key = f"{key}{{{rendered}}}"
            if isinstance(instrument, Counter):
                out[key] = instrument.value
            elif isinstance(instrument, Gauge):
                out[key] = instrument.value
                out[f"{key}.high_water"] = instrument.high_water
            else:
                out[key] = instrument.snapshot()
        return out

    def reset(self) -> None:
        """Drop every instrument (tests; never during serving)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __iter__(self) -> Iterable:
        return iter(self.collect())
