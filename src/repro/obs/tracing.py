"""Span-based tracing with context propagation and correlation IDs.

A *span* is one timed stage of work (``with obs.span("campaign.run",
benchmark="BT"): ...``). Spans nest through a :mod:`contextvars` variable,
so the current span follows the logical request even across ``await``-less
thread handoffs when the parent context is captured explicitly:

* :func:`current_context` captures ``(trace_id, span_id)`` where a request
  leaves one thread (e.g. when the service batcher registers a flight);
* :func:`use_context` re-establishes it where the work resumes (the
  dispatcher or worker thread), so the spans recorded there join the same
  trace.

Every finished span is (1) appended to the process tracer's bounded ring
buffer (for the Chrome-trace exporter) and (2) recorded into the global
registry as a ``span_seconds{name=...}`` histogram (for ``repro metrics``
and the TCP ``metrics`` command).

Correlation IDs: :func:`correlation` pins an externally supplied request ID
(the wire protocol's ``"id"`` field) on the context; root spans adopt it as
their trace ID and :func:`repro.obs.logging.log` stamps it on every line.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, NamedTuple, Optional

from repro.obs import profile as _profile

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "span",
    "current_span",
    "current_context",
    "use_context",
    "correlation",
    "correlation_id",
]

_CURRENT: ContextVar[Optional["SpanContext"]] = ContextVar(
    "repro_obs_span", default=None
)
_CORRELATION: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_correlation", default=None
)

_ids = itertools.count(1)


def _next_id(prefix: str) -> str:
    return f"{prefix}{next(_ids):x}"


class SpanContext(NamedTuple):
    """The propagatable identity of a span: which trace, which parent."""

    trace_id: str
    span_id: str


@dataclass(slots=True)
class Span:
    """One finished (or in-flight) timed stage."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    thread_id: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)


class Tracer:
    """Bounded ring buffer of finished spans (oldest dropped first)."""

    def __init__(self, max_spans: int = 10_000):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._dropped = 0
        self._lock = threading.Lock()

    def record(self, finished: Span) -> None:
        with self._lock:
            if len(self._spans) == self.max_spans:
                self._dropped += 1
            self._spans.append(finished)

    def spans(self) -> list[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring buffer since the last clear."""
        return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())


@contextmanager
def correlation(corr_id: Optional[str]):
    """Bind an external request/correlation ID to the current context."""
    token = _CORRELATION.set(str(corr_id) if corr_id is not None else None)
    try:
        yield corr_id
    finally:
        _CORRELATION.reset(token)


def correlation_id() -> Optional[str]:
    """The correlation ID bound to the current context, if any."""
    return _CORRELATION.get()


def current_span() -> Optional[SpanContext]:
    """The context of the innermost open span, if any."""
    return _CURRENT.get()


def current_context() -> Optional[SpanContext]:
    """Capture the propagatable context (for cross-thread handoff)."""
    return _CURRENT.get()


@contextmanager
def use_context(context: Optional[SpanContext]):
    """Adopt a captured :class:`SpanContext` as the current parent."""
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


# The obs package re-exports this module, so it cannot be imported at the
# top; it is resolved once on first use and cached.
_obs = None


def _obs_module():
    global _obs
    if _obs is None:
        from repro import obs

        _obs = obs
    return _obs


# Per-name span histogram cache: (registry, histogram), revalidated by
# registry identity so obs.reset() (a fresh registry) invalidates it.
_span_hists: dict[str, tuple] = {}


def _span_histogram(registry, name: str):
    cached = _span_hists.get(name)
    if cached is not None and cached[0] is registry:
        return cached[1]
    histogram = registry.histogram("span_seconds", labels={"name": name})
    _span_hists[name] = (registry, histogram)
    return histogram


class _SpanScope:
    """Hand-rolled context manager — the ``@contextmanager`` generator
    machinery costs a few microseconds per use, which matters on paths
    entered per request."""

    __slots__ = ("_name", "_attrs", "_span", "_token")

    def __init__(self, name: str, attrs: dict):
        self._name = name
        self._attrs = attrs
        self._span = None

    def __enter__(self) -> Optional[Span]:
        obs = _obs_module()
        if not obs.enabled():
            return None
        parent = _CURRENT.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = _CORRELATION.get() or _next_id("t")
            parent_id = None
        self._span = open_span = Span(
            name=self._name,
            trace_id=trace_id,
            span_id=_next_id("s"),
            parent_id=parent_id,
            start=time.perf_counter(),
            thread_id=threading.get_ident(),
            attrs=self._attrs,
        )
        self._token = _CURRENT.set(SpanContext(trace_id, open_span.span_id))
        # Profiler attribution: while a sampling profiler is installed,
        # tell it which span is active on this thread. The ``is None``
        # check is the entire disabled-path cost.
        if _profile._active is not None:
            _profile._span_push(open_span.thread_id, self._name)
        return open_span

    def __exit__(self, exc_type, exc, tb) -> bool:
        open_span = self._span
        if open_span is None:
            return False
        if _profile._active is not None:
            _profile._span_pop(open_span.thread_id)
        _CURRENT.reset(self._token)
        open_span.end = time.perf_counter()
        obs = _obs_module()
        obs.get_tracer().record(open_span)
        _span_histogram(obs.get_registry(), open_span.name).observe(
            open_span.duration
        )
        return False


def span(name: str, **attrs) -> _SpanScope:
    """Time a stage; record it in the tracer and the span histogram.

    Cheap no-op when observability is disabled (see
    :func:`repro.obs.disable`). The value yielded by ``with`` is the open
    :class:`Span` (or ``None`` when disabled), whose ``attrs`` may be
    extended before exit.
    """
    return _SpanScope(name, attrs)
