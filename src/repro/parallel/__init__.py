"""Parallel campaign execution and the content-addressed simulation memo.

Reproducing a full table suite means simulating many independent
(benchmark, class, nprocs) cells. This package makes that fast twice over:

* :mod:`repro.parallel.memo` — a process-safe, content-addressed on-disk
  store (:class:`SimulationMemoStore`) keyed by digests from
  :mod:`repro.parallel.keys`; any already-simulated measurement or
  application run is replayed from disk instead of re-simulated.
* :mod:`repro.parallel.executor` / :mod:`repro.parallel.worker` — sweep
  cells fanned out across a ``ProcessPoolExecutor`` with a deterministic
  merge back into submission order and observability counters carried
  across the pool boundary.

The correctness bedrock is REP001: the simulation tier is deterministic,
so equal cache keys imply bit-identical results, and serial, parallel, and
cache-warm runs all produce the same numbers (tier-1 tests assert this).
"""

from repro.parallel.executor import execute_cells
from repro.parallel.keys import (
    SCHEMA_VERSION,
    application_key,
    canonical_json,
    cell_key,
    config_fingerprint,
    digest,
    measurement_key,
)
from repro.parallel.memo import SimulationMemoStore
from repro.parallel.worker import (
    CellResult,
    CellSpec,
    measure_chain,
    prime_runner_overhead,
    run_application,
    run_cell,
)

__all__ = [
    "SCHEMA_VERSION",
    "SimulationMemoStore",
    "CellResult",
    "CellSpec",
    "application_key",
    "canonical_json",
    "cell_key",
    "config_fingerprint",
    "digest",
    "execute_cells",
    "measure_chain",
    "measurement_key",
    "prime_runner_overhead",
    "run_application",
    "run_cell",
]
