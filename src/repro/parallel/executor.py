"""Fan sweep cells across processes, merge results deterministically.

:func:`execute_cells` is the one entry point: given an ordered list of
:class:`~repro.parallel.worker.CellSpec`, it returns the matching
:class:`~repro.parallel.worker.CellResult` list *in submission order*
regardless of which worker finished first — the caller's ConfigResult
ordering (and therefore every table row) is identical to a serial run.

Observability crosses the pool boundary as data: each worker reports its
counter deltas, which are merged into the parent registry here, and each
cell's wall time feeds the ``parallel_cell_seconds`` histogram.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Sequence

from repro import obs
from repro.parallel.worker import CellResult, CellSpec, run_cell

__all__ = ["execute_cells"]


def _merge_counters(result: CellResult) -> None:
    registry = obs.get_registry()
    for name, labels, delta in result.counters:
        registry.counter(name, dict(labels)).inc(delta)


def _record(result: CellResult) -> None:
    obs.get_registry().histogram("parallel_cell_seconds").observe(
        result.duration
    )
    obs.log(
        "parallel.cell_done",
        benchmark=result.benchmark,
        cls=result.problem_class,
        nprocs=result.nprocs,
        duration=f"{result.duration:.3f}",
    )


def execute_cells(
    specs: Sequence[CellSpec], jobs: int = 1
) -> list[CellResult]:
    """Run every cell, serially or across ``jobs`` worker processes.

    ``jobs <= 1`` (or a single spec) runs inline — same code path the
    workers use, so the results are identical by construction.
    """
    specs = list(specs)
    if jobs <= 1 or len(specs) <= 1:
        results = [run_cell(spec) for spec in specs]
        for result in results:
            _record(result)
        return results
    ordered: list[CellResult] = [None] * len(specs)  # type: ignore[list-item]
    with obs.span("parallel.execute", cells=len(specs), jobs=jobs):
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(specs))
        ) as pool:
            index_of = {
                pool.submit(run_cell, spec): i
                for i, spec in enumerate(specs)
            }
            pending = set(index_of)
            while pending:
                done, pending = wait(
                    pending, timeout=600.0, return_when=FIRST_COMPLETED
                )
                for future in done:
                    result = future.result(timeout=600.0)
                    ordered[index_of[future]] = result
                    _merge_counters(result)
                    _record(result)
    return ordered
