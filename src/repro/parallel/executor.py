"""Fan sweep cells across processes, merge results deterministically.

:func:`execute_cells` is the one entry point: given an ordered list of
:class:`~repro.parallel.worker.CellSpec`, it returns the matching
:class:`~repro.parallel.worker.CellResult` list *in submission order*
regardless of which worker finished first — the caller's ConfigResult
ordering (and therefore every table row) is identical to a serial run.

Observability crosses the pool boundary as data: each worker reports its
counter deltas, which are merged into the parent registry here, its
sampling profile (when the campaign is profiled), which is absorbed into
the parent's active profiler, and each cell's wall time feeds the
``parallel_cell_seconds`` histogram.

Worker death is survivable: when the pool breaks (a worker segfaults or is
OOM-killed mid-cell), the executor rebuilds the pool and resubmits exactly
the cells that have no result yet — completed cells are never re-run, and
because cells are deterministic (REP001) a re-run produces the same floats
the lost attempt would have. Counter deltas only merge from *completed*
results, so a killed attempt contributes nothing and the respawned
attempt contributes exactly once. Each rebuild increments the
``parallel_worker_respawns`` counter; ``max_respawns`` bounds the retries
before the underlying ``BrokenProcessPool`` propagates.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro import obs
from repro.parallel.worker import CellResult, CellSpec, run_cell

__all__ = ["execute_cells"]


def _merge_counters(result: CellResult) -> None:
    obs.merge_counter_deltas(result.counters)


def _record(result: CellResult) -> None:
    obs.get_registry().histogram("parallel_cell_seconds").observe(
        result.duration
    )
    obs.log(
        "parallel.cell_done",
        benchmark=result.benchmark,
        cls=result.problem_class,
        nprocs=result.nprocs,
        duration=f"{result.duration:.3f}",
    )


def _drain(
    specs: Sequence[CellSpec],
    indices: Sequence[int],
    ordered: list,
    jobs: int,
    run: Callable[[CellSpec], CellResult],
) -> None:
    """Run the given spec indices on one fresh pool, merging as they land.

    Raises :class:`BrokenProcessPool` if a worker dies; ``ordered`` then
    holds every result that completed before the break, so the caller can
    compute what is left to resubmit.
    """
    with ProcessPoolExecutor(max_workers=min(jobs, len(indices))) as pool:
        index_of = {pool.submit(run, specs[i]): i for i in indices}
        pending = set(index_of)
        while pending:
            done, pending = wait(
                pending, timeout=600.0, return_when=FIRST_COMPLETED
            )
            for future in done:
                result = future.result(timeout=600.0)
                ordered[index_of[future]] = result
                _merge_counters(result)
                obs.merge_child_profile(result.profile)
                _record(result)


def execute_cells(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    max_respawns: int = 2,
    _run: Callable[[CellSpec], CellResult] = run_cell,
) -> list[CellResult]:
    """Run every cell, serially or across ``jobs`` worker processes.

    ``jobs <= 1`` (or a single spec) runs inline — same code path the
    workers use, so the results are identical by construction. ``_run`` is
    a test seam for injecting worker behaviour (e.g. a self-killing cell);
    it must stay a picklable module-level callable (REP007).
    """
    specs = list(specs)
    if jobs <= 1 or len(specs) <= 1:
        results = [_run(spec) for spec in specs]
        for result in results:
            _record(result)
        return results
    ordered: list[CellResult] = [None] * len(specs)  # type: ignore[list-item]
    respawns = 0
    with obs.span("parallel.execute", cells=len(specs), jobs=jobs):
        remaining = list(range(len(specs)))
        while remaining:
            try:
                _drain(specs, remaining, ordered, jobs, _run)
                remaining = []
            except BrokenProcessPool:
                remaining = [
                    i for i in range(len(specs)) if ordered[i] is None
                ]
                respawns += 1
                obs.get_registry().counter("parallel_worker_respawns").inc()
                obs.log(
                    "parallel.pool_respawn",
                    attempt=respawns,
                    lost_cells=len(remaining),
                )
                if respawns > max_respawns or not remaining:
                    raise
    return ordered
