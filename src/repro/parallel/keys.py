"""Content-addressed identities for memoized simulation results.

Every record in the :class:`~repro.parallel.memo.SimulationMemoStore` is
named by a SHA-256 digest of a *key description*: a canonical JSON object
spelling out everything the simulated number depends on — the full machine
configuration, the measurement protocol (repetitions, contexts, noise
seed), the benchmark/class/nprocs cell, and the kernel chain (or the
application-run parameters). REP001 guarantees the simulation tier is
deterministic, so two runs with equal keys produce bit-identical samples —
which is exactly what makes the digest a safe substitute for re-simulating.

Three key kinds exist:

* ``measurement`` — one :meth:`ChainRunner.measure` result (samples +
  overhead) for a specific kernel window;
* ``application`` — one :meth:`ApplicationRunner.run` total time;
* ``cell`` — a whole sweep cell (prediction inputs + actual), the unit the
  parallel executor and the serving engine skip work on.

Bumping :data:`SCHEMA_VERSION` invalidates every existing entry at once —
do that whenever the simulator's numeric behaviour changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping, Sequence

from repro.instrument.runner import MeasurementConfig
from repro.simmachine.machine import MachineConfig

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "config_fingerprint",
    "measurement_key",
    "application_key",
    "cell_key",
    "digest",
]

#: Bump to invalidate every memoized simulation at once (numeric changes).
#: v2: cell keys carry the producing tier, so analytic-tier artifacts can
#: never shadow simulation ground truth under the same address.
SCHEMA_VERSION = 2


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, plain floats."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: Any) -> dict:
    """A frozen dataclass (MachineConfig/MeasurementConfig) as plain JSON."""
    return dataclasses.asdict(config)


def measurement_key(
    machine: MachineConfig,
    measurement: MeasurementConfig,
    benchmark: str,
    problem_class: str,
    nprocs: int,
    kernels: Sequence[str],
) -> dict:
    """Identity of one chain (or isolated-kernel) measurement."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "measurement",
        "machine": config_fingerprint(machine),
        "measurement": config_fingerprint(measurement),
        "benchmark": benchmark,
        "problem_class": problem_class,
        "nprocs": nprocs,
        "kernels": list(kernels),
    }


def application_key(
    machine: MachineConfig,
    benchmark: str,
    problem_class: str,
    nprocs: int,
    seed: int,
    warmup_iterations: int = 2,
    measured_iterations: int = 6,
) -> dict:
    """Identity of one full application run (the tables' "Actual")."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "application",
        "machine": config_fingerprint(machine),
        "benchmark": benchmark,
        "problem_class": problem_class,
        "nprocs": nprocs,
        "seed": seed,
        "warmup_iterations": warmup_iterations,
        "measured_iterations": measured_iterations,
    }


def cell_key(
    machine: MachineConfig,
    measurement: MeasurementConfig,
    benchmark: str,
    problem_class: str,
    nprocs: int,
    chain_lengths: Sequence[int],
    application_seed: int,
    tier: str = "simulation",
) -> dict:
    """Identity of a whole sweep cell (inputs for every predictor + actual).

    ``tier`` names the serving-ladder rung that produced the numbers; it is
    part of the canonical key material so results from different rungs
    (analytic closed forms vs discrete-event simulation) occupy distinct
    addresses in the memo store.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "cell",
        "machine": config_fingerprint(machine),
        "measurement": config_fingerprint(measurement),
        "benchmark": benchmark,
        "problem_class": problem_class,
        "nprocs": nprocs,
        "chain_lengths": sorted(set(int(length) for length in chain_lengths)),
        "application_seed": application_seed,
        "tier": str(tier),
    }


def digest(key: Mapping[str, Any]) -> str:
    """The content address: SHA-256 over the canonical key JSON."""
    return hashlib.sha256(canonical_json(dict(key)).encode("utf-8")).hexdigest()
