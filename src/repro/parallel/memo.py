"""Process-safe, content-addressed on-disk store for simulation results.

Layout mirrors :class:`repro.instrument.database.PerformanceDatabase`'s
defensive posture — checksum on write, verify on read, purge on corruption
— but the unit here is one memoized simulation payload, named by the
SHA-256 digest of its :mod:`repro.parallel.keys` description:

    <root>/<digest[:2]>/<digest>.json

Each file wraps the payload with the schema version, the full key (so a
digest collision or stale file is detected by comparison, not trusted),
and a CRC-32 checksum of the canonical payload JSON. Writes go through a
unique temp file + :func:`os.replace`, which is atomic on POSIX, so
concurrent workers racing on the same digest simply last-write-wins with
identical bytes (REP001 determinism means equal keys produce equal
payloads). Any unreadable, mismatched, or checksum-failing entry is
deleted on sight and reported as a miss — the next simulation heals it.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Any, Mapping, Optional

from repro import obs
from repro.parallel.keys import SCHEMA_VERSION, canonical_json, digest

__all__ = ["SimulationMemoStore"]


def _payload_checksum(payload: Any) -> int:
    return zlib.crc32(canonical_json(payload).encode("utf-8"))


class SimulationMemoStore:
    """Sharded-JSON memo store keyed by content digests.

    Thread-safe for in-process counters; cross-process safety comes from
    atomic ``os.replace`` writes plus verify-on-read, not file locks.
    """

    def __init__(self, root: str | os.PathLike[str]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._corruptions = 0

    # -- paths ------------------------------------------------------------

    def path_for(self, key: Mapping[str, Any]) -> Path:
        d = digest(key)
        return self.root / d[:2] / f"{d}.json"

    # -- read -------------------------------------------------------------

    def get(self, key: Mapping[str, Any]) -> Optional[Any]:
        """The memoized payload for ``key``, or None on miss.

        Every failure mode — missing file, unparsable JSON, schema or key
        mismatch, checksum failure — is a miss; corrupt files are removed
        so the store self-heals on the next :meth:`put`.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._miss()
            return None
        except OSError:
            self._purge(path, "unreadable")
            return None
        try:
            wrapper = json.loads(raw)
            payload = wrapper["payload"]
            # Compare keys as canonical JSON: the stored key went through a
            # JSON round-trip (tuples became lists), the queried one didn't.
            ok = (
                wrapper["schema"] == SCHEMA_VERSION
                and canonical_json(wrapper["key"]) == canonical_json(dict(key))
                and wrapper["checksum"] == _payload_checksum(payload)
            )
        except (json.JSONDecodeError, KeyError, TypeError):
            self._purge(path, "unparsable")
            return None
        if not ok:
            self._purge(path, "verification failed")
            return None
        with self._lock:
            self._hits += 1
        obs.get_registry().counter("parallel_memo_hits").inc()
        return payload

    # -- write ------------------------------------------------------------

    def put(self, key: Mapping[str, Any], payload: Any) -> None:
        """Store ``payload`` under ``key`` atomically (last write wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        wrapper = {
            "schema": SCHEMA_VERSION,
            "key": dict(key),
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_text(
            json.dumps(wrapper, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        with self._lock:
            self._stores += 1
        obs.get_registry().counter("parallel_memo_stores").inc()

    # -- stats ------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "corruptions": self._corruptions,
            }

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    # -- internals --------------------------------------------------------

    def _miss(self) -> None:
        with self._lock:
            self._misses += 1
        obs.get_registry().counter("parallel_memo_misses").inc()

    def _purge(self, path: Path, reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        with self._lock:
            self._corruptions += 1
            self._misses += 1
        obs.get_registry().counter("parallel_memo_corruption_detected").inc()
        obs.get_registry().counter("parallel_memo_misses").inc()
        obs.log("memo.corruption_detected", path=str(path), reason=reason)
