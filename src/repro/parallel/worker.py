"""Per-cell campaign work, shaped for cross-process execution.

A sweep cell — one (benchmark, problem class, nprocs) configuration plus
the chain lengths to measure — is described by the frozen, fully picklable
:class:`CellSpec` and executed by the module-level :func:`run_cell`, which
the executor can hand to a ``ProcessPoolExecutor`` directly (REP007 keeps
lambdas and captured locks out of that path). The result travels back as
:class:`CellResult`: plain JSON-ready data (prediction inputs via
:meth:`PredictionInputs.to_dict`), never live runner or machine objects.

The memo-aware measurement helpers here (:func:`measure_chain`,
:func:`run_application`, :func:`prime_runner_overhead`) are shared with the
serial path in :class:`repro.experiments.pipeline.ExperimentPipeline`, so
a cache hit replays the exact floats a fresh simulation would produce
(REP001 determinism) and serial, parallel, and warm-cache runs stay
bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import faults, obs
from repro.core.kernel import ControlFlow
from repro.core.predictor import PredictionInputs
from repro.errors import ExperimentError
from repro.instrument.runner import (
    ApplicationRunner,
    ChainRunner,
    Measurement,
    MeasurementConfig,
)
from repro.npb import make_benchmark
from repro.parallel.keys import application_key, measurement_key
from repro.parallel.memo import SimulationMemoStore
from repro.simmachine.machine import MachineConfig

__all__ = [
    "CellSpec",
    "CellResult",
    "run_cell",
    "measure_chain",
    "run_application",
    "prime_runner_overhead",
]


@dataclass(frozen=True)
class CellSpec:
    """Everything a worker process needs to simulate one sweep cell.

    Deliberately value-only: configs are frozen dataclasses, the memo store
    is referenced by its directory (each worker opens its own handle), and
    the fault plan rides along as data so workers re-install it locally.
    """

    benchmark: str
    problem_class: str
    nprocs: int
    chain_lengths: tuple[int, ...]
    machine: MachineConfig
    measurement: MeasurementConfig
    application_seed: int = 7
    cache_dir: Optional[str] = None
    fault_plan: Optional[faults.FaultPlan] = None
    #: When the parent campaign is being profiled, workers run their own
    #: thread-backend sampler at this interval and ship the profile home.
    profile_interval: Optional[float] = None


@dataclass(frozen=True)
class CellResult:
    """One simulated cell, reduced to plain data for the trip home.

    ``counters`` carries the worker's observability counter *deltas*
    (name, label items, amount) so the parent can merge them into its own
    registry; ``inputs`` round-trips through
    :meth:`PredictionInputs.from_dict`.
    """

    benchmark: str
    problem_class: str
    nprocs: int
    chain_lengths: tuple[int, ...]
    actual: float
    inputs: dict
    memo_stats: dict
    counters: tuple[tuple[str, tuple, int], ...]
    duration: float
    #: ``ProfileData.to_dict()`` of the worker's sampler when the parent
    #: asked for profiling (``CellSpec.profile_interval``), else ``None``.
    profile: Optional[dict] = None


# -- memo-aware measurement helpers (shared with the serial pipeline) -----


def prime_runner_overhead(
    runner: ChainRunner, store: Optional[SimulationMemoStore]
) -> None:
    """Load (or memoize) the runner's empty-loop overhead via the store."""
    if store is None or not runner.config.subtract_overhead:
        return
    bench = runner.benchmark
    key = measurement_key(
        runner.machine_config,
        runner.config,
        bench.name,
        bench.size.problem_class,
        bench.nprocs,
        (),
    )
    hit = store.get(key)
    if hit is not None:
        runner.prime_overhead(hit["overhead"])
    else:
        store.put(key, {"overhead": runner.measure_overhead()})


def measure_chain(
    runner: ChainRunner,
    kernels: Sequence[str],
    store: Optional[SimulationMemoStore],
) -> Measurement:
    """``runner.measure(kernels)`` with the memo store consulted first.

    Hits reconstruct the post-subtraction :class:`Measurement` (samples +
    overhead) without counters — callers on the prediction path only
    consume ``.mean``, and JSON round-trips the floats exactly.
    """
    if store is None:
        return runner.measure(kernels)
    bench = runner.benchmark
    key = measurement_key(
        runner.machine_config,
        runner.config,
        bench.name,
        bench.size.problem_class,
        bench.nprocs,
        kernels,
    )
    hit = store.get(key)
    if hit is not None:
        return Measurement(
            benchmark=bench.name,
            problem_class=bench.size.problem_class,
            nprocs=bench.nprocs,
            kernels=tuple(kernels),
            samples=tuple(hit["samples"]),
            overhead=hit["overhead"],
        )
    measured = runner.measure(kernels)
    store.put(
        key,
        {"samples": list(measured.samples), "overhead": measured.overhead},
    )
    return measured


def run_application(
    runner: ApplicationRunner, store: Optional[SimulationMemoStore]
) -> float:
    """The application's total time, memoized on its full identity."""
    if store is None:
        return runner.run().total_time
    bench = runner.benchmark
    key = application_key(
        runner.machine_config,
        bench.name,
        bench.size.problem_class,
        bench.nprocs,
        runner.seed,
        runner.warmup_iterations,
        runner.measured_iterations,
    )
    hit = store.get(key)
    if hit is not None:
        return hit["total_time"]
    total = runner.run().total_time
    store.put(key, {"total_time": total})
    return total


# -- the worker entry point ------------------------------------------------


def run_cell(spec: CellSpec) -> CellResult:
    """Simulate one sweep cell; safe to call in a worker process.

    Re-installs the spec's fault plan (process-global state does not cross
    the pool boundary), opens the memo store by path, and measures exactly
    what :meth:`ExperimentPipeline.config_result` would: isolated loop
    kernels, one-shot pre/post kernels, every chain window of every
    requested length, and the full application.
    """
    if spec.fault_plan is not None and faults.get_injector() is None:
        faults.install(spec.fault_plan)
    store = (
        SimulationMemoStore(spec.cache_dir)
        if spec.cache_dir is not None
        else None
    )
    profiler = None
    if spec.profile_interval is not None and obs.profiler_active() is None:
        # Thread backend: pool workers may not own a usable ITIMER slot,
        # and the thread sampler behaves identically under fork and spawn.
        profiler = obs.SamplingProfiler(
            interval=spec.profile_interval, backend="thread"
        ).start()
    before = obs.counter_snapshot()
    start = time.perf_counter()
    bench = make_benchmark(spec.benchmark, spec.problem_class, spec.nprocs)
    flow = ControlFlow(bench.loop_kernel_names)
    for length in spec.chain_lengths:
        if not 2 <= length <= len(flow):
            raise ExperimentError(
                f"chain length {length} invalid for {spec.benchmark} "
                f"(flow of {len(flow)})"
            )
    runner = ChainRunner(bench, spec.machine, spec.measurement)
    prime_runner_overhead(runner, store)
    try:
        with obs.span(
            "parallel.cell",
            benchmark=spec.benchmark,
            cls=spec.problem_class,
            nprocs=spec.nprocs,
        ):
            isolated = {
                k: measure_chain(runner, (k,), store).mean for k in flow.names
            }
            pre = {
                k: measure_chain(runner, (k,), store).mean
                for k in bench.pre_kernel_names
            }
            post = {
                k: measure_chain(runner, (k,), store).mean
                for k in bench.post_kernel_names
            }
            chains: dict[tuple[str, ...], float] = {}
            for length in spec.chain_lengths:
                for window in flow.windows(length):
                    if window not in chains:
                        chains[window] = measure_chain(
                            runner, window, store
                        ).mean
            actual = run_application(
                ApplicationRunner(
                    bench, spec.machine, seed=spec.application_seed
                ),
                store,
            )
    finally:
        # Always uninstall, even on a raising cell — a pool worker is
        # reused for the next cell and must come back profiler-free.
        profile_data = profiler.stop() if profiler is not None else None
    inputs = PredictionInputs(
        flow=flow,
        iterations=bench.iterations,
        loop_times=isolated,
        pre_times=pre,
        post_times=post,
        chain_times=chains,
    )
    return CellResult(
        benchmark=spec.benchmark,
        problem_class=spec.problem_class,
        nprocs=spec.nprocs,
        chain_lengths=tuple(spec.chain_lengths),
        actual=actual,
        inputs=inputs.to_dict(),
        memo_stats=store.stats() if store is not None else {},
        counters=obs.counter_deltas(before),
        duration=time.perf_counter() - start,
        profile=(
            profile_data.to_dict() if profile_data is not None else None
        ),
    )
