"""Prediction serving: batching, caching, single-flight, worker pool.

The one-shot predictor stack answers "how long will BT class W on 9
processors take?" by re-simulating the full measurement protocol every
time. This subsystem turns that into a long-lived service:

* :class:`~repro.service.engine.PredictionService` — the engine: accepts
  :class:`~repro.service.engine.PredictRequest` objects, returns
  :class:`~repro.core.predictor.PredictionReport` objects;
* :mod:`~repro.service.cache` — two-tier cache: in-process report LRU
  (with TTL) over the persistent Prophesy-style measurement database;
* :mod:`~repro.service.batching` — single-flight deduplication of
  identical in-flight requests plus coalescing of distinct ones into
  per-configuration measurement plans;
* :mod:`~repro.service.workers` — a bounded ``concurrent.futures`` pool
  (threads or processes) running the simulations, with
  reject-with-retry-after backpressure;
* :mod:`~repro.service.metrics` — counters and latency histograms behind
  :meth:`~repro.service.engine.PredictionService.stats`;
* :mod:`~repro.service.api` — the :class:`~repro.service.api.ServiceClient`
  facade and the JSON-lines / TCP front-ends behind ``repro serve``;
* :mod:`~repro.service.shard` — the consistent-hash ring and the
  shared-nothing shard process group behind ``repro serve --shards N``;
* :mod:`~repro.service.frontend` — the asyncio frontend that routes,
  admits, and fails over across the shard group.

Quickstart::

    from repro.service import PredictionService, PredictRequest

    with PredictionService(db_path="perf.sqlite") as service:
        report = service.predict(PredictRequest("BT", "W", 9, chain_length=3))
        print(report.errors(), service.stats()["cache_hit_ratio"])
"""

from repro.service.api import (
    RetryPolicy,
    ServiceClient,
    counters_payload,
    error_dict,
    handle_line,
    metrics_payload,
    serve_jsonl,
    serve_socket,
)
from repro.service.batching import RequestBatcher
from repro.service.cache import LRUCache, TieredPredictionCache
from repro.service.engine import PredictRequest, PredictionService
from repro.service.frontend import LineClient, ShardFrontend, ShardedServer
from repro.service.metrics import ServiceMetrics, render_stats
from repro.service.shard import (
    HashRing,
    HotCellTracker,
    InProcessShardManager,
    ProcessShardManager,
    ShardServiceConfig,
    make_shard_configs,
    route_key,
)
from repro.service.workers import CellTask, WorkerPool, execute_cell

__all__ = [
    "CellTask",
    "HashRing",
    "HotCellTracker",
    "InProcessShardManager",
    "LRUCache",
    "LineClient",
    "PredictRequest",
    "PredictionService",
    "ProcessShardManager",
    "RequestBatcher",
    "RetryPolicy",
    "ServiceClient",
    "ServiceMetrics",
    "ShardFrontend",
    "ShardServiceConfig",
    "ShardedServer",
    "TieredPredictionCache",
    "WorkerPool",
    "counters_payload",
    "error_dict",
    "execute_cell",
    "handle_line",
    "make_shard_configs",
    "metrics_payload",
    "render_stats",
    "route_key",
    "serve_jsonl",
    "serve_socket",
]
