"""Client facade and wire front-ends for the prediction service.

Three ways in:

* :class:`ServiceClient` — a thread-safe in-process facade with a
  keyword-friendly ``predict()`` signature;
* :func:`serve_jsonl` — a JSON-lines request/response loop over any pair of
  text streams (the ``repro serve`` CLI runs it over stdin/stdout), for
  piping and load testing;
* :func:`serve_socket` — the same line protocol over TCP
  (``repro serve --port N``), one thread per connection.

The line protocol: each input line is either a request object
(``{"benchmark": "BT", "problem_class": "W", "nprocs": 4, ...}``), an array
of request objects (answered as one batched response), or a command object
(``{"cmd": "stats"}``, ``{"cmd": "metrics"}`` — the ``GET /metrics``
analogue, answering a Prometheus text exposition plus a JSON snapshot of
every registry — ``{"cmd": "slo"}``, answering a rolling SLO judgement
with per-tier p50/p95/p99 and error-budget burn — or ``{"cmd":
"counters"}``, the raw cumulative counters the sharded frontend polls for
its cross-process delta merge). Every line gets exactly one JSON
response line with an ``"ok"`` field; saturation rejections carry
``"retry_after"``.

Correlation: any request object may carry an ``"id"`` field. It is echoed
verbatim in the response, bound as the obs correlation ID for the
request's spans, and stamped on the structured log lines — so one grep
ties a wire request to its dispatch, worker cell, and simulator runs.
"""

from __future__ import annotations

import json
import random
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, TextIO

from repro import faults, obs
from repro.core.predictor import PredictionReport
from repro.errors import (
    ClientDisconnectError,
    ConfigurationError,
    ReproError,
    ServiceDegradedError,
    ServiceSaturatedError,
    WorkerCrashError,
)
from repro.service.engine import PredictRequest, PredictionService

__all__ = [
    "RetryPolicy",
    "ServiceClient",
    "report_to_dict",
    "error_dict",
    "metrics_payload",
    "slo_payload",
    "counters_payload",
    "handle_line",
    "serve_jsonl",
    "serve_socket",
]


def report_to_dict(
    request: PredictRequest,
    report: PredictionReport,
    degraded: bool = False,
) -> dict[str, Any]:
    """Wire form of one successful prediction.

    ``degraded=True`` flags a response served while the worker pool is
    unhealthy (a cache hit in cache-only mode) so clients can tell a
    possibly-stale answer from a fully healthy one.
    """
    payload = {
        "ok": True,
        "request": request.to_dict(),
        "actual": report.actual,
        "predictions": dict(report.predictions),
        "errors_percent": report.errors(),
        "best": report.best(),
        "tier": report.tier,
    }
    if degraded:
        payload["degraded"] = True
    return payload


def error_dict(exc: Exception) -> dict[str, Any]:
    """Wire form of one failed exchange (the error taxonomy on the wire).

    Shared by every front-end — including the sharded frontend, which
    synthesizes these for requests it sheds or loses to a dead shard — so
    clients see one error shape regardless of topology.
    """
    payload: dict[str, Any] = {
        "ok": False,
        "error": str(exc),
        "error_type": type(exc).__name__,
    }
    if isinstance(exc, ServiceSaturatedError):
        payload["retry_after"] = exc.retry_after
    if isinstance(exc, ServiceDegradedError):
        payload["degraded"] = True
    return payload


_error_dict = error_dict


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + deterministic jitter.

    Governs :class:`ServiceClient` behaviour on *transient* failures —
    saturation rejections and worker crashes. Timeouts and degraded-mode
    rejections are **not** retried: a deadline already spent the caller's
    budget, and degraded mode will not heal within one backoff.

    The delay before retry ``k`` (1-based) is
    ``min(max_delay, base_delay * 2**(k-1))`` stretched by a jitter factor
    in ``[1, 1 + jitter]`` drawn from a ``seed``-keyed stream, except that
    a saturation rejection's ``retry_after`` hint takes precedence when it
    is larger.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")

    def delays(self) -> Iterable[float]:
        """The backoff sequence for one request (len == max_attempts - 1)."""
        rng = random.Random(self.seed)
        for attempt in range(1, self.max_attempts):
            delay = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
            yield delay * (1.0 + self.jitter * rng.random())


#: Transient failures :class:`ServiceClient` retries under its policy.
_RETRYABLE = (ServiceSaturatedError, WorkerCrashError)


class ServiceClient:
    """Synchronous, thread-safe convenience wrapper around a service.

    Owns the service unless told otherwise: closing the client closes the
    service it was constructed with (``owns=False`` opts out for shared
    services).

    ``retry`` (a :class:`RetryPolicy`, default one) bounds automatic
    retries of transient failures — saturation rejections and worker
    crashes — with exponential backoff and deterministic jitter;
    ``RetryPolicy(max_attempts=1)`` disables retrying. ``sleep`` is
    injectable so tests run the backoff schedule without real waiting.
    """

    def __init__(
        self,
        service: PredictionService,
        owns: bool = True,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.service = service
        self._owns = owns
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep

    def _predict_with_retry(
        self, request: PredictRequest, timeout: Optional[float]
    ) -> PredictionReport:
        delays = self.retry.delays()
        while True:
            try:
                return self.service.predict(request, timeout=timeout)
            except _RETRYABLE as exc:
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc from None
                hint = getattr(exc, "retry_after", None)
                if hint is not None:
                    delay = max(delay, float(hint))
                obs.get_registry().counter("retry_attempts").inc()
                obs.log(
                    "client.retry",
                    error=type(exc).__name__,
                    delay=round(delay, 6),
                )
                self._sleep(delay)

    def predict(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        chain_length: int = 2,
        seed: int = 0,
        timeout: Optional[float] = None,
        correlation_id: Optional[str] = None,
    ) -> PredictionReport:
        """Predict one configuration (arguments mirror ``repro predict``).

        ``correlation_id`` (optional) is bound for the duration of the
        call: the request's spans adopt it as their trace ID and
        structured log lines carry it.
        """
        request = PredictRequest(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            chain_length=chain_length,
            seed=seed,
        )
        with obs.correlation(correlation_id), obs.span(
            "client.predict", benchmark=request.benchmark
        ):
            return self._predict_with_retry(request, timeout)

    def predict_dict(
        self, data: Mapping[str, Any], timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """Predict from a wire-form request; returns a wire-form response."""
        request = PredictRequest.from_dict(data)
        report = self._predict_with_retry(request, timeout)
        return report_to_dict(request, report, degraded=self.service.degraded)

    def stats(self) -> dict:
        return self.service.stats()

    def close(self) -> None:
        if self._owns:
            self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def metrics_payload(service: PredictionService) -> dict[str, Any]:
    """The ``metrics`` command's body: JSON snapshot + Prometheus text."""
    registries = service.metrics_registries()
    return {
        "ok": True,
        "metrics": obs.to_json(*registries),
        "prometheus": obs.to_prometheus(*registries),
    }


def slo_payload(service: PredictionService) -> dict[str, Any]:
    """The ``slo`` command's body: one rolling SLO judgement."""
    return {"ok": True, "slo": service.slo_report()}


def counters_payload(service: PredictionService) -> dict[str, Any]:
    """The ``counters`` command's body: raw cumulative counter values.

    The sharded frontend polls this from each shard process and folds the
    movement into its own registry via the counter-delta pattern
    (:mod:`repro.obs.delta`) — the same mechanism campaign pool workers
    use, except shards are long-lived so the frontend diffs successive
    snapshots instead of shipping one delta home. Labels travel as item
    lists (JSON has no tuples).
    """
    counters = []
    for registry in service.metrics_registries():
        prefix = f"{registry.namespace}_" if registry.namespace else ""
        for (name, labels), value in sorted(
            obs.counter_snapshot(registry).items()
        ):
            counters.append(
                [prefix + name, [list(item) for item in labels], value]
            )
    return {"ok": True, "counters": counters}


def handle_line(service: PredictionService, line: str) -> Optional[str]:
    """One protocol exchange: a request line in, a JSON response line out.

    Returns ``None`` for blank lines (no response owed). The bare lines
    ``metrics`` and ``slo`` (curl-style, no JSON) are accepted as
    shorthand for the matching ``{"cmd": ...}`` objects.
    """
    line = line.strip()
    if not line:
        return None
    if line == "metrics":
        return json.dumps(metrics_payload(service))
    if line == "slo":
        return json.dumps(slo_payload(service))
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return json.dumps(_error_dict(ReproError(f"invalid JSON: {exc}")))
    if isinstance(payload, list):
        return json.dumps({"ok": True, "results": _handle_batch(service, payload)})
    if not isinstance(payload, dict):
        return json.dumps(
            _error_dict(ReproError("request must be a JSON object or array"))
        )
    if payload.get("cmd") == "stats":
        return json.dumps({"ok": True, "stats": service.stats()})
    if payload.get("cmd") == "metrics":
        return json.dumps(metrics_payload(service))
    if payload.get("cmd") == "slo":
        return json.dumps(slo_payload(service))
    if payload.get("cmd") == "counters":
        return json.dumps(counters_payload(service))
    has_id = "id" in payload
    request_id = payload.pop("id", None)
    try:
        with obs.correlation(request_id if has_id else None):
            request = PredictRequest.from_dict(payload)
            report = service.predict(request)
            if faults.check("api.disconnect") is not None:
                # The client dropped mid-request: the work is done (and
                # cached), but nobody is listening for the answer.
                raise ClientDisconnectError(
                    "injected client disconnect (api.disconnect)"
                )
            response = report_to_dict(
                request, report, degraded=service.degraded
            )
    except ClientDisconnectError:
        raise
    except ReproError as exc:
        response = _error_dict(exc)
    if has_id:
        response["id"] = request_id
    return json.dumps(response)


def _handle_batch(
    service: PredictionService, items: list[Any]
) -> list[dict[str, Any]]:
    """Answer an array line as one coalesced burst through the batcher."""
    requests: list[Optional[PredictRequest]] = []
    responses: list[Optional[dict[str, Any]]] = []
    ids: list[tuple[bool, Any]] = []
    for item in items:
        has_id, request_id = False, None
        try:
            if not isinstance(item, dict):
                raise ReproError("batch items must be JSON objects")
            item = dict(item)
            has_id, request_id = "id" in item, item.pop("id", None)
            requests.append(PredictRequest.from_dict(item))
            responses.append(None)
        except ReproError as exc:
            requests.append(None)
            responses.append(_error_dict(exc))
        ids.append((has_id, request_id))
    live = [r for r in requests if r is not None]
    outcomes = iter(
        service.predict_many(live, return_exceptions=True) if live else []
    )
    for i, request in enumerate(requests):
        if request is None:
            continue
        outcome = next(outcomes)
        if isinstance(outcome, Exception):
            responses[i] = _error_dict(outcome)
        else:
            responses[i] = report_to_dict(request, outcome)
    for i, (has_id, request_id) in enumerate(ids):
        if has_id and responses[i] is not None:
            responses[i]["id"] = request_id
    return responses  # type: ignore[return-value]


def serve_jsonl(
    service: PredictionService,
    lines: Iterable[str],
    out: TextIO,
) -> dict:
    """Serve a JSON-lines stream until EOF; returns the final stats."""
    obs.log("serve.jsonl.start")
    served = 0
    for line in lines:
        try:
            response = handle_line(service, line)
        except ClientDisconnectError:
            # A stream "client" cannot really vanish, but the injected
            # disconnect still drops the response on the floor: count it
            # and move to the next line.
            obs.get_registry().counter("client_disconnects").inc()
            obs.log("serve.jsonl.disconnect")
            continue
        if response is not None:
            out.write(response + "\n")
            out.flush()
            served += 1
    obs.log("serve.jsonl.eof", responses=served)
    return service.stats()


class _LineHandler(socketserver.StreamRequestHandler):
    #: Per-connection socket timeout (socketserver applies it in setup()):
    #: a peer that goes silent for this long is disconnected instead of
    #: pinning its handler thread forever.
    timeout = 600.0

    def handle(self) -> None:  # pragma: no cover — exercised via serve_socket
        try:
            for raw in self.rfile:
                response = self.server.handle(raw.decode("utf-8"))
                if response is not None:
                    self.wfile.write(response.encode("utf-8") + b"\n")
                    self.wfile.flush()
        except (TimeoutError, ClientDisconnectError, ConnectionError,
                BrokenPipeError):
            # The peer went away (for real, or via the api.disconnect
            # fault): close this connection, keep serving the others.
            obs.get_registry().counter("client_disconnects").inc()
            obs.log("serve.socket.disconnect")


class _ServiceServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address,
        service: PredictionService,
        handler: Optional[Callable[[str], Optional[str]]] = None,
    ):
        super().__init__(address, _LineHandler)
        self.service = service
        self._handle_line = handler

    def handle(self, line: str) -> Optional[str]:
        """One exchange via the pluggable handler (default protocol)."""
        if self._handle_line is not None:
            return self._handle_line(line)
        return handle_line(self.service, line)


def serve_socket(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[threading.Event] = None,
    bound: Optional[list] = None,
    control: Optional[list] = None,
    announce: Optional[Callable[[tuple], None]] = None,
    handler: Optional[Callable[[str], Optional[str]]] = None,
) -> dict:
    """Serve the line protocol over TCP until interrupted; returns stats.

    ``port=0`` binds an ephemeral port; the bound ``(host, port)`` is
    appended to ``bound`` (when given), passed to ``announce`` (when
    given), and ``ready`` is set once accepting. ``control`` (when given)
    receives the server object so a supervisor — or a test — can call its
    ``shutdown()`` from another thread. ``handler`` (when given) replaces
    :func:`handle_line` per line — serving shards wrap the default with
    their death checkpoint (``shard.process.exit``).
    """
    with _ServiceServer((host, port), service, handler) as server:
        if bound is not None:
            bound.append(server.server_address)
        if control is not None:
            control.append(server)
        if announce is not None:
            announce(server.server_address)
        if ready is not None:
            ready.set()
        obs.log(
            "serve.listening",
            host=server.server_address[0],
            port=server.server_address[1],
        )
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover — interactive shutdown
            pass
        obs.log("serve.stopped")
    return service.stats()
