"""Client facade and wire front-ends for the prediction service.

Three ways in:

* :class:`ServiceClient` — a thread-safe in-process facade with a
  keyword-friendly ``predict()`` signature;
* :func:`serve_jsonl` — a JSON-lines request/response loop over any pair of
  text streams (the ``repro serve`` CLI runs it over stdin/stdout), for
  piping and load testing;
* :func:`serve_socket` — the same line protocol over TCP
  (``repro serve --port N``), one thread per connection.

The line protocol: each input line is either a request object
(``{"benchmark": "BT", "problem_class": "W", "nprocs": 4, ...}``), an array
of request objects (answered as one batched response), or a command object
(``{"cmd": "stats"}``). Every line gets exactly one JSON response line with
an ``"ok"`` field; saturation rejections carry ``"retry_after"``.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any, Callable, Iterable, Mapping, Optional, TextIO

from repro.core.predictor import PredictionReport
from repro.errors import ReproError, ServiceSaturatedError
from repro.service.engine import PredictRequest, PredictionService

__all__ = [
    "ServiceClient",
    "report_to_dict",
    "handle_line",
    "serve_jsonl",
    "serve_socket",
]


def report_to_dict(
    request: PredictRequest, report: PredictionReport
) -> dict[str, Any]:
    """Wire form of one successful prediction."""
    return {
        "ok": True,
        "request": request.to_dict(),
        "actual": report.actual,
        "predictions": dict(report.predictions),
        "errors_percent": report.errors(),
        "best": report.best(),
    }


def _error_dict(exc: Exception) -> dict[str, Any]:
    payload: dict[str, Any] = {"ok": False, "error": str(exc)}
    if isinstance(exc, ServiceSaturatedError):
        payload["retry_after"] = exc.retry_after
    return payload


class ServiceClient:
    """Synchronous, thread-safe convenience wrapper around a service.

    Owns the service unless told otherwise: closing the client closes the
    service it was constructed with (``owns=False`` opts out for shared
    services).
    """

    def __init__(self, service: PredictionService, owns: bool = True):
        self.service = service
        self._owns = owns

    def predict(
        self,
        benchmark: str,
        problem_class: str,
        nprocs: int,
        chain_length: int = 2,
        seed: int = 0,
        timeout: Optional[float] = None,
    ) -> PredictionReport:
        """Predict one configuration (arguments mirror ``repro predict``)."""
        request = PredictRequest(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            chain_length=chain_length,
            seed=seed,
        )
        return self.service.predict(request, timeout=timeout)

    def predict_dict(
        self, data: Mapping[str, Any], timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """Predict from a wire-form request; returns a wire-form response."""
        request = PredictRequest.from_dict(data)
        report = self.service.predict(request, timeout=timeout)
        return report_to_dict(request, report)

    def stats(self) -> dict:
        return self.service.stats()

    def close(self) -> None:
        if self._owns:
            self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def handle_line(service: PredictionService, line: str) -> Optional[str]:
    """One protocol exchange: a request line in, a JSON response line out.

    Returns ``None`` for blank lines (no response owed).
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return json.dumps(_error_dict(ReproError(f"invalid JSON: {exc}")))
    if isinstance(payload, list):
        return json.dumps({"ok": True, "results": _handle_batch(service, payload)})
    if not isinstance(payload, dict):
        return json.dumps(
            _error_dict(ReproError("request must be a JSON object or array"))
        )
    if payload.get("cmd") == "stats":
        return json.dumps({"ok": True, "stats": service.stats()})
    try:
        request = PredictRequest.from_dict(payload)
        report = service.predict(request)
        return json.dumps(report_to_dict(request, report))
    except ReproError as exc:
        return json.dumps(_error_dict(exc))


def _handle_batch(
    service: PredictionService, items: list[Any]
) -> list[dict[str, Any]]:
    """Answer an array line as one coalesced burst through the batcher."""
    requests: list[Optional[PredictRequest]] = []
    responses: list[Optional[dict[str, Any]]] = []
    for item in items:
        try:
            if not isinstance(item, dict):
                raise ReproError("batch items must be JSON objects")
            requests.append(PredictRequest.from_dict(item))
            responses.append(None)
        except ReproError as exc:
            requests.append(None)
            responses.append(_error_dict(exc))
    live = [r for r in requests if r is not None]
    outcomes = iter(
        service.predict_many(live, return_exceptions=True) if live else []
    )
    for i, request in enumerate(requests):
        if request is None:
            continue
        outcome = next(outcomes)
        if isinstance(outcome, Exception):
            responses[i] = _error_dict(outcome)
        else:
            responses[i] = report_to_dict(request, outcome)
    return responses  # type: ignore[return-value]


def serve_jsonl(
    service: PredictionService,
    lines: Iterable[str],
    out: TextIO,
) -> dict:
    """Serve a JSON-lines stream until EOF; returns the final stats."""
    for line in lines:
        response = handle_line(service, line)
        if response is not None:
            out.write(response + "\n")
            out.flush()
    return service.stats()


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover — exercised via serve_socket
        for raw in self.rfile:
            response = handle_line(self.server.service, raw.decode("utf-8"))
            if response is not None:
                self.wfile.write(response.encode("utf-8") + b"\n")
                self.wfile.flush()


class _ServiceServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: PredictionService):
        super().__init__(address, _LineHandler)
        self.service = service


def serve_socket(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[threading.Event] = None,
    bound: Optional[list] = None,
    control: Optional[list] = None,
    announce: Optional[Callable[[tuple], None]] = None,
) -> dict:
    """Serve the line protocol over TCP until interrupted; returns stats.

    ``port=0`` binds an ephemeral port; the bound ``(host, port)`` is
    appended to ``bound`` (when given), passed to ``announce`` (when
    given), and ``ready`` is set once accepting. ``control`` (when given)
    receives the server object so a supervisor — or a test — can call its
    ``shutdown()`` from another thread.
    """
    with _ServiceServer((host, port), service) as server:
        if bound is not None:
            bound.append(server.server_address)
        if control is not None:
            control.append(server)
        if announce is not None:
            announce(server.server_address)
        if ready is not None:
            ready.set()
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover — interactive shutdown
            pass
    return service.stats()
