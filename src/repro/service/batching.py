"""Request coalescing: single-flight deduplication + config batching.

Two distinct ideas live here:

* **Single-flight** — while a request key is being computed, every further
  identical request attaches to the same :class:`~concurrent.futures.Future`
  instead of triggering its own simulation. The registry spans the whole
  in-flight window (queued *and* executing), so N concurrent identical
  requests cost exactly one cell execution.
* **Batching** — distinct requests that arrive within the collection
  ``window`` are grouped by their configuration key
  (benchmark, class, nprocs, seed) and dispatched as *one* measurement
  plan, sharing the runner warm-up (the empty-loop overhead measurement)
  and the campaign's memoization across chain lengths.

The batcher owns one daemon dispatcher thread; the dispatch callable (the
engine) is invoked on that thread with each group and must not block
indefinitely.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional, Protocol

from repro import faults
from repro.errors import InjectedFaultError, ServiceClosedError
from repro.obs.tracing import correlation_id, current_context

__all__ = ["Flight", "RequestBatcher"]


class BatchableRequest(Protocol):
    """What the batcher needs from a request object."""

    @property
    def key(self) -> Hashable: ...

    @property
    def config_key(self) -> Hashable: ...


@dataclass
class Flight:
    """One unique in-flight request and everyone waiting on it.

    ``context`` and ``corr`` are the submitting thread's span context and
    correlation ID (captured at submit time) so the dispatcher/worker
    spans join the same trace as the request that started the flight.
    """

    request: BatchableRequest
    future: Future = field(default_factory=Future)
    waiters: int = 1
    context: object = None
    corr: object = None


class RequestBatcher:
    """Coalesce and batch requests onto a dispatch callable.

    ``dispatch(flights)`` receives one config-homogeneous group per call.
    Flights stay registered (and coalescable) until their future resolves;
    resolution is the dispatcher's/engine's job.

    ``max_batch`` is a flush threshold: once that many flights are
    pending, the dispatcher skips the remaining collection window and
    flushes immediately — bounding per-request queueing delay under heavy
    bursts (the window only exists to *grow* batches; a full batch has
    nothing to wait for).
    """

    def __init__(
        self,
        dispatch: Callable[[list[Flight]], None],
        window: float = 0.005,
        sleep: Callable[[float], None] = time.sleep,
        max_batch: Optional[int] = None,
    ):
        if window < 0:
            raise ValueError(f"batch window must be >= 0, got {window}")
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._dispatch = dispatch
        self.window = window
        self.max_batch = max_batch
        self._sleep = sleep
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: list[Flight] = []
        self._live: dict[Hashable, Flight] = {}
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-batcher", daemon=True
        )
        self._thread.start()

    # -- client side ----------------------------------------------------------

    def submit(self, request: BatchableRequest) -> tuple[Future, bool]:
        """Register a request; returns ``(future, coalesced)``.

        ``coalesced`` is True when an identical request was already in
        flight and this one attached to it (single-flight hit).
        """
        key = request.key
        with self._wakeup:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            flight = self._live.get(key)
            if flight is not None:
                flight.waiters += 1
                return flight.future, True
            flight = Flight(
                request=request,
                context=current_context(),
                corr=correlation_id(),
            )
            flight.future.add_done_callback(
                lambda _fut, key=key: self._forget(key)
            )
            self._live[key] = flight
            self._queue.append(flight)
            self._wakeup.notify()
            return flight.future, False

    def in_flight(self, key: Hashable) -> bool:
        """Whether this key is currently queued or executing."""
        with self._lock:
            return key in self._live

    @property
    def pending(self) -> int:
        """Flights collected but not yet dispatched."""
        with self._lock:
            return len(self._queue)

    def _forget(self, key: Hashable) -> None:
        with self._lock:
            self._live.pop(key, None)

    # -- dispatcher side ------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._closed:
                    # The timeout is belt-and-braces deadlock hygiene: a
                    # lost notify costs one period, not a wedged dispatcher.
                    self._wakeup.wait(timeout=1.0)
                if self._closed and not self._queue:
                    return
            # Collection window: let concurrent callers pile in before
            # grouping, so bursts become batches instead of singletons.
            # A full batch (>= max_batch pending) flushes immediately.
            if self.window and not self._flush_ready():
                self._sleep(self.window)
            with self._lock:
                batch, self._queue = self._queue, []
            for group in self._group(batch):
                try:
                    if faults.check("batch.dispatch.error") is not None:
                        raise InjectedFaultError(
                            "injected dispatch failure (batch.dispatch.error)"
                        )
                    self._dispatch(group)
                except BaseException as exc:  # noqa: BLE001 — relay to waiters
                    for flight in group:
                        if not flight.future.done():
                            flight.future.set_exception(exc)

    def _flush_ready(self) -> bool:
        """Whether the pending queue already justifies an immediate flush."""
        if self.max_batch is None:
            return False
        with self._lock:
            return len(self._queue) >= self.max_batch

    @staticmethod
    def _group(flights: list[Flight]) -> list[list[Flight]]:
        """Config-homogeneous groups, preserving arrival order."""
        groups: "OrderedDict[Hashable, list[Flight]]" = OrderedDict()
        for flight in flights:
            groups.setdefault(flight.request.config_key, []).append(flight)
        return list(groups.values())

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher; fail anything still queued."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            leftovers, self._queue = self._queue, []
            self._wakeup.notify()
        for flight in leftovers:
            if not flight.future.done():
                flight.future.set_exception(
                    ServiceClosedError("service shut down before dispatch")
                )
        self._thread.join(timeout=timeout)
