"""Two-tier prediction cache.

Tier 1 is an in-process LRU with optional TTL holding finished
:class:`~repro.core.predictor.PredictionReport` objects keyed by the full
request tuple (benchmark, class, nprocs, chain length, seed). Tier 2 is the
existing Prophesy-style
:class:`~repro.instrument.database.PerformanceDatabase`: it persists the
underlying *measurements*, so even when a report ages out of the LRU (or a
fresh process starts against a warm database file) the service rebuilds the
report from stored samples without re-running a single simulation.

The persistent tier is keyed by the measurement tuple
(benchmark, class, nprocs, kernel chain) — like
:class:`~repro.instrument.sweeps.Campaign` memoization it is agnostic to
the measurement noise seed; only the L1 tier distinguishes seeds.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

from repro import faults
from repro.instrument.database import PerformanceDatabase

__all__ = ["LRUCache", "TieredPredictionCache", "ACTUAL_KEY"]

#: Pseudo-kernel chain under which the full application's actual runtime is
#: archived in the persistent tier (the real chains never collide with it).
ACTUAL_KEY: tuple[str, ...] = ("__APPLICATION_TOTAL__",)

_MISSING = object()


class LRUCache:
    """Thread-safe least-recently-used cache with optional TTL.

    ``clock`` is injectable (tests freeze it); entries older than
    ``ttl`` seconds are treated as absent and dropped on access.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be positive, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._entries: "OrderedDict[Hashable, tuple[Any, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, refreshing recency; ``default`` on miss."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
                return default
            value, stored_at = entry
            if self.ttl is not None and self._clock() - stored_at > self.ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the LRU tail beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def drop(self, key: Hashable) -> bool:
        """Remove one entry (if present); True when something was dropped."""
        with self._lock:
            return self._entries.pop(key, _MISSING) is not _MISSING

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters snapshot (hits/misses/evictions/expirations/size)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }


class TieredPredictionCache:
    """L1 report LRU over the L2 persistent measurement store.

    The service consults :meth:`get_report` first; on a miss the batching
    layer runs a measurement plan *through* :attr:`database`, which silently
    turns fully archived cells into zero-simulation replays.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: Optional[float] = None,
        database: Optional[PerformanceDatabase] = None,
        db_path: str = ":memory:",
        clock: Callable[[], float] = time.monotonic,
    ):
        self.reports = LRUCache(capacity=capacity, ttl=ttl, clock=clock)
        # NB: an empty PerformanceDatabase is falsy (it has __len__), so the
        # ownership test must be `is None`, never truthiness.
        self._owns_database = database is None
        self.database = (
            PerformanceDatabase(db_path) if database is None else database
        )
        self.db_path = getattr(self.database, "path", db_path)

    # -- tier 1 ---------------------------------------------------------------

    def get_report(self, key: Hashable) -> Any:
        """The finished report for a request key, or None.

        The ``cache.l1.drop`` fault models L1 read corruption: in-process
        report objects carry no checksum, so the safe failure mode is to
        treat the entry as lost and recompute (a miss, never garbage).
        """
        if faults.check("cache.l1.drop") is not None:
            self.reports.drop(key)
            return None
        return self.reports.get(key)

    def put_report(self, key: Hashable, report: Any) -> None:
        self.reports.put(key, report)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close the persistent tier if this cache owns it."""
        if self._owns_database:
            self.database.close()

    def stats(self) -> dict:
        """Both tiers' counters."""
        return {
            "l1": self.reports.stats(),
            "l2": {"path": self.db_path, "measurements": len(self.database)},
        }
