"""The prediction service: requests in, cached/batched reports out.

:class:`PredictionService` turns the one-shot predictor stack
(:func:`repro.quick_prediction` and friends) into a long-lived serving
layer:

1. an L1 LRU answers repeated requests in microseconds;
2. misses are single-flight deduplicated and coalesced into per-config
   measurement plans (:mod:`repro.service.batching`);
3. plans run on a bounded worker pool (:mod:`repro.service.workers`)
   through the persistent measurement tier
   (:class:`~repro.instrument.database.PerformanceDatabase`), so a warm
   database answers without simulating at all;
4. every step is measured (:mod:`repro.service.metrics`).

The public surface is thread-safe: any number of threads may call
:meth:`PredictionService.predict` concurrently.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Optional, Sequence

from repro import faults, obs
from repro.analytic.tiers import (
    TIER_ANALYTIC,
    TIER_MEMO,
    TIER_SIMULATION,
    TierPolicy,
    resolve_tier_policy,
)
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    PredictionReport,
    SummationPredictor,
)
from repro.errors import (
    InjectedFaultError,
    PredictionError,
    ServiceDegradedError,
    ServiceError,
    ServiceSaturatedError,
    ServiceTimeoutError,
)
from repro.instrument.database import PerformanceDatabase
from repro.instrument.runner import MeasurementConfig
from repro.instrument.sweeps import CampaignPlan
from repro.npb import BENCHMARKS, CLASS_NAMES, make_benchmark
from repro.service.batching import Flight, RequestBatcher
from repro.service.cache import TieredPredictionCache
from repro.service.metrics import ServiceMetrics
from repro.service.slo import DEFAULT_OBJECTIVES, SLOMonitor, SLOObjective
from repro.parallel.keys import cell_key
from repro.parallel.memo import SimulationMemoStore
from repro.service.workers import CellOutcome, CellTask, WorkerPool, execute_cell
from repro.simmachine.machine import MachineConfig, ibm_sp_argonne

__all__ = ["PredictRequest", "PredictionService"]


@dataclass(frozen=True)
class PredictRequest:
    """One prediction to serve.

    ``seed`` selects the measurement-noise stream (distinct seeds are
    distinct L1 cache entries; the persistent measurement tier is
    seed-agnostic, exactly like campaign memoization).
    """

    benchmark: str
    problem_class: str
    nprocs: int
    chain_length: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark", str(self.benchmark).upper())
        object.__setattr__(
            self, "problem_class", str(self.problem_class).upper()
        )
        if self.benchmark not in BENCHMARKS:
            raise ServiceError(
                f"unknown benchmark {self.benchmark!r}; "
                f"choose from {sorted(BENCHMARKS)}"
            )
        if self.problem_class not in CLASS_NAMES:
            raise ServiceError(
                f"unknown problem class {self.problem_class!r}; "
                f"choose from {list(CLASS_NAMES)}"
            )
        if self.nprocs < 1:
            raise ServiceError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.chain_length < 2:
            raise ServiceError(
                f"chain_length must be >= 2, got {self.chain_length}"
            )

    @property
    def key(self) -> tuple:
        """Full identity — the L1 cache key."""
        return (
            self.benchmark,
            self.problem_class,
            self.nprocs,
            self.chain_length,
            self.seed,
        )

    @property
    def config_key(self) -> tuple:
        """Batching identity: requests sharing it share one measurement plan."""
        return (self.benchmark, self.problem_class, self.nprocs, self.seed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "problem_class": self.problem_class,
            "nprocs": self.nprocs,
            "chain_length": self.chain_length,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PredictRequest":
        """Build from a JSON object; unknown fields are rejected."""
        known = {"benchmark", "problem_class", "nprocs", "chain_length", "seed"}
        extra = set(data) - known
        if extra:
            raise ServiceError(f"unknown request fields: {sorted(extra)}")
        try:
            return cls(
                benchmark=data["benchmark"],
                problem_class=data["problem_class"],
                nprocs=int(data["nprocs"]),
                chain_length=int(data.get("chain_length", 2)),
                seed=int(data.get("seed", 0)),
            )
        except KeyError as exc:
            raise ServiceError(f"request missing field {exc.args[0]!r}") from None
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed request: {exc}") from None


class PredictionService:
    """Batched, cached, metered serving of prediction reports.

    Parameters mirror the subsystem layers: cache sizing (``cache_capacity``
    / ``cache_ttl`` / ``db_path`` or an externally owned ``database``),
    batching (``batch_window``), the worker pool (``max_workers`` /
    ``queue_depth`` / ``executor``), and the measurement protocol shared by
    every cell (``machine`` / ``measurement`` / ``application_seed``).

    ``execute`` swaps the cell executor (tests inject counting/blocking
    stubs); with ``executor="process"`` the default
    :func:`~repro.service.workers.execute_cell` must be used and
    ``db_path`` must point at a database *file* the worker processes can
    share.

    Robustness knobs: ``default_timeout`` is the per-request deadline when
    a :meth:`predict` call passes none (misses that exceed it raise
    :class:`~repro.errors.ServiceTimeoutError`); ``max_batch`` flushes a
    collection window early once that many requests are pending;
    ``crash_threshold`` consecutive worker crashes flip the service into
    cache-only *degraded mode* (L1 hits are still served, misses raise
    :class:`~repro.errors.ServiceDegradedError`, and every
    ``degraded_probe_every``-th miss is let through as a recovery probe —
    one probe succeeding restores normal service).

    ``cache_dir`` points at a :mod:`repro.parallel` simulation memo
    directory: whole cells found there are served without enqueueing any
    simulation work, and freshly simulated cells are stored back, so the
    serving layer shares warmed state with ``repro campaign --cache-dir``.

    ``tier_policy`` selects the serving-ladder rung order (a
    :class:`~repro.analytic.tiers.TierPolicy` or a policy name): under
    ``fast``/``balanced`` the closed-form analytic tier answers first and
    escalates to memo/simulation when its self-reported confidence misses
    the policy's error budget; the default ``exact`` bypasses the analytic
    tier entirely, preserving bit-identical simulation results.

    ``slo_objectives``/``slo_window`` configure the rolling SLO monitor
    behind :meth:`slo_report` (defaults:
    :data:`repro.service.slo.DEFAULT_OBJECTIVES` over a 60-snapshot
    window); the monitor only runs when polled, never per request.
    """

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        measurement: Optional[MeasurementConfig] = None,
        *,
        database: Optional[PerformanceDatabase] = None,
        db_path: str = ":memory:",
        cache_capacity: int = 1024,
        cache_ttl: Optional[float] = None,
        batch_window: float = 0.005,
        max_batch: Optional[int] = None,
        max_workers: int = 2,
        queue_depth: int = 16,
        executor: str = "thread",
        application_seed: int = 7,
        execute: Optional[Callable[..., Any]] = None,
        clock: Callable[[], float] = time.monotonic,
        default_timeout: Optional[float] = None,
        crash_threshold: int = 3,
        degraded_probe_every: int = 8,
        cache_dir: Optional[str] = None,
        tier_policy: "str | TierPolicy" = "exact",
        slo_objectives: Optional[Sequence[SLOObjective]] = None,
        slo_window: int = 60,
        shard_id: Optional[int] = None,
    ):
        self.machine = machine or ibm_sp_argonne()
        #: Ring position when this service is one shard of a sharded
        #: deployment (``repro serve --shards N``); None when standalone.
        self.shard_id = shard_id
        self.tier_policy = resolve_tier_policy(tier_policy)
        # Content-addressed simulation memo (repro.parallel): consulted
        # before a cell task is enqueued, so a warm directory serves whole
        # cells without touching the worker pool at all.
        self._memo = (
            SimulationMemoStore(cache_dir) if cache_dir is not None else None
        )
        self.measurement = measurement or MeasurementConfig()
        self.application_seed = application_seed
        self._clock = clock
        self._cache = TieredPredictionCache(
            capacity=cache_capacity,
            ttl=cache_ttl,
            database=database,
            db_path=db_path,
            clock=clock,
        )
        if executor == "process":
            if execute is not None:
                raise ServiceError(
                    "custom execute hooks require a thread/inline executor"
                )
            if self._cache.db_path == ":memory:":
                raise ServiceError(
                    "process workers need a file-backed db_path to share "
                    "the persistent tier"
                )
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        if degraded_probe_every < 1:
            raise ServiceError(
                f"degraded_probe_every must be >= 1, got {degraded_probe_every}"
            )
        self._executor_kind = executor
        self._execute = execute or execute_cell
        self.default_timeout = default_timeout
        self._pool = WorkerPool(
            max_workers=max_workers,
            queue_depth=queue_depth,
            kind=executor,
            retry_after=self._retry_after_estimate,
            crash_threshold=crash_threshold,
        )
        self.metrics = ServiceMetrics(queue_depth_fn=lambda: self._pool.outstanding)
        self.slo = SLOMonitor(
            self.metrics,
            objectives=(
                slo_objectives
                if slo_objectives is not None
                else DEFAULT_OBJECTIVES
            ),
            window=slo_window,
        )
        self._batcher = RequestBatcher(
            self._dispatch_group, window=batch_window, max_batch=max_batch
        )
        self._degraded_probe_every = degraded_probe_every
        self._degraded_misses = 0
        # Guards the degraded-probe counter and the closed flag (the two
        # pieces of service state mutated after construction).
        self._state_lock = threading.Lock()
        self._closed = False

    # -- serving --------------------------------------------------------------

    def predict(
        self, request: PredictRequest, timeout: Optional[float] = None
    ) -> PredictionReport:
        """Serve one request, blocking until its report is ready.

        Raises :class:`~repro.errors.ServiceSaturatedError` (with a
        ``retry_after`` hint) instead of queueing when the worker pool is
        full and the request can neither be answered from cache nor
        coalesced onto an in-flight duplicate;
        :class:`~repro.errors.ServiceTimeoutError` when the deadline
        (``timeout``, defaulting to the service's ``default_timeout``)
        expires first; and :class:`~repro.errors.ServiceDegradedError` for
        cache misses while the service is in degraded mode.
        """
        outcome, t0 = self._submit(request)
        if isinstance(outcome, PredictionReport):
            # L1 hit: the microsecond path. Deliberately span-free — the
            # hit is already measured (l1_hits + latency histogram), and
            # a span here would cost more than the lookup it times.
            return outcome
        with obs.span("service.predict", benchmark=request.benchmark):
            return self._await(outcome, t0, timeout)

    def predict_many(
        self,
        requests: Sequence[PredictRequest],
        timeout: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> list:
        """Serve a burst of requests through one batching window."""
        outcomes = []
        for request in requests:
            try:
                outcomes.append(self._submit(request))
            except ServiceError as exc:
                if not return_exceptions:
                    raise
                outcomes.append((exc, None))
        results = []
        for outcome, t0 in outcomes:
            if isinstance(outcome, (PredictionReport, Exception)):
                results.append(outcome)
                continue
            try:
                results.append(self._await(outcome, t0, timeout))
            except Exception as exc:  # noqa: BLE001 — caller opted in
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    def _submit(self, request: PredictRequest):
        """Tier ladder: L1, analytic rung, saturation gate, batcher.

        Returns ``(report_or_future, start_time)``.
        """
        t0 = self._clock()
        self.metrics.requests.inc()
        report = self._cache.get_report(request.key)
        if report is not None:
            self.metrics.l1_hits.inc()
            dt = self._clock() - t0
            self.metrics.latency.observe(dt)
            self.metrics.record_tier(report.tier, dt)
            return report, t0
        if self.tier_policy.use_analytic:
            # The analytic rung sits *above* the degraded/saturation gates:
            # closed forms need no workers, so a degraded pool still serves
            # every request the policy's error budget accepts.
            report = self._serve_analytic(request, t0)
            if report is not None:
                return report, t0
        if not self._pool.healthy and not self._batcher.in_flight(request.key):
            # Degraded mode: cache-only, except for a periodic probe that
            # tests whether the pool has recovered.
            with self._state_lock:
                self._degraded_misses += 1
                probe = self._degraded_misses % self._degraded_probe_every == 0
            if not probe:
                self.metrics.degraded_rejects.inc()
                raise ServiceDegradedError(
                    "service degraded (worker pool unhealthy); "
                    "serving cached reports only"
                )
        if self._pool.saturated and not self._batcher.in_flight(request.key):
            self.metrics.rejected.inc()
            raise ServiceSaturatedError(
                "service saturated; retry later",
                retry_after=self._pool.retry_after_hint(),
            )
        future, coalesced = self._batcher.submit(request)
        if coalesced:
            self.metrics.coalesced.inc()
        return future, t0

    # -- the analytic rung ----------------------------------------------------

    def _serve_analytic(
        self, request: PredictRequest, t0: float
    ) -> Optional[PredictionReport]:
        """Answer from the closed-form tier, or None to escalate."""
        analytic_key = request.key + (TIER_ANALYTIC,)
        report = self._cache.get_report(analytic_key)
        if report is not None:
            self.metrics.l1_hits.inc()
        else:
            report = self._analytic_report(request)
            if report is None:
                return None
            self._cache.put_report(analytic_key, report)
        dt = self._clock() - t0
        self.metrics.latency.observe(dt)
        self.metrics.record_tier(TIER_ANALYTIC, dt)
        return report

    def _analytic_report(
        self, request: PredictRequest
    ) -> Optional[PredictionReport]:
        """One fresh closed-form evaluation, or None (counted escalation).

        Escalates on unsupported benchmarks (the descriptor tables cover
        BT/SP/LU), on invalid chain lengths (the simulation path raises the
        matching typed error to the waiter), and whenever the self-reported
        confidence misses the policy's error budget.
        """
        from repro.analytic.model import AnalyticPredictor

        try:
            predictor = AnalyticPredictor.for_config(
                self.machine,
                request.benchmark,
                request.problem_class,
                request.nprocs,
            )
            analytic = predictor.report((request.chain_length,))
        except Exception:  # noqa: BLE001 — any analytic failure escalates
            self.metrics.analytic_escalations.inc()
            return None
        if not self.tier_policy.accepts(analytic.expected_rel_error):
            self.metrics.analytic_escalations.inc()
            return None
        return analytic.prediction_report((request.chain_length,))

    def _await(
        self, future: Future, t0: float, timeout: Optional[float]
    ) -> PredictionReport:
        if timeout is None:
            timeout = self.default_timeout
        try:
            report = future.result(timeout)
        except FuturesTimeoutError:
            # The flight stays registered: late duplicates still coalesce
            # and the eventual result still warms the cache — only this
            # caller's deadline expired.
            self.metrics.timeouts.inc()
            obs.get_registry().counter("request_timeout").inc()
            raise ServiceTimeoutError(
                f"request deadline of {timeout}s exceeded",
                timeout=timeout,
            ) from None
        except ServiceSaturatedError:
            self.metrics.rejected.inc()
            raise
        except Exception:  # noqa: BLE001 — count every failure kind, re-raise
            self.metrics.errors.inc()
            raise
        dt = self._clock() - t0
        self.metrics.latency.observe(dt)
        self.metrics.record_tier(report.tier, dt)
        return report

    # -- dispatch (batcher thread) --------------------------------------------

    def _dispatch_group(self, flights: list[Flight]) -> None:
        """Turn one config-homogeneous group into a cell task on the pool.

        Runs on the batcher thread; adopting the first flight's captured
        correlation ID and span context stitches the dispatch (and the
        worker's cell span) into the submitting request's trace.
        """
        first = flights[0].request
        with obs.correlation(flights[0].corr), obs.use_context(
            flights[0].context
        ), obs.span(
            "service.dispatch",
            benchmark=first.benchmark,
            cls=first.problem_class,
            nprocs=first.nprocs,
            batch=len(flights),
        ):
            self._dispatch_batch(flights)

    def _dispatch_batch(self, flights: list[Flight]) -> None:
        first = flights[0].request
        if faults.check("engine.dispatch.error") is not None:
            self._fail(
                flights,
                InjectedFaultError(
                    "injected engine dispatch failure (engine.dispatch.error)"
                ),
            )
            return
        self.metrics.record_batch(len(flights))
        # Validate per-request chain lengths against the flow now, so one
        # impossible request fails alone instead of poisoning its batch.
        try:
            bench = make_benchmark(
                first.benchmark, first.problem_class, first.nprocs
            )
        except Exception as exc:  # noqa: BLE001 — relay to waiters
            self._fail(flights, exc)
            return
        flow_length = len(bench.loop_kernel_names)
        viable = []
        for flight in flights:
            if flight.request.chain_length > flow_length:
                self._fail(
                    [flight],
                    PredictionError(
                        f"chain_length {flight.request.chain_length} exceeds "
                        f"the {first.benchmark} flow of {flow_length} kernels"
                    ),
                )
            else:
                viable.append(flight)
        flights = viable
        if not flights:
            return
        requests = [flight.request for flight in flights]
        plan = CampaignPlan.for_cell(
            first.benchmark,
            first.problem_class,
            first.nprocs,
            chain_lengths=sorted({r.chain_length for r in requests}),
        )
        measurement = replace(self.measurement, seed=first.seed)
        memo_key = None
        if self._memo is not None:
            memo_key = cell_key(
                self.machine,
                measurement,
                first.benchmark,
                first.problem_class,
                first.nprocs,
                plan.chain_lengths,
                self.application_seed,
            )
            hit = self._memo.get(memo_key)
            if hit is not None:
                self.metrics.cell_seconds.observe(0.0)
                self._finish(
                    flights,
                    CellOutcome(
                        benchmark=first.benchmark,
                        problem_class=first.problem_class,
                        nprocs=first.nprocs,
                        inputs=PredictionInputs.from_dict(hit["inputs"]),
                        actual=hit["actual"],
                        simulations=0,
                        reused=hit.get("reused", 0),
                    ),
                )
                return
        task = CellTask(
            plan=plan,
            machine=self.machine,
            measurement=measurement,
            application_seed=self.application_seed,
            db_path=(
                self._cache.db_path
                if self._executor_kind == "process"
                else None
            ),
        )
        try:
            if self._executor_kind == "process":
                # Process workers need a picklable module-level callable;
                # their spans come from the simulator flush instead.
                pool_future = self._pool.submit(self._execute, task)
            else:
                pool_future = self._pool.submit(
                    self._traced_cell,
                    obs.current_context(),
                    task,
                    self._cache.database,
                )
        except ServiceError as exc:
            self._fail(flights, exc)
            return
        except Exception as exc:  # noqa: BLE001 — keep waiter errors typed
            self._fail(
                flights, ServiceError(f"worker submission failed: {exc}")
            )
            return
        started = self._clock()

        def _done(fut: Future) -> None:
            self.metrics.cell_seconds.observe(self._clock() - started)
            try:
                # repro: ignore[REP003] — done-callback: fut already resolved
                outcome = fut.result()
            except BaseException as exc:  # noqa: BLE001 — relay to waiters
                self._fail(flights, exc)
                return
            if self._memo is not None and memo_key is not None:
                self._memo.put(
                    memo_key,
                    {
                        "inputs": outcome.inputs.to_dict(),
                        "actual": outcome.actual,
                        "reused": outcome.reused,
                    },
                )
            self._finish(flights, outcome)

        pool_future.add_done_callback(_done)

    def _traced_cell(self, context, task, database):
        """Run one cell on a worker thread under the request's trace."""
        with obs.use_context(context), obs.span(
            "service.cell",
            benchmark=task.plan.benchmark,
            cls=task.plan.problem_classes[0],
            nprocs=task.plan.proc_counts[0],
        ):
            return self._execute(task, database)

    def _finish(self, flights: list[Flight], outcome) -> None:
        """Build each waiter's report from the cell outcome."""
        self.metrics.simulations.inc(outcome.simulations)
        warm = outcome.simulations == 0
        tier = TIER_MEMO if warm else TIER_SIMULATION
        self._record_analytic_error(flights[0].request, outcome.actual)
        summation = SummationPredictor().predict(outcome.inputs)
        for flight in flights:
            request = flight.request
            try:
                coupled = CouplingPredictor(request.chain_length).predict(
                    outcome.inputs
                )
            except Exception as exc:  # noqa: BLE001 — relay to this waiter
                self._fail([flight], exc)
                continue
            report = PredictionReport(
                actual=outcome.actual,
                predictions={
                    SummationPredictor.name: summation,
                    f"Coupling: {request.chain_length} kernels": coupled,
                },
                tier=tier,
            )
            self._cache.put_report(request.key, report)
            (self.metrics.l2_hits if warm else self.metrics.misses).inc()
            if not flight.future.done():
                flight.future.set_result(report)

    def _record_analytic_error(
        self, request: PredictRequest, actual: float
    ) -> None:
        """Signed analytic-vs-ground-truth error, when both tiers answered.

        Ground truth (a simulated or memoized cell) just landed; if the
        active policy runs the analytic tier, score its application total
        against it so ``tier_signed_rel_error{tier=analytic}`` accumulates
        live cross-validation data — including for escalated cells.
        """
        if not self.tier_policy.use_analytic or actual <= 0:
            return
        from repro.analytic.model import AnalyticPredictor

        try:
            predictor = AnalyticPredictor.for_config(
                self.machine,
                request.benchmark,
                request.problem_class,
                request.nprocs,
            )
            analytic = predictor.report()
        except Exception:  # noqa: BLE001 — unsupported configs score nothing
            return
        self.metrics.record_signed_error(
            (analytic.actual - actual) / actual
        )

    @staticmethod
    def _fail(flights: list[Flight], exc: BaseException) -> None:
        for flight in flights:
            if not flight.future.done():
                flight.future.set_exception(exc)

    def _retry_after_estimate(self) -> float:
        """Expected drain time of the current queue, floored at 100 ms."""
        mean_cell = self.metrics.cell_seconds.mean
        if mean_cell <= 0:
            return 1.0
        waves = max(1, -(-self._pool.outstanding // self._pool.max_workers))
        return max(0.1, waves * mean_cell)

    # -- observability / lifecycle --------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the worker pool is unhealthy (cache-only serving)."""
        return not self._pool.healthy

    @property
    def pool(self) -> "WorkerPool":
        """The worker pool (health/respawn introspection)."""
        return self._pool

    def stats(self) -> dict:
        """Service counters plus cache-tier counters, JSON-friendly."""
        snapshot = self.metrics.stats()
        snapshot["cache"] = self._cache.stats()
        if self._memo is not None:
            snapshot["memo"] = self._memo.stats()
        snapshot["degraded"] = self.degraded
        snapshot["worker_respawns"] = self._pool.respawns
        snapshot["worker_crashes"] = self._pool.crashes
        if self.shard_id is not None:
            snapshot["shard"] = self.shard_id
        return snapshot

    def slo_report(self) -> dict:
        """One rolling SLO judgement (tier quantiles, budget burn).

        Each call also advances the monitor's snapshot window and updates
        the ``slo_*`` instruments in the service registry — polling *is*
        the tick (nothing on the serving path pays for SLO accounting).
        """
        return self.slo.observe()

    def metrics_registries(self) -> tuple:
        """The registries a metrics exporter should render, gauges fresh.

        The service's own (namespaced) registry first, then the global one
        carrying span-duration histograms and simulator counters — together
        they are the full picture behind the TCP ``metrics`` command and
        ``repro metrics``.
        """
        self.metrics.refresh_gauges()
        return (self.metrics.registry, obs.get_registry())

    @property
    def database(self) -> PerformanceDatabase:
        """The persistent measurement tier (shared with campaigns/sweeps)."""
        return self._cache.database

    def close(self) -> None:
        """Stop batching, drain workers, release the cache tiers."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.close()
        self._pool.shutdown(wait=True)
        self._cache.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
