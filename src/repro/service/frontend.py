"""Asyncio JSONL/TCP frontend over the shard ring.

The fleet-scale replacement for the thread-per-connection server: one
event loop multiplexes any number of client connections onto a small pool
of persistent connections per shard process. The profiler work in the
perf ledger showed the old frontend's thread churn as the dominant
serving cost once warm predictions are microseconds; here a request costs
a routing lookup and two buffered line writes.

Request path:

1. **Route.** The request's cell identity (:func:`repro.service.shard.
   route_key`) hashes onto the :class:`~repro.service.shard.HashRing`.
   Hot cells (top-k by frequency) may be served by any of the first
   ``replication`` ring shards — deterministic simulation (REP001) makes
   every replica's answer bit-identical — and the least-loaded replica
   wins.
2. **Admit.** If the chosen shard already has ``admission_limit``
   requests in flight from this frontend, the request is *shed* without
   crossing the process boundary: a typed ``ServiceSaturatedError``
   response with an honest ``retry_after`` estimated from the shard's
   recent latency. (The shard's own worker-pool backpressure still
   applies underneath — admission control keeps the queue in front of a
   saturated shard short instead of long.)
3. **Forward.** The raw request line goes down one shard connection;
   responses come back in FIFO order per connection (the shard answers
   each line exactly once, in order), so matching needs no envelope and
   the wire format is unchanged — correlation ``id`` fields pass through
   untouched and bind the shard-side spans.

Failure path: a dropped shard connection fails that connection's
in-flight requests with typed ``WorkerCrashError`` responses (clients'
:class:`~repro.service.api.RetryPolicy` retries them), removes the shard
from the ring — consistent hashing re-routes only its arcs — and
respawns it through the manager in the background. No response is ever
duplicated: each request has exactly one pending future, resolved once.

Aggregation: ``stats`` / ``metrics`` / ``slo`` commands fan out to every
live shard. Shard counters merge into a frontend-held registry via the
counter-delta pattern (:mod:`repro.obs.delta` — restart-aware, so a
respawned shard's counters keep accumulating instead of double-counting),
and SLO reports merge conservatively via
:func:`repro.service.slo.merge_slo_reports`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from repro import obs
from repro.errors import (
    ReproError,
    ServiceError,
    ServiceSaturatedError,
    ServiceTimeoutError,
    WorkerCrashError,
)
from repro.service.api import RetryPolicy, error_dict
from repro.service.shard import HashRing, HotCellTracker, route_key
from repro.service.slo import BURN_CAP, merge_slo_reports

__all__ = [
    "ShardFrontend",
    "ShardedServer",
    "LineClient",
    "FRONTEND_AVAILABILITY_TARGET",
]

#: Fleet availability objective the frontend judges over its own counters
#: (sheds + synthesized shard-loss errors count against the budget).
FRONTEND_AVAILABILITY_TARGET = 0.99


class _ShardConn:
    """One persistent connection to a shard, with its FIFO of futures."""

    __slots__ = ("reader", "writer", "pending", "reader_task")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.pending: deque = deque()
        self.reader_task: Optional[asyncio.Task] = None


class _ShardLink:
    """The frontend's connection pool to one shard process.

    ``conns`` parallel connections give the thread-per-connection shard
    that many concurrent lines; within each connection the shard answers
    strictly in order, so the first pending future always owns the next
    response line. Writes pair with their future enqueue atomically (no
    await between), preserving the FIFO invariant under concurrent
    senders.
    """

    def __init__(
        self,
        shard_id: int,
        address: tuple[str, int],
        conns: int = 2,
        connect_timeout: float = 10.0,
        on_down: Optional[Callable[[int], Any]] = None,
    ):
        self.shard_id = shard_id
        self.address = address
        self.conns = max(1, conns)
        self.connect_timeout = connect_timeout
        self._on_down = on_down
        self._pool: list[_ShardConn] = []
        self._down = False
        #: EWMA of request latency, the honesty behind retry_after.
        self.latency = 0.05

    async def open(self) -> None:
        for _ in range(self.conns):
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*self.address),
                timeout=self.connect_timeout,
            )
            conn = _ShardConn(reader, writer)
            conn.reader_task = asyncio.ensure_future(self._read_loop(conn))
            self._pool.append(conn)

    @property
    def pending_count(self) -> int:
        return sum(len(conn.pending) for conn in self._pool)

    @property
    def down(self) -> bool:
        return self._down

    async def request(self, line: str, timeout: float) -> str:
        """One exchange; raises ``WorkerCrashError`` if the shard dies."""
        if self._down or not self._pool:
            raise WorkerCrashError(
                f"shard {self.shard_id} is down; retry after respawn"
            )
        conn = min(self._pool, key=lambda c: len(c.pending))
        future = asyncio.get_running_loop().create_future()
        # Enqueue + write with no await in between: FIFO order on this
        # connection is exactly the shard's response order.
        conn.pending.append(future)
        conn.writer.write(line.encode("utf-8") + b"\n")
        started = time.monotonic()
        try:
            await conn.writer.drain()
            response = await asyncio.wait_for(future, timeout=timeout)
        except (ConnectionError, WorkerCrashError):
            raise WorkerCrashError(
                f"shard {self.shard_id} dropped mid-request"
            ) from None
        except asyncio.TimeoutError:
            raise ServiceTimeoutError(
                f"shard {self.shard_id} did not answer within {timeout}s",
                timeout=timeout,
            ) from None
        elapsed = time.monotonic() - started
        self.latency = 0.8 * self.latency + 0.2 * elapsed
        return response

    async def _read_loop(self, conn: _ShardConn) -> None:
        try:
            while True:
                raw = await conn.reader.readline()
                if not raw:
                    break
                if conn.pending:
                    future = conn.pending.popleft()
                    if not future.done():
                        future.set_result(raw.decode("utf-8").rstrip("\n"))
        except (ConnectionError, OSError):
            pass
        await self._mark_down(conn)

    async def _mark_down(self, conn: _ShardConn) -> None:
        self._fail_pending(conn)
        first = not self._down
        self._down = True
        if first and self._on_down is not None:
            result = self._on_down(self.shard_id)
            if asyncio.iscoroutine(result):
                await result

    def _fail_pending(self, conn: _ShardConn) -> None:
        while conn.pending:
            future = conn.pending.popleft()
            if not future.done():
                future.set_exception(
                    WorkerCrashError(
                        f"shard {self.shard_id} died with the request "
                        "in flight"
                    )
                )

    async def close(self) -> None:
        self._down = True
        for conn in self._pool:
            self._fail_pending(conn)
            if conn.reader_task is not None:
                conn.reader_task.cancel()
            conn.writer.close()
        self._pool = []


class ShardFrontend:
    """Routing, admission, failover, and aggregation over the shard group.

    Single-threaded by construction: every method below runs on one
    event loop, so the ring, tracker, and counters need no locks. The
    manager (``ProcessShardManager`` or ``InProcessShardManager``) must
    already be started.
    """

    def __init__(
        self,
        manager,
        replication: int = 2,
        hot_k: int = 8,
        admission_limit: int = 32,
        conns_per_shard: int = 2,
        request_timeout: float = 600.0,
        respawn: bool = True,
        ring_vnodes: int = 64,
    ):
        if admission_limit < 1:
            raise ServiceError(
                f"admission_limit must be >= 1, got {admission_limit}"
            )
        if replication < 1:
            raise ServiceError(
                f"replication must be >= 1, got {replication}"
            )
        self.manager = manager
        self.replication = replication
        self.admission_limit = admission_limit
        self.conns_per_shard = conns_per_shard
        self.request_timeout = request_timeout
        self.respawn_enabled = respawn
        self.ring = HashRing(manager.shard_ids, vnodes=ring_vnodes)
        self.hot = HotCellTracker(k=hot_k)
        self._links: dict[int, _ShardLink] = {}
        self._respawning: set[int] = set()
        #: Frontend-local ledger: requests seen, sheds, synthesized errors.
        self.requests = 0
        self.shed = 0
        self.failed = 0
        self.deaths = 0
        self.respawns = 0
        #: Shard counters merged here via restart-aware deltas.
        self._shard_registry = obs.MetricsRegistry()
        self._last_counters: dict[int, dict] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        for shard_id in self.manager.shard_ids:
            await self._open_link(shard_id)

    async def _open_link(self, shard_id: int) -> None:
        link = _ShardLink(
            shard_id,
            self.manager.address(shard_id),
            conns=self.conns_per_shard,
            on_down=self._on_shard_down,
        )
        await link.open()
        self._links[shard_id] = link
        self.ring.add(shard_id)

    async def close(self) -> None:
        for link in self._links.values():
            link._on_down = None  # a deliberate close is not a death
            await link.close()
        self._links = {}

    # -- failure handling --------------------------------------------------

    def _on_shard_down(self, shard_id: int):
        """Link-death callback: reroute now, respawn in the background."""
        self.ring.remove(shard_id)
        self.deaths += 1
        obs.get_registry().counter("shard_deaths", shard=str(shard_id)).inc()
        obs.log("frontend.shard_down", shard=shard_id, live=len(self.ring))
        if self.respawn_enabled and shard_id not in self._respawning:
            self._respawning.add(shard_id)
            return self._respawn(shard_id)
        return None

    async def _respawn(self, shard_id: int) -> None:
        loop = asyncio.get_running_loop()
        try:
            for attempt in range(3):
                try:
                    await loop.run_in_executor(
                        None, self.manager.respawn, shard_id
                    )
                    await self._open_link(shard_id)
                    break
                except (ServiceError, ConnectionError, OSError):
                    if attempt == 2:
                        raise
                    await asyncio.sleep(0.2 * (attempt + 1))
        except (ServiceError, ConnectionError, OSError):
            obs.log("frontend.respawn_failed", shard=shard_id)
            return
        finally:
            self._respawning.discard(shard_id)
        self.respawns += 1
        obs.get_registry().counter(
            "shard_respawns", shard=str(shard_id)
        ).inc()
        obs.log("frontend.shard_respawned", shard=shard_id)

    # -- routing -----------------------------------------------------------

    def _pick_shard(self, key: str) -> int:
        self.hot.observe(key)
        n = self.replication if self.hot.is_hot(key) else 1
        try:
            preference = self.ring.preference(key, n)
        except ServiceError:
            # A total outage between death and respawn is transient —
            # type it so client retry policies ride it out.
            raise WorkerCrashError(
                "no live shards on the ring; retry after respawn"
            ) from None
        live = [s for s in preference if s in self._links]
        if not live:  # pragma: no cover — ring and links track together
            raise WorkerCrashError("no live shard for this key")
        if len(live) == 1:
            return live[0]
        chosen = min(
            live, key=lambda s: self._links[s].pending_count
        )
        if chosen != live[0]:
            obs.get_registry().counter("frontend_replica_routes").inc()
        return chosen

    def _shed_response(self, link: _ShardLink) -> dict[str, Any]:
        self.shed += 1
        obs.get_registry().counter(
            "frontend_shed", shard=str(link.shard_id)
        ).inc()
        retry_after = round(
            max(0.05, link.latency * link.pending_count / link.conns), 4
        )
        return error_dict(
            ServiceSaturatedError(
                f"shard {link.shard_id} admission queue is full "
                f"({link.pending_count} in flight)",
                retry_after=retry_after,
            )
        )

    async def _forward_request(self, payload: dict[str, Any]) -> str:
        """Route one request object; returns the response line."""
        request_id = payload.get("id")
        key = route_key(payload)
        try:
            shard_id = self._pick_shard(key)
        except ServiceError as exc:
            self.failed += 1
            return self._with_id(error_dict(exc), request_id)
        link = self._links[shard_id]
        if link.pending_count >= self.admission_limit:
            return self._with_id(self._shed_response(link), request_id)
        try:
            return await link.request(
                json.dumps(payload), timeout=self.request_timeout
            )
        except (WorkerCrashError, ServiceTimeoutError) as exc:
            self.failed += 1
            obs.get_registry().counter(
                "frontend_shard_errors", shard=str(shard_id)
            ).inc()
            return self._with_id(error_dict(exc), request_id)

    @staticmethod
    def _with_id(response: dict[str, Any], request_id) -> str:
        if request_id is not None:
            response["id"] = request_id
        return json.dumps(response)

    # -- the protocol ------------------------------------------------------

    async def handle_line(self, line: str) -> Optional[str]:
        """One frontend exchange; mirrors :func:`repro.service.api.handle_line`."""
        line = line.strip()
        if not line:
            return None
        if line == "metrics":
            return json.dumps(await self._metrics_payload())
        if line == "slo":
            return json.dumps(await self._slo_payload())
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return json.dumps(
                error_dict(ReproError(f"invalid JSON: {exc}"))
            )
        if isinstance(payload, list):
            return await self._handle_batch(payload)
        if not isinstance(payload, dict):
            return json.dumps(
                error_dict(
                    ReproError("request must be a JSON object or array")
                )
            )
        if payload.get("cmd") == "stats":
            return json.dumps(await self._stats_payload())
        if payload.get("cmd") == "metrics":
            return json.dumps(await self._metrics_payload())
        if payload.get("cmd") == "slo":
            return json.dumps(await self._slo_payload())
        if payload.get("cmd") == "counters":
            return json.dumps(
                error_dict(
                    ReproError(
                        "counters is a shard-internal command; "
                        "use metrics at the frontend"
                    )
                )
            )
        self.requests += 1
        request_id = payload.get("id")
        with obs.correlation(
            str(request_id) if request_id is not None else None
        ), obs.span("frontend.route"):
            return await self._forward_request(payload)

    async def _handle_batch(self, items: list) -> str:
        """Split an array line across shards, reassemble in order."""
        self.requests += len(items)
        results: list[Optional[dict]] = [None] * len(items)
        groups: dict[int, list[int]] = {}
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                results[index] = error_dict(
                    ReproError("batch items must be JSON objects")
                )
                continue
            try:
                shard_id = self._pick_shard(route_key(item))
            except ServiceError as exc:
                self.failed += 1
                results[index] = error_dict(exc)
                continue
            groups.setdefault(shard_id, []).append(index)

        async def _forward_group(shard_id: int, indices: list[int]) -> None:
            link = self._links[shard_id]
            if link.pending_count >= self.admission_limit:
                shed = self._shed_response(link)
                for index in indices:
                    results[index] = dict(shed)
                return
            sub_batch = json.dumps([items[i] for i in indices])
            try:
                raw = await link.request(
                    sub_batch, timeout=self.request_timeout
                )
                sub_results = json.loads(raw)["results"]
            except (WorkerCrashError, ServiceTimeoutError) as exc:
                self.failed += len(indices)
                for index in indices:
                    results[index] = error_dict(exc)
                return
            for index, result in zip(indices, sub_results):
                results[index] = result

        await asyncio.gather(
            *(
                _forward_group(shard_id, indices)
                for shard_id, indices in groups.items()
            )
        )
        for index, item in enumerate(items):
            if (
                isinstance(item, dict)
                and "id" in item
                and results[index] is not None
                and "id" not in results[index]
            ):
                results[index]["id"] = item["id"]
        return json.dumps({"ok": True, "results": results})

    # -- aggregation commands ----------------------------------------------

    async def _shard_command(self, command: str) -> dict[int, dict]:
        """Fan one ``{"cmd": ...}`` out to every live shard."""
        live = list(self._links.items())

        async def _one(shard_id: int, link: _ShardLink):
            try:
                raw = await link.request(
                    json.dumps({"cmd": command}), timeout=30.0
                )
                return shard_id, json.loads(raw)
            except (WorkerCrashError, ServiceTimeoutError):
                return shard_id, None

        gathered = await asyncio.gather(
            *(_one(shard_id, link) for shard_id, link in live)
        )
        return {
            shard_id: doc
            for shard_id, doc in gathered
            if doc is not None and doc.get("ok")
        }

    def frontend_stats(self) -> dict[str, Any]:
        """The frontend's own ledger (requests routed, sheds, deaths...)."""
        return {
            "requests": self.requests,
            "shed": self.shed,
            "failed": self.failed,
            "shard_deaths": self.deaths,
            "shard_respawns": self.respawns,
            "live_shards": len(self.ring),
            "shards": list(self.ring.shard_ids),
            "hot_cells": list(self.hot.top()),
            "pending": {
                str(shard_id): link.pending_count
                for shard_id, link in self._links.items()
            },
        }

    async def _stats_payload(self) -> dict[str, Any]:
        shard_docs = await self._shard_command("stats")
        return {
            "ok": True,
            "stats": {
                "frontend": self.frontend_stats(),
                "shards": {
                    str(shard_id): doc["stats"]
                    for shard_id, doc in shard_docs.items()
                },
            },
        }

    async def _metrics_payload(self) -> dict[str, Any]:
        """Counter-delta merge across the process hop, then export."""
        shard_docs = await self._shard_command("counters")
        for shard_id, doc in shard_docs.items():
            snapshot = {
                (name, tuple(tuple(item) for item in labels)): value
                for name, labels, value in doc["counters"]
            }
            deltas = obs.deltas_between(
                self._last_counters.get(shard_id, {}),
                snapshot,
                allow_reset=True,  # a respawned shard restarts from zero
            )
            obs.merge_counter_deltas(deltas, self._shard_registry)
            self._last_counters[shard_id] = snapshot
        registries = (self._shard_registry, obs.get_registry())
        return {
            "ok": True,
            "metrics": obs.to_json(*registries),
            "prometheus": obs.to_prometheus(*registries),
        }

    async def _slo_payload(self) -> dict[str, Any]:
        shard_docs = await self._shard_command("slo")
        merged = merge_slo_reports(
            {
                str(shard_id): doc["slo"]
                for shard_id, doc in shard_docs.items()
            }
        )
        merged["frontend"] = self._judge_availability()
        return {"ok": True, "slo": merged}

    def _judge_availability(self) -> dict[str, Any]:
        """The frontend's own availability objective over its ledger.

        Sheds and synthesized shard-loss errors are the frontend's
        failures to serve; judging them here (and exporting breaches as
        ordinary counters) is what lets the chaos battery assert "a
        SIGKILLed shard moves the SLO needles".
        """
        total = self.requests
        bad = self.shed + self.failed
        compliance = 1.0 - (bad / total) if total else 1.0
        budget = 1.0 - FRONTEND_AVAILABILITY_TARGET
        burn = (
            min((bad / total) / budget, BURN_CAP) if total else 0.0
        )
        met = compliance >= FRONTEND_AVAILABILITY_TARGET
        registry = obs.get_registry()
        labels = {"objective": "frontend.availability"}
        registry.gauge("slo_burn_rate", labels).set(burn)
        registry.gauge("slo_compliance", labels).set(compliance)
        if not met and total:
            registry.counter("slo_breaches", labels).inc()
        return {
            "name": "frontend.availability",
            "kind": "error_rate",
            "target": FRONTEND_AVAILABILITY_TARGET,
            "total": total,
            "bad": bad,
            "shed": self.shed,
            "failed": self.failed,
            "shard_deaths": self.deaths,
            "shard_respawns": self.respawns,
            "compliance": compliance,
            "burn_rate": burn,
            "met": met,
        }

    # -- client connections ------------------------------------------------

    async def serve_client(self, reader, writer) -> None:
        """One client connection: pipelined, responses in request order.

        Each line becomes a task; each task awaits its predecessor before
        writing, so responses stream back in request order even when a
        later request (an L1 hit on another shard) finishes first.
        """
        previous: Optional[asyncio.Task] = None
        in_flight: deque = deque()
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                previous = asyncio.ensure_future(
                    self._respond(raw.decode("utf-8"), previous, writer)
                )
                in_flight.append(previous)
                # Bound per-client pipelining: admission control sheds
                # fast, but a firehose client must not grow the task list
                # without limit.
                while len(in_flight) > 4 * self.admission_limit:
                    await in_flight.popleft()
        except (ConnectionError, OSError):  # pragma: no cover — client gone
            pass
        finally:
            if previous is not None:
                try:
                    await asyncio.wait_for(
                        previous, timeout=self.request_timeout
                    )
                except (
                    asyncio.TimeoutError,
                    ConnectionError,
                    OSError,
                ):  # pragma: no cover — slow drain on a dead client
                    pass
            writer.close()

    async def _respond(
        self,
        line: str,
        previous: Optional[asyncio.Task],
        writer,
    ) -> None:
        try:
            response = await self.handle_line(line)
        except ReproError as exc:
            response = json.dumps(error_dict(exc))
        if previous is not None:
            await previous
        if response is None:
            return
        try:
            writer.write(response.encode("utf-8") + b"\n")
            await writer.drain()
        except (ConnectionError, OSError):
            obs.get_registry().counter("client_disconnects").inc()


class ShardedServer:
    """Run a :class:`ShardFrontend` behind a TCP listener, synchronously.

    The harness both the CLI and the test battery drive: owns the event
    loop on a daemon thread, binds the listener, and exposes the bound
    address plus a thread-safe way to push lines through the frontend
    (stdin mode). The shard *manager* is owned by the caller — the
    server only borrows it.
    """

    def __init__(
        self,
        manager,
        host: str = "127.0.0.1",
        port: int = 0,
        **frontend_kwargs: Any,
    ):
        self.manager = manager
        self.host = host
        self.port = port
        self._frontend_kwargs = frontend_kwargs
        self.frontend: Optional[ShardFrontend] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stopping = False
        self._bound: Optional[tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 120.0) -> tuple[str, int]:
        """Start serving; returns the bound (host, port)."""
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-shard-frontend"
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("sharded frontend failed to start in time")
        if self._startup_error is not None:
            raise ServiceError(
                f"sharded frontend failed to start: {self._startup_error}"
            )
        assert self._bound is not None
        return self._bound

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # noqa: BLE001 — surfaced to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.frontend = ShardFrontend(self.manager, **self._frontend_kwargs)
        await self.frontend.start()
        server = await asyncio.start_server(
            self.frontend.serve_client, self.host, self.port
        )
        self._bound = server.sockets[0].getsockname()[:2]
        obs.log(
            "frontend.listening",
            host=self._bound[0],
            port=self._bound[1],
            shards=len(self.manager.shard_ids),
        )
        self._ready.set()
        try:
            while not self._stopping:
                await asyncio.sleep(0.05)
        finally:
            server.close()
            await server.wait_closed()
            await self.frontend.close()
            obs.log("frontend.stopped")

    def handle(self, line: str, timeout: float = 600.0) -> Optional[str]:
        """Push one protocol line through the frontend (stdin mode)."""
        if self._loop is None or self.frontend is None:
            raise ServiceError("sharded server is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.frontend.handle_line(line), self._loop
        )
        return future.result(timeout)

    def stop(self, timeout: float = 30.0) -> None:
        self._stopping = True
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ShardedServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


#: Wire error types a :class:`LineClient` treats as transient.
_RETRYABLE_WIRE = ("ServiceSaturatedError", "WorkerCrashError")


class LineClient:
    """Synchronous JSONL/TCP client with the service's retry semantics.

    The socket twin of :class:`~repro.service.api.ServiceClient`:
    ``predict`` retries transient wire errors (saturation sheds, shard
    deaths) under a :class:`~repro.service.api.RetryPolicy`, honouring
    ``retry_after`` hints, and transparently reconnects if the server
    dropped the connection in between. ``sleep`` is injectable so tests
    can assert on the honoured backoff schedule without waiting.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 600.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.address = (host, port)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._file = None

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            self.address, timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def request_line(self, line: str) -> dict[str, Any]:
        """One raw exchange; reconnects once on a dropped connection."""
        for attempt in (0, 1):
            if self._sock is None:
                self._connect()
            try:
                assert self._file is not None
                self._file.write(line.encode("utf-8") + b"\n")
                self._file.flush()
                raw = self._file.readline()
            except (ConnectionError, OSError, TimeoutError):
                self.close()
                if attempt:
                    raise
                continue
            if raw:
                return json.loads(raw.decode("utf-8"))
            # EOF: the server closed on us; reconnect once.
            self.close()
            if attempt:
                raise ServiceError(
                    "server closed the connection without responding"
                )
        raise ServiceError(  # pragma: no cover — loop always returns/raises
            "unreachable"
        )

    def request(self, payload: Any) -> dict[str, Any]:
        """One exchange with a JSON payload (object, array, or command)."""
        return self.request_line(json.dumps(payload))

    def predict(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Request with retry: returns the final wire response dict."""
        delays = self.retry.delays()
        while True:
            try:
                response = self.request(payload)
            except (ConnectionError, OSError, ServiceError):
                # The frontend itself vanished mid-exchange: retry on the
                # same schedule as a shard loss.
                response = None
            if (
                response is not None
                and (
                    response.get("ok")
                    or response.get("error_type") not in _RETRYABLE_WIRE
                )
            ):
                return response
            try:
                delay = next(delays)
            except StopIteration:
                if response is not None:
                    return response
                raise ServiceError(
                    "connection to the frontend kept failing"
                ) from None
            if response is not None:
                hint = response.get("retry_after")
                if hint is not None:
                    delay = max(delay, float(hint))
            obs.get_registry().counter("retry_attempts").inc()
            self._sleep(delay)

    def stats(self) -> dict[str, Any]:
        return self.request({"cmd": "stats"})

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except (OSError, ValueError):  # pragma: no cover — best effort
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover — best effort
                pass
            self._sock = None

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
