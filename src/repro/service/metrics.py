"""Service observability: counters, gauges, and latency histograms.

Everything is thread-safe and cheap on the hot path (a lock plus an
append); :meth:`ServiceMetrics.stats` takes a consistent snapshot the CLI
prints on shutdown and the benchmarks assert on.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "ServiceMetrics", "render_stats"]


class Counter:
    """A monotonically increasing event count."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (e.g. queue depth)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._high_water = 0
        self._lock = threading.Lock()

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value
            self._high_water = max(self._high_water, value)

    def adjust(self, delta: int) -> None:
        with self._lock:
            self._value += delta
            self._high_water = max(self._high_water, self._value)

    @property
    def value(self) -> int:
        return self._value

    @property
    def high_water(self) -> int:
        return self._high_water


class Histogram:
    """Sampled distribution with percentile queries.

    Keeps at most ``capacity`` observations; once full, every ``stride``-th
    observation replaces a slot round-robin so long runs stay bounded while
    the recent shape survives. Totals (count/sum/max) are exact regardless.
    """

    def __init__(self, name: str, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"histogram capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._samples: list[float] = []
        self._cursor = 0
        self._count = 0
        self._sum = 0.0
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._count += 1
            self._sum += value
            self._max = value if self._max is None else max(self._max, value)
            if len(self._samples) < self.capacity:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % self.capacity

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Exact mean over every observation (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the retained samples."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in 0..100, got {p}")
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return 0.0
        rank = (p / 100.0) * (len(data) - 1)
        low = int(rank)
        high = min(low + 1, len(data) - 1)
        frac = rank - low
        return data[low] * (1 - frac) + data[high] * frac

    def snapshot(self) -> dict[str, float]:
        """count / mean / p50 / p95 / max in one dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


class ServiceMetrics:
    """Every signal the prediction service emits.

    ``queue_depth_fn`` is polled at snapshot time so the gauge always
    reflects the live worker queue rather than a stale counter.
    """

    def __init__(self, queue_depth_fn: Optional[Callable[[], int]] = None):
        self.requests = Counter("requests")
        self.l1_hits = Counter("l1_hits")
        self.l2_hits = Counter("l2_hits")
        self.misses = Counter("misses")
        self.coalesced = Counter("coalesced")
        self.rejected = Counter("rejected")
        self.errors = Counter("errors")
        self.batches = Counter("batches")
        self.simulations = Counter("simulations")
        self.batch_sizes = Histogram("batch_sizes")
        self.latency = Histogram("latency_seconds")
        self.cell_seconds = Histogram("cell_seconds")
        self.queue_depth = Gauge("queue_depth")
        self._queue_depth_fn = queue_depth_fn

    def record_batch(self, size: int) -> None:
        """One dispatched batch of ``size`` coalesced request groups."""
        self.batches.inc()
        self.batch_sizes.observe(float(size))

    def cache_hit_ratio(self) -> float:
        """Fraction of requests answered without running a simulation."""
        served = self.requests.value
        if served == 0:
            return 0.0
        hits = self.l1_hits.value + self.l2_hits.value + self.coalesced.value
        return hits / served

    def stats(self) -> dict:
        """A consistent JSON-friendly snapshot of every signal."""
        if self._queue_depth_fn is not None:
            self.queue_depth.set(self._queue_depth_fn())
        return {
            "requests": self.requests.value,
            "l1_hits": self.l1_hits.value,
            "l2_hits": self.l2_hits.value,
            "misses": self.misses.value,
            "coalesced": self.coalesced.value,
            "rejected": self.rejected.value,
            "errors": self.errors.value,
            "batches": self.batches.value,
            "simulations": self.simulations.value,
            "cache_hit_ratio": self.cache_hit_ratio(),
            "batch_size": self.batch_sizes.snapshot(),
            "latency_seconds": self.latency.snapshot(),
            "cell_seconds": self.cell_seconds.snapshot(),
            "queue_depth": self.queue_depth.value,
            "queue_depth_high_water": self.queue_depth.high_water,
        }


def render_stats(stats: dict, indent: int = 0) -> str:
    """Human-readable rendering of a :meth:`ServiceMetrics.stats` snapshot."""
    pad = " " * indent
    lines = []
    for key, value in stats.items():
        if isinstance(value, dict):
            inner = ", ".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in value.items()
            )
            lines.append(f"{pad}{key}: {inner}")
        elif isinstance(value, float):
            lines.append(f"{pad}{key}: {value:.6g}")
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
