"""Service observability: counters, gauges, and latency histograms.

Since the :mod:`repro.obs` substrate landed, this module is a thin layer
over :class:`repro.obs.registry.MetricsRegistry`: the instrument classes
re-exported here *are* the obs ones, and :class:`ServiceMetrics` creates
its instruments inside a ``service``-namespaced registry so the TCP
``metrics`` command and ``repro metrics`` can export them alongside the
global registry (spans, simulator counters) in one Prometheus/JSON
document. The public API — named attributes, :meth:`ServiceMetrics.stats`,
:func:`render_stats` — is unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analytic.tiers import TIER_ANALYTIC, TIERS
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "ServiceMetrics", "render_stats"]

#: Symmetric buckets for *signed* relative error (analytic vs simulation
#: ground truth); the default log buckets only resolve positive values.
SIGNED_ERROR_BUCKETS = (
    -1.0, -0.5, -0.25, -0.1, -0.05, -0.02, -0.01,
    0.0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class ServiceMetrics:
    """Every signal the prediction service emits.

    ``queue_depth_fn`` is polled at snapshot time so the gauge always
    reflects the live worker queue rather than a stale counter. Each
    service instance owns its registry (pass ``registry`` to share one),
    so multiple services in one process do not mix their counts.
    """

    def __init__(
        self,
        queue_depth_fn: Optional[Callable[[], int]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry or MetricsRegistry(namespace="service")
        self.requests = self.registry.counter("requests")
        self.l1_hits = self.registry.counter("l1_hits")
        self.l2_hits = self.registry.counter("l2_hits")
        self.misses = self.registry.counter("misses")
        self.coalesced = self.registry.counter("coalesced")
        self.rejected = self.registry.counter("rejected")
        self.errors = self.registry.counter("errors")
        self.timeouts = self.registry.counter("timeouts")
        self.degraded_rejects = self.registry.counter("degraded_rejects")
        self.batches = self.registry.counter("batches")
        self.simulations = self.registry.counter("simulations")
        self.batch_sizes = self.registry.histogram("batch_sizes")
        self.latency = self.registry.histogram("latency_seconds")
        self.cell_seconds = self.registry.histogram("cell_seconds")
        self.queue_depth = self.registry.gauge("queue_depth")
        self._hit_ratio = self.registry.gauge("cache_hit_ratio")
        # Tier-ladder instruments: one request counter and one latency
        # histogram per rung, plus the analytic tier's escalation counter
        # and its signed relative error against simulation ground truth.
        self.tier_requests = {
            tier: self.registry.counter("tier_requests", tier=tier)
            for tier in TIERS
        }
        self.tier_latency = {
            tier: self.registry.histogram("tier_latency_seconds", tier=tier)
            for tier in TIERS
        }
        self.analytic_escalations = self.registry.counter(
            "analytic_escalations"
        )
        self.analytic_signed_rel_error = self.registry.histogram(
            "tier_signed_rel_error",
            buckets=SIGNED_ERROR_BUCKETS,
            tier=TIER_ANALYTIC,
        )
        self._queue_depth_fn = queue_depth_fn

    def record_tier(self, tier: str, seconds: float) -> None:
        """One request answered by ladder rung ``tier`` in ``seconds``."""
        counter = self.tier_requests.get(tier)
        if counter is None:  # unknown rung: still count, never drop
            counter = self.registry.counter("tier_requests", tier=tier)
            histogram = self.registry.histogram(
                "tier_latency_seconds", tier=tier
            )
        else:
            histogram = self.tier_latency[tier]
        counter.inc()
        histogram.observe(seconds)

    def record_signed_error(self, error: float) -> None:
        """Signed relative error of an analytic answer vs simulation truth."""
        self.analytic_signed_rel_error.observe(error)

    def record_batch(self, size: int) -> None:
        """One dispatched batch of ``size`` coalesced request groups."""
        self.batches.inc()
        self.batch_sizes.observe(float(size))

    def cache_hit_ratio(self) -> float:
        """Fraction of requests answered without running a simulation."""
        served = self.requests.value
        if served == 0:
            return 0.0
        hits = self.l1_hits.value + self.l2_hits.value + self.coalesced.value
        return hits / served

    def refresh_gauges(self) -> None:
        """Fold the derived/live signals into their gauges (pre-export)."""
        if self._queue_depth_fn is not None:
            self.queue_depth.set(self._queue_depth_fn())
        self._hit_ratio.set(self.cache_hit_ratio())

    def stats(self) -> dict:
        """A consistent JSON-friendly snapshot of every signal."""
        self.refresh_gauges()
        return {
            "requests": self.requests.value,
            "l1_hits": self.l1_hits.value,
            "l2_hits": self.l2_hits.value,
            "misses": self.misses.value,
            "coalesced": self.coalesced.value,
            "rejected": self.rejected.value,
            "errors": self.errors.value,
            "timeouts": self.timeouts.value,
            "degraded_rejects": self.degraded_rejects.value,
            "batches": self.batches.value,
            "simulations": self.simulations.value,
            "cache_hit_ratio": self.cache_hit_ratio(),
            "tier_requests": {
                tier: counter.value
                for tier, counter in self.tier_requests.items()
            },
            "tier_latency_seconds": {
                tier: histogram.snapshot()
                for tier, histogram in self.tier_latency.items()
            },
            "analytic_escalations": self.analytic_escalations.value,
            "analytic_signed_rel_error": (
                self.analytic_signed_rel_error.snapshot()
            ),
            "batch_size": self.batch_sizes.snapshot(),
            "latency_seconds": self.latency.snapshot(),
            "cell_seconds": self.cell_seconds.snapshot(),
            "queue_depth": self.queue_depth.value,
            "queue_depth_high_water": self.queue_depth.high_water,
        }


def render_stats(stats: dict, indent: int = 0) -> str:
    """Human-readable rendering of a :meth:`ServiceMetrics.stats` snapshot."""
    pad = " " * indent
    lines = []
    for key, value in stats.items():
        if isinstance(value, dict) and any(
            isinstance(v, dict) for v in value.values()
        ):
            # Per-tier families: one indented line per tier label.
            lines.append(f"{pad}{key}:")
            lines.append(render_stats(value, indent=indent + 2))
        elif isinstance(value, dict):
            inner = ", ".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in value.items()
            )
            lines.append(f"{pad}{key}: {inner}")
        elif isinstance(value, float):
            lines.append(f"{pad}{key}: {value:.6g}")
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
