"""Shard ring, shard processes, and their managers for sharded serving.

``repro serve --shards N`` splits the prediction keyspace over N
shared-nothing worker *processes*. Each shard owns a full
:class:`~repro.service.engine.PredictionService` — its own L1 cache,
sqlite tier, memo ``cache_dir`` slice, batcher, worker pool, SLO monitor —
and speaks the ordinary JSONL/TCP line protocol on a loopback port, so
every robustness property of the single-process server (single-flight
dedup, backpressure, deadlines, degraded mode) holds *per shard* with no
new code.

This module owns the pieces below the asyncio frontend
(:mod:`repro.service.frontend`):

* :class:`HashRing` — consistent hashing with virtual nodes. Cells map to
  shards by the hash of their routing key; removing a shard remaps only
  ~1/N of the keyspace (onto the ring neighbours), which is what lets the
  frontend survive a SIGKILLed shard by re-routing instead of re-sharding.
* :class:`HotCellTracker` — frequency top-k over routing keys. The
  hottest cells are *replicated*: servable by the first ``replication``
  distinct shards clockwise from their ring point. Safe because cell
  results are deterministic (REP001) — any replica computes bit-identical
  floats — so replication trades duplicate simulation work for load
  spreading, with each replica warming its own cache.
* :class:`ShardServiceConfig` — the picklable recipe for one shard's
  service (per-shard db path / memo slice derived by
  :func:`make_shard_configs`), shipped to the child process.
* :func:`shard_main` — the child entry point: install the fault plan,
  build the service, serve the line protocol with the
  ``shard.process.exit`` death checkpoint wrapped around every line.
* :class:`ProcessShardManager` / :class:`InProcessShardManager` — spawn,
  monitor, kill, and respawn the group (real processes for production and
  chaos tests; in-process threads for fast unit tests and custom
  ``execute`` hooks).
"""

from __future__ import annotations

import bisect
import hashlib
import importlib
import multiprocessing
import os
import signal
import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro import faults, obs
from repro.errors import ServiceError
from repro.instrument.runner import MeasurementConfig
from repro.service.api import handle_line, serve_socket
from repro.service.engine import PredictionService
from repro.service.slo import SLOObjective
from repro.simmachine.machine import MachineConfig

__all__ = [
    "HashRing",
    "HotCellTracker",
    "ShardServiceConfig",
    "make_shard_configs",
    "shard_main",
    "ProcessShardManager",
    "InProcessShardManager",
    "route_key",
]

#: Exit code a shard uses when the ``shard.process.exit`` fault fires —
#: distinguishable from a clean shutdown in the manager's post-mortem.
FAULT_EXIT_CODE = 17


def route_key(request: Mapping[str, Any]) -> str:
    """The ring key of one wire request: its *cell* identity.

    Matches :attr:`PredictRequest.config_key` (benchmark, class, nprocs,
    seed) and deliberately excludes ``chain_length``, so all chain lengths
    of one cell land on the same shard and keep coalescing into a single
    measurement plan in that shard's batcher. Malformed requests still
    route (to wherever their best-effort key lands) — the shard answers
    them with the typed error.
    """
    return "|".join(
        str(request.get(field_name))
        for field_name in ("benchmark", "problem_class", "nprocs", "seed")
    )


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each shard id contributes ``vnodes`` points on a 64-bit ring (SHA-256
    of ``"shard:replica"`` — stable across processes and Python builds,
    unlike ``hash()``). A key belongs to the first point clockwise from
    its own hash. ``preference(key, n)`` walks further clockwise for the
    n distinct successor shards — the replica set for hot cells and the
    natural failover order when a shard dies.
    """

    def __init__(self, shard_ids: Sequence[int] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, int]] = []  # (hash, shard_id), sorted
        self._hashes: list[int] = []  # parallel list for bisect
        self._shards: set[int] = set()
        for shard_id in shard_ids:
            self.add(shard_id)

    @staticmethod
    def _hash(material: str) -> int:
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """Live shards, sorted."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    def add(self, shard_id: int) -> None:
        """Add a shard's virtual nodes (idempotent)."""
        if shard_id in self._shards:
            return
        self._shards.add(shard_id)
        for replica in range(self.vnodes):
            point = (self._hash(f"{shard_id}:{replica}"), shard_id)
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._hashes.insert(index, point[0])

    def remove(self, shard_id: int) -> None:
        """Drop a shard; its arcs fall to the clockwise successors."""
        if shard_id not in self._shards:
            return
        self._shards.discard(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]
        self._hashes = [h for h, _ in self._points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key``."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, n: int = 1) -> tuple[int, ...]:
        """The first ``n`` distinct shards clockwise from ``key``'s point.

        Index 0 is the owner; the rest are the replica/failover order.
        ``n`` is clamped to the number of live shards.
        """
        if not self._points:
            raise ServiceError("no live shards on the ring")
        n = min(n, len(self._shards))
        start = bisect.bisect_right(self._hashes, self._hash(key))
        chosen: list[int] = []
        total = len(self._points)
        for step in range(total):
            shard_id = self._points[(start + step) % total][1]
            if shard_id not in chosen:
                chosen.append(shard_id)
                if len(chosen) == n:
                    break
        return tuple(chosen)


class HotCellTracker:
    """Frequency top-k over routing keys, cheap enough for the hot path.

    Counts every observation; recomputes the top-``k`` set every
    ``recompute_every`` observations (an O(n log n) sort amortized to
    ~O(1) per request). When the table exceeds ``max_keys``, every count
    is halved and zeros dropped — an exponential decay that lets yesterday's
    hot cells cool off instead of squatting in the top-k forever.
    """

    def __init__(
        self,
        k: int = 8,
        recompute_every: int = 64,
        max_keys: int = 4096,
    ):
        if k < 0:
            raise ServiceError(f"k must be >= 0, got {k}")
        self.k = k
        self.recompute_every = max(1, recompute_every)
        self.max_keys = max(16, max_keys)
        self._counts: dict[str, int] = {}
        self._hot: frozenset[str] = frozenset()
        self._since_recompute = 0

    def observe(self, key: str) -> None:
        """Record one request for ``key``."""
        if self.k == 0:
            return
        self._counts[key] = self._counts.get(key, 0) + 1
        self._since_recompute += 1
        if self._since_recompute >= self.recompute_every:
            self._recompute()

    def _recompute(self) -> None:
        self._since_recompute = 0
        if len(self._counts) > self.max_keys:
            self._counts = {
                key: count // 2
                for key, count in self._counts.items()
                if count // 2 > 0
            }
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        self._hot = frozenset(key for key, _ in ranked[: self.k])

    def is_hot(self, key: str) -> bool:
        """Whether ``key`` is currently in the top-k (replicated) set."""
        return key in self._hot

    def top(self) -> tuple[str, ...]:
        """The current hot set (unordered snapshot as a sorted tuple)."""
        return tuple(sorted(self._hot))


@dataclass(frozen=True)
class ShardServiceConfig:
    """Everything one shard process needs to build its service.

    Value-only on purpose (REP007 discipline): configs are frozen
    dataclasses, the fault plan rides along as data, and a custom cell
    executor crosses the process boundary as a dotted reference
    (``"module:callable"``) resolved in the child — never a live callable.
    """

    shard_id: int
    machine: Optional[MachineConfig] = None
    measurement: Optional[MeasurementConfig] = None
    db_path: str = ":memory:"
    cache_capacity: int = 1024
    cache_ttl: Optional[float] = None
    batch_window: float = 0.005
    max_batch: Optional[int] = None
    max_workers: int = 2
    queue_depth: int = 16
    executor: str = "thread"
    application_seed: int = 7
    default_timeout: Optional[float] = None
    crash_threshold: int = 3
    degraded_probe_every: int = 8
    cache_dir: Optional[str] = None
    tier_policy: str = "exact"
    slo_objectives: Optional[tuple[SLOObjective, ...]] = None
    slo_window: int = 60
    fault_plan: Optional[faults.FaultPlan] = None
    execute_ref: Optional[str] = None

    def resolve_execute(self) -> Optional[Callable[..., Any]]:
        """Import the ``execute_ref`` hook (child side), if any."""
        if self.execute_ref is None:
            return None
        module_name, _, attr = self.execute_ref.partition(":")
        if not module_name or not attr:
            raise ServiceError(
                f"execute_ref must be 'module:callable', "
                f"got {self.execute_ref!r}"
            )
        return getattr(importlib.import_module(module_name), attr)

    def build_service(self) -> PredictionService:
        """Construct this shard's shared-nothing service instance."""
        return PredictionService(
            machine=self.machine,
            measurement=self.measurement,
            db_path=self.db_path,
            cache_capacity=self.cache_capacity,
            cache_ttl=self.cache_ttl,
            batch_window=self.batch_window,
            max_batch=self.max_batch,
            max_workers=self.max_workers,
            queue_depth=self.queue_depth,
            executor=self.executor,
            application_seed=self.application_seed,
            execute=self.resolve_execute(),
            default_timeout=self.default_timeout,
            crash_threshold=self.crash_threshold,
            degraded_probe_every=self.degraded_probe_every,
            cache_dir=self.cache_dir,
            tier_policy=self.tier_policy,
            slo_objectives=self.slo_objectives,
            slo_window=self.slo_window,
            shard_id=self.shard_id,
        )


def make_shard_configs(
    shards: int,
    db_path: str = ":memory:",
    cache_dir: Optional[str] = None,
    **service_kwargs: Any,
) -> list[ShardServiceConfig]:
    """Per-shard configs with disjoint persistence slices.

    A file-backed ``db_path`` becomes ``{db_path}.shard{NN}`` per shard
    and a memo ``cache_dir`` becomes ``{cache_dir}/shard-{NN}`` — shards
    share *nothing*, so there is no cross-process locking anywhere in the
    serving tier. ``:memory:`` stays per-process private by nature.
    """
    if shards < 1:
        raise ServiceError(f"shards must be >= 1, got {shards}")
    configs = []
    for shard_id in range(shards):
        shard_db = (
            db_path
            if db_path == ":memory:"
            else f"{db_path}.shard{shard_id:02d}"
        )
        shard_cache = (
            os.path.join(cache_dir, f"shard-{shard_id:02d}")
            if cache_dir is not None
            else None
        )
        configs.append(
            ShardServiceConfig(
                shard_id=shard_id,
                db_path=shard_db,
                cache_dir=shard_cache,
                **service_kwargs,
            )
        )
    return configs


def make_shard_handler(
    service: PredictionService,
) -> Callable[[str], Optional[str]]:
    """The per-line handler a shard serves: death checkpoint + protocol.

    The ``shard.process.exit`` fault models a shard dying *mid-line* —
    request parsed, work possibly done, answer never written. ``os._exit``
    (not ``sys.exit``) so no finally-block can soften the crash; the
    frontend must observe a vanished connection exactly as it would after
    a SIGKILL or an OOM kill.
    """

    def _handle(line: str) -> Optional[str]:
        if faults.check("shard.process.exit") is not None:
            obs.log("shard.fault_exit", shard=service.shard_id)
            os._exit(FAULT_EXIT_CODE)
        return handle_line(service, line)

    return _handle


def shard_main(config: ShardServiceConfig, conn) -> None:  # pragma: no cover
    """Child-process entry: serve one shard until told to stop.

    Announces the bound ``(host, port)`` through ``conn`` (a
    ``multiprocessing`` pipe), then serves until SIGTERM — translated to
    ``SystemExit`` so the server and service unwind cleanly — or until a
    fault/SIGKILL takes the process down hard.

    Runs in the child, so parent-side coverage cannot see it; the
    handler/service path it assembles is covered via the in-process
    manager, and the whole entry via the chaos battery.
    """
    faults.clear()
    if config.fault_plan is not None:
        faults.install(config.fault_plan)

    def _terminate(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    service = config.build_service()
    try:
        serve_socket(
            service,
            host="127.0.0.1",
            port=0,
            announce=lambda addr: conn.send(addr),
            handler=make_shard_handler(service),
        )
    finally:
        service.close()


class ProcessShardManager:
    """Spawn and supervise the shared-nothing shard process group.

    Uses the ``forkserver`` start method where available (children fork
    from a clean server process that has already imported this module, so
    respawn after a SIGKILL costs milliseconds, not a full interpreter
    boot) and falls back to ``spawn``. The frontend drives
    :meth:`respawn` from its event loop when a shard connection drops.
    """

    def __init__(
        self,
        configs: Sequence[ShardServiceConfig],
        start_method: Optional[str] = None,
        spawn_timeout: float = 120.0,
    ):
        if not configs:
            raise ServiceError("at least one shard config is required")
        ids = [config.shard_id for config in configs]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate shard ids: {ids}")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = (
                "forkserver" if "forkserver" in available else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        if start_method == "forkserver":
            try:
                self._ctx.set_forkserver_preload(["repro.service.shard"])
            except ValueError:  # pragma: no cover — server already running
                pass
        self.spawn_timeout = spawn_timeout
        self._configs = {config.shard_id: config for config in configs}
        self._lock = threading.Lock()
        self._procs: dict[int, Any] = {}
        self._addrs: dict[int, tuple[str, int]] = {}

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._configs))

    def start(self) -> None:
        """Spawn every shard and wait for each to announce its port."""
        for shard_id in self.shard_ids:
            self._spawn(shard_id)

    def _spawn(self, shard_id: int) -> tuple[str, int]:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=shard_main,
            args=(self._configs[shard_id], child_conn),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self.spawn_timeout):
            proc.terminate()
            raise ServiceError(
                f"shard {shard_id} did not announce its port within "
                f"{self.spawn_timeout}s"
            )
        try:
            addr = parent_conn.recv()
        except EOFError:
            proc.join(5.0)
            raise ServiceError(
                f"shard {shard_id} died during startup "
                f"(exit code {proc.exitcode})"
            ) from None
        finally:
            parent_conn.close()
        with self._lock:
            self._procs[shard_id] = proc
            self._addrs[shard_id] = tuple(addr)
        obs.log(
            "shard.spawned", shard=shard_id, pid=proc.pid, port=addr[1]
        )
        return tuple(addr)

    def address(self, shard_id: int) -> tuple[str, int]:
        return self._addrs[shard_id]

    def pid(self, shard_id: int) -> Optional[int]:
        proc = self._procs.get(shard_id)
        return proc.pid if proc is not None else None

    def alive(self, shard_id: int) -> bool:
        proc = self._procs.get(shard_id)
        return proc is not None and proc.is_alive()

    def kill(self, shard_id: int) -> None:
        """SIGKILL one shard — the chaos battery's murder weapon."""
        proc = self._procs.get(shard_id)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(10.0)

    def respawn(self, shard_id: int) -> tuple[str, int]:
        """Replace a dead shard with a fresh process; returns its address.

        The replacement starts cold (empty L1) but inherits the shard's
        persistent slices (sqlite file, memo directory), so previously
        simulated cells come back warm from disk.
        """
        old = self._procs.get(shard_id)
        if old is not None:
            if old.is_alive():  # pragma: no cover — defensive
                old.terminate()
            old.join(10.0)
        return self._spawn(shard_id)

    def stop(self) -> None:
        """Terminate the group (SIGTERM, then SIGKILL stragglers)."""
        with self._lock:
            procs = dict(self._procs)
            self._procs = {}
            self._addrs = {}
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        for shard_id, proc in procs.items():
            proc.join(10.0)
            if proc.is_alive():  # pragma: no cover — stuck child
                proc.kill()
                proc.join(10.0)
            obs.log("shard.stopped", shard=shard_id, code=proc.exitcode)

    def __enter__(self) -> "ProcessShardManager":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class InProcessShardManager:
    """The same manager surface over in-process server threads.

    For unit tests and single-machine experiments: each "shard" is a
    :func:`serve_socket` thread in this process, built by a factory so
    tests can inject custom ``execute`` hooks (impossible across a real
    process boundary) and still exercise the full frontend↔shard wire
    path, admission control, and respawn logic. ``kill`` shuts the
    shard's server down abruptly — connections drop exactly as the
    frontend would see a process death, minus the SIGKILL.
    """

    def __init__(
        self, factories: Sequence[Callable[[], PredictionService]]
    ):
        if not factories:
            raise ServiceError("at least one shard factory is required")
        self._factories = dict(enumerate(factories))
        self._lock = threading.Lock()
        self._services: dict[int, PredictionService] = {}
        self._servers: dict[int, Any] = {}
        self._threads: dict[int, threading.Thread] = {}
        self._addrs: dict[int, tuple[str, int]] = {}

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._factories))

    def start(self) -> None:
        for shard_id in self.shard_ids:
            self._spawn(shard_id)

    def _spawn(self, shard_id: int) -> tuple[str, int]:
        service = self._factories[shard_id]()
        if service.shard_id is None:
            service.shard_id = shard_id
        ready = threading.Event()
        bound: list = []
        control: list = []
        thread = threading.Thread(
            target=serve_socket,
            args=(service,),
            kwargs={
                "host": "127.0.0.1",
                "port": 0,
                "ready": ready,
                "bound": bound,
                "control": control,
                "handler": make_shard_handler(service),
            },
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        thread.start()
        if not ready.wait(30.0):  # pragma: no cover — defensive
            raise ServiceError(f"in-process shard {shard_id} failed to bind")
        with self._lock:
            self._services[shard_id] = service
            self._servers[shard_id] = control[0]
            self._threads[shard_id] = thread
            self._addrs[shard_id] = tuple(bound[0])
        return tuple(bound[0])

    def service(self, shard_id: int) -> PredictionService:
        """The live service object (tests reach in to assert on it)."""
        return self._services[shard_id]

    def address(self, shard_id: int) -> tuple[str, int]:
        return self._addrs[shard_id]

    def pid(self, shard_id: int) -> Optional[int]:
        return None

    def alive(self, shard_id: int) -> bool:
        thread = self._threads.get(shard_id)
        return thread is not None and thread.is_alive()

    def kill(self, shard_id: int) -> None:
        """Tear the shard's server down; open connections drop."""
        server = self._servers.get(shard_id)
        if server is not None:
            server.shutdown()
            server.server_close()
        thread = self._threads.get(shard_id)
        if thread is not None:
            thread.join(10.0)
        service = self._services.get(shard_id)
        if service is not None:
            service.close()

    def respawn(self, shard_id: int) -> tuple[str, int]:
        return self._spawn(shard_id)

    def stop(self) -> None:
        for shard_id in self.shard_ids:
            if self.alive(shard_id):
                self.kill(shard_id)
            elif shard_id in self._services:
                self._services[shard_id].close()

    def __enter__(self) -> "InProcessShardManager":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
