"""Serving SLOs: rolling tier quantiles, objectives, error-budget burn.

The service already *measures* everything (per-tier latency histograms,
error/timeout counters — :mod:`repro.service.metrics`); this module turns
those cumulative instruments into *judgements*: is the service meeting its
latency and error-rate objectives right now, and how fast is it burning
the error budget when it is not?

Mechanics: the metrics are monotone cumulative (histogram bucket counts,
counters), so the monitor keeps a bounded ring of **state snapshots** and
diffs the newest against the oldest — a rolling window measured in
observations, with zero cost on the serving path itself (nothing here is
called per request). Quantiles over the window come from the bucket-count
deltas via :func:`repro.obs.registry.quantile_from_counts` — the same
log-interpolating estimator ``Histogram.quantile`` uses, applied to the
window's own distribution rather than the lifetime one.

Objectives are declarative (:class:`SLOObjective`):

* ``latency`` — at least ``target`` of the window's requests (optionally
  of one serving tier) answered within ``threshold`` seconds;
* ``error_rate`` — at most ``1 - target`` of the window's requests failed
  (errors + timeouts).

Each report updates ``slo_burn_rate{objective=...}`` gauges and a
``slo_breaches{objective=...}`` counter in the service registry, so the
Prometheus/JSON exports and the chaos harness see budget burn as ordinary
metrics. Burn rate is the usual SRE ratio: (bad fraction) / (budget
fraction) — 1.0 means burning exactly at budget, 10 means the budget is
gone in a tenth of the window.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.analytic.tiers import TIER_ANALYTIC, TIERS
from repro.errors import ServiceError
from repro.obs.registry import quantile_from_counts
from repro.service.metrics import ServiceMetrics

__all__ = [
    "SLOObjective",
    "SLOMonitor",
    "DEFAULT_OBJECTIVES",
    "parse_objectives",
    "merge_slo_reports",
]

#: Burn-rate ceiling reported when the budget is zero but failures exist
#: (keeps reports JSON-clean; infinity is not valid JSON).
BURN_CAP = 1e6


@dataclass(frozen=True)
class SLOObjective:
    """One objective: a target fraction of good events over the window.

    ``kind="latency"``: good = answered within ``threshold`` seconds
    (``tier=None`` judges the overall latency histogram, a tier name
    judges that rung only). ``kind="error_rate"``: good = not an
    error/timeout; ``threshold`` is unused.
    """

    name: str
    kind: str
    target: float
    threshold: Optional[float] = None
    tier: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate"):
            raise ServiceError(
                f"objective {self.name!r}: kind must be "
                f"latency|error_rate, got {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ServiceError(
                f"objective {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if self.kind == "latency":
            if self.threshold is None or self.threshold <= 0:
                raise ServiceError(
                    f"objective {self.name!r}: latency objectives need a "
                    f"positive threshold, got {self.threshold}"
                )
            if self.tier is not None and self.tier not in TIERS:
                raise ServiceError(
                    f"objective {self.name!r}: unknown tier {self.tier!r}; "
                    f"choose from {sorted(TIERS)}"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold": self.threshold,
            "tier": self.tier,
        }


#: Sensible defaults for the prediction service: the analytic rung must be
#: effectively instant, the overall service must answer within a second,
#: and at most 1 % of requests may fail.
DEFAULT_OBJECTIVES = (
    SLOObjective(
        name="latency.overall", kind="latency", target=0.95, threshold=1.0
    ),
    SLOObjective(
        name="latency.analytic",
        kind="latency",
        target=0.99,
        threshold=0.05,
        tier=TIER_ANALYTIC,
    ),
    SLOObjective(name="availability", kind="error_rate", target=0.99),
)


def parse_objectives(
    specs: Sequence[dict[str, Any]],
) -> tuple[SLOObjective, ...]:
    """Objectives from JSON config (``repro serve --slo-config``)."""
    objectives = []
    for spec in specs:
        unknown = set(spec) - {"name", "kind", "target", "threshold", "tier"}
        if unknown:
            raise ServiceError(
                f"unknown objective fields: {sorted(unknown)}"
            )
        try:
            objectives.append(
                SLOObjective(
                    name=str(spec["name"]),
                    kind=str(spec["kind"]),
                    target=float(spec["target"]),
                    threshold=(
                        float(spec["threshold"])
                        if spec.get("threshold") is not None
                        else None
                    ),
                    tier=spec.get("tier"),
                )
            )
        except KeyError as exc:
            raise ServiceError(
                f"objective missing field {exc.args[0]!r}"
            ) from None
    return tuple(objectives)


def _count_above(
    bounds: Sequence[float], counts: Sequence[int], threshold: float
) -> float:
    """Estimated number of bucketed samples strictly above ``threshold``.

    Buckets entirely above count fully; the straddling bucket contributes
    the log-space fraction of its width above the threshold (matching the
    quantile estimator's interpolation model).
    """
    above = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        lo = bounds[index - 1] if index > 0 else 0.0
        hi = bounds[index] if index < len(bounds) else float("inf")
        if lo >= threshold:
            above += count
        elif hi > threshold:
            if hi == float("inf"):
                above += count
            elif lo > 0:
                frac = (math.log(hi) - math.log(threshold)) / (
                    math.log(hi) - math.log(lo)
                )
                above += count * max(0.0, min(1.0, frac))
            else:
                above += count * max(
                    0.0, min(1.0, (hi - threshold) / (hi - lo))
                )
    return above


def _delta_counts(
    newest: dict[str, Any], oldest: Optional[dict[str, Any]]
) -> tuple[tuple[float, ...], list[int]]:
    bounds = newest["bounds"]
    if oldest is None:
        return bounds, list(newest["counts"])
    return bounds, [
        n - o for n, o in zip(newest["counts"], oldest["counts"])
    ]


class SLOMonitor:
    """Rolling SLO judgements over a window of metric snapshots."""

    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(
        self,
        metrics: ServiceMetrics,
        objectives: Sequence[SLOObjective] = DEFAULT_OBJECTIVES,
        window: int = 60,
    ):
        if window < 2:
            raise ServiceError(f"window must be >= 2, got {window}")
        self.metrics = metrics
        self.objectives = tuple(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate objective names in {names}")
        self._snapshots: deque = deque(maxlen=window)

    # -- snapshotting ------------------------------------------------------

    def _capture(self) -> dict[str, Any]:
        m = self.metrics
        return {
            "latency": m.latency.state(),
            "tiers": {
                tier: histogram.state()
                for tier, histogram in m.tier_latency.items()
            },
            "counters": {
                "requests": m.requests.value,
                "errors": m.errors.value,
                "timeouts": m.timeouts.value,
                "rejected": m.rejected.value,
                "degraded_rejects": m.degraded_rejects.value,
            },
        }

    # -- reporting ---------------------------------------------------------

    def observe(self) -> dict[str, Any]:
        """Take a snapshot and judge the window it closes.

        The window is [oldest retained snapshot, now]; the first call
        judges everything since the service started.
        """
        oldest = self._snapshots[0] if self._snapshots else None
        newest = self._capture()
        self._snapshots.append(newest)
        report = self._judge(newest, oldest)
        self._export(report)
        return report

    def _quantiles(
        self, newest_state: dict, oldest_state: Optional[dict]
    ) -> dict[str, Any]:
        bounds, counts = _delta_counts(newest_state, oldest_state)
        total = sum(counts)
        doc: dict[str, Any] = {"requests": total}
        for q in self.QUANTILES:
            key = f"p{int(q * 100)}"
            doc[key] = (
                quantile_from_counts(
                    bounds,
                    counts,
                    q,
                    newest_state["min"],
                    newest_state["max"],
                )
                if total
                else 0.0
            )
        return doc

    def _judge(
        self, newest: dict[str, Any], oldest: Optional[dict[str, Any]]
    ) -> dict[str, Any]:
        counters_now = newest["counters"]
        counters_then = (
            oldest["counters"] if oldest is not None else {}
        )
        window_counts = {
            key: value - counters_then.get(key, 0)
            for key, value in counters_now.items()
        }
        tiers = {
            tier: self._quantiles(
                state,
                oldest["tiers"].get(tier) if oldest is not None else None,
            )
            for tier, state in newest["tiers"].items()
        }
        overall = self._quantiles(
            newest["latency"],
            oldest["latency"] if oldest is not None else None,
        )
        judged = []
        breaches = 0
        for objective in self.objectives:
            verdict = self._judge_objective(objective, newest, oldest)
            judged.append(verdict)
            if not verdict["met"]:
                breaches += 1
        return {
            "window": {
                "snapshots": len(self._snapshots),
                **window_counts,
            },
            "overall": overall,
            "tiers": tiers,
            "objectives": judged,
            "breaches": breaches,
        }

    def _judge_objective(
        self,
        objective: SLOObjective,
        newest: dict[str, Any],
        oldest: Optional[dict[str, Any]],
    ) -> dict[str, Any]:
        if objective.kind == "latency":
            if objective.tier is None:
                newest_state = newest["latency"]
                oldest_state = (
                    oldest["latency"] if oldest is not None else None
                )
            else:
                newest_state = newest["tiers"][objective.tier]
                oldest_state = (
                    oldest["tiers"].get(objective.tier)
                    if oldest is not None
                    else None
                )
            bounds, counts = _delta_counts(newest_state, oldest_state)
            total = sum(counts)
            bad = _count_above(bounds, counts, objective.threshold)
        else:
            counters_then = oldest["counters"] if oldest is not None else {}
            total = newest["counters"]["requests"] - counters_then.get(
                "requests", 0
            )
            bad = sum(
                newest["counters"][key] - counters_then.get(key, 0)
                for key in ("errors", "timeouts")
            )
        good = max(0.0, total - bad)
        compliance = (good / total) if total else 1.0
        budget_fraction = 1.0 - objective.target
        bad_fraction = (bad / total) if total else 0.0
        burn = (
            min(bad_fraction / budget_fraction, BURN_CAP)
            if budget_fraction > 0
            else (0.0 if bad == 0 else BURN_CAP)
        )
        return {
            **objective.to_dict(),
            "total": total,
            "bad": round(bad, 3),
            "compliance": compliance,
            "burn_rate": burn,
            "met": compliance >= objective.target,
        }

    def _export(self, report: dict[str, Any]) -> None:
        """Mirror the judgement into the service registry as instruments."""
        registry = self.metrics.registry
        for verdict in report["objectives"]:
            labels = {"objective": verdict["name"]}
            registry.gauge("slo_burn_rate", **labels).set(
                verdict["burn_rate"]
            )
            registry.gauge("slo_compliance", **labels).set(
                verdict["compliance"]
            )
            if not verdict["met"]:
                registry.counter("slo_breaches", **labels).inc()


def _merge_quantiles(docs: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Fleet view of per-shard quantile docs: sum requests, max quantiles.

    Latency quantiles cannot be exactly merged from per-shard quantiles;
    the conservative fleet judgement takes the worst shard's value — a
    p99 SLO met by the max is met by every shard.
    """
    merged: dict[str, Any] = {"requests": sum(d["requests"] for d in docs)}
    for q in SLOMonitor.QUANTILES:
        key = f"p{int(q * 100)}"
        merged[key] = max((d.get(key, 0.0) for d in docs), default=0.0)
    return merged


def merge_slo_reports(
    reports: Mapping[str, dict[str, Any]],
) -> dict[str, Any]:
    """One fleet SLO judgement from per-shard :meth:`slo_report` docs.

    Window counters and objective good/bad totals sum across shards;
    quantiles take the per-shard maximum (conservative — see
    :func:`_merge_quantiles`); each merged objective is re-judged from
    the summed totals, so one overloaded shard can breach the fleet even
    while its siblings are healthy. The per-shard reports ride along
    under ``"shards"`` for drill-down.
    """
    if not reports:
        return {
            "window": {},
            "overall": {"requests": 0},
            "tiers": {},
            "objectives": [],
            "breaches": 0,
            "shards": {},
        }
    docs = list(reports.values())
    window: dict[str, Any] = {}
    for doc in docs:
        for key, value in doc["window"].items():
            window[key] = window.get(key, 0) + value
    tiers: dict[str, list] = {}
    for doc in docs:
        for tier, qdoc in doc["tiers"].items():
            tiers.setdefault(tier, []).append(qdoc)
    merged_objectives = []
    breaches = 0
    by_name: dict[str, list[dict[str, Any]]] = {}
    for doc in docs:
        for verdict in doc["objectives"]:
            by_name.setdefault(verdict["name"], []).append(verdict)
    for name, verdicts in by_name.items():
        first = verdicts[0]
        total = sum(v["total"] for v in verdicts)
        bad = sum(v["bad"] for v in verdicts)
        good = max(0.0, total - bad)
        compliance = (good / total) if total else 1.0
        budget = 1.0 - first["target"]
        bad_fraction = (bad / total) if total else 0.0
        burn = (
            min(bad_fraction / budget, BURN_CAP)
            if budget > 0
            else (0.0 if bad == 0 else BURN_CAP)
        )
        met = compliance >= first["target"]
        if not met:
            breaches += 1
        merged_objectives.append(
            {
                "name": name,
                "kind": first["kind"],
                "target": first["target"],
                "threshold": first["threshold"],
                "tier": first["tier"],
                "total": total,
                "bad": round(bad, 3),
                "compliance": compliance,
                "burn_rate": burn,
                "met": met,
            }
        )
    return {
        "window": window,
        "overall": _merge_quantiles([d["overall"] for d in docs]),
        "tiers": {
            tier: _merge_quantiles(qdocs) for tier, qdocs in tiers.items()
        },
        "objectives": merged_objectives,
        "breaches": breaches,
        "shards": dict(reports),
    }
