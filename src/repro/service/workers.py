"""Worker pool and the cell task the workers execute.

The expensive part of a prediction is the discrete-event simulation of the
measurement protocol (isolated kernels, chain windows, one-shots) plus the
full application run. :func:`execute_cell` packages exactly that work for
one (benchmark, class, nprocs) cell; :class:`WorkerPool` runs cells in
parallel on a bounded ``concurrent.futures`` pool, rejecting new work with
a retry-after hint once the queue is full (backpressure instead of
unbounded buffering).

``execute_cell`` is a module-level function over picklable dataclasses so
the pool can be process-based (``kind="process"``); with processes the
persistent tier must be a database *file* (``db_path``) — each worker opens
its own connection, and ``INSERT OR IGNORE`` semantics in
:class:`~repro.instrument.database.PerformanceDatabase` make concurrent
writers safe.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.predictor import PredictionInputs
from repro.errors import ServiceClosedError, ServiceError, ServiceSaturatedError
from repro.instrument.database import PerformanceDatabase
from repro.instrument.runner import ApplicationRunner, Measurement, MeasurementConfig
from repro.instrument.sweeps import Campaign, CampaignPlan
from repro.service.cache import ACTUAL_KEY
from repro.simmachine.machine import MachineConfig

__all__ = ["CellTask", "CellOutcome", "execute_cell", "WorkerPool"]


@dataclass(frozen=True)
class CellTask:
    """One unit of worker-pool work: measure a single sweep cell."""

    plan: CampaignPlan
    machine: MachineConfig
    measurement: MeasurementConfig
    application_seed: int = 7
    db_path: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.plan.configurations()) != 1:
            raise ServiceError(
                "a cell task needs a single-cell plan; "
                f"got {len(self.plan.configurations())} cells"
            )


@dataclass(frozen=True)
class CellOutcome:
    """What a worker hands back: inputs + actual + work accounting."""

    benchmark: str
    problem_class: str
    nprocs: int
    inputs: PredictionInputs
    actual: float
    simulations: int
    reused: int


def execute_cell(
    task: CellTask, database: Optional[PerformanceDatabase] = None
) -> CellOutcome:
    """Measure one cell through the persistent tier.

    Thread pools pass the service's shared ``database``; process pools leave
    it ``None`` and the worker opens ``task.db_path`` itself. A fully
    archived cell runs zero simulations — the campaign memoization *is* the
    L2 cache replay.
    """
    # NB: PerformanceDatabase defines __len__, so an empty one is falsy —
    # the `is None` test (not truthiness) picks the shared instance.
    owns_database = database is None
    db = (
        PerformanceDatabase(task.db_path or ":memory:")
        if database is None
        else database
    )
    try:
        campaign = Campaign(
            plan=task.plan,
            machine=task.machine,
            measurement=task.measurement,
            database=db,
        )
        (problem_class, nprocs) = task.plan.configurations()[0]
        inputs = campaign.run_configuration(problem_class, nprocs)
        simulations = campaign.measurements_run
        reused = campaign.measurements_reused
        benchmark = task.plan.benchmark
        cached_actual = db.get(benchmark, problem_class, nprocs, ACTUAL_KEY)
        if cached_actual is not None:
            actual = cached_actual.mean
            reused += 1
        else:
            bench_run = ApplicationRunner(
                campaign_benchmark(benchmark, problem_class, nprocs),
                task.machine,
                seed=task.application_seed,
            ).run()
            actual = bench_run.total_time
            db.store_if_absent(
                Measurement(
                    benchmark=benchmark,
                    problem_class=problem_class,
                    nprocs=nprocs,
                    kernels=ACTUAL_KEY,
                    samples=(actual,),
                    overhead=0.0,
                )
            )
            simulations += 1
        return CellOutcome(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            inputs=inputs,
            actual=actual,
            simulations=simulations,
            reused=reused,
        )
    finally:
        if owns_database:
            db.close()


def campaign_benchmark(benchmark: str, problem_class: str, nprocs: int):
    """Build the benchmark object a cell task refers to."""
    from repro.npb import make_benchmark

    return make_benchmark(benchmark, problem_class, nprocs)


class WorkerPool:
    """Bounded ``concurrent.futures`` pool with reject-on-saturation.

    ``queue_depth`` caps *outstanding* (queued + running) cells; a submit
    beyond that raises
    :class:`~repro.errors.ServiceSaturatedError` carrying a retry-after
    estimate instead of queueing unboundedly. ``kind`` selects
    ``"thread"`` (default — shares the in-process database),
    ``"process"`` (true parallel simulation; needs a file database), or
    ``"inline"`` (synchronous, for debugging and deterministic tests).
    """

    def __init__(
        self,
        max_workers: int = 2,
        queue_depth: int = 8,
        kind: str = "thread",
        retry_after: Union[float, Callable[[], float]] = 1.0,
    ):
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if queue_depth < 1:
            raise ServiceError(f"queue_depth must be >= 1, got {queue_depth}")
        if kind not in ("thread", "process", "inline"):
            raise ServiceError(
                f"worker kind must be thread/process/inline, got {kind!r}"
            )
        self.kind = kind
        self.max_workers = max_workers
        self.queue_depth = queue_depth
        self._retry_after = retry_after
        self._outstanding = 0
        self._lock = threading.Lock()
        self._closed = False
        if kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-service"
            )
        elif kind == "process":
            self._executor = ProcessPoolExecutor(max_workers=max_workers)
        else:
            self._executor = None

    @property
    def outstanding(self) -> int:
        """Cells queued or running right now."""
        return self._outstanding

    @property
    def saturated(self) -> bool:
        return self._outstanding >= self.queue_depth

    def retry_after_hint(self) -> float:
        """Seconds a rejected client should wait before retrying."""
        hint = self._retry_after
        return float(hint() if callable(hint) else hint)

    def submit(self, fn: Callable, *args) -> Future:
        """Run ``fn(*args)`` on the pool; reject when saturated/closed."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("worker pool is shut down")
            if self._outstanding >= self.queue_depth:
                raise ServiceSaturatedError(
                    f"worker queue full ({self._outstanding} outstanding, "
                    f"depth {self.queue_depth})",
                    retry_after=self.retry_after_hint(),
                )
            self._outstanding += 1

        def _release(_fut: Future) -> None:
            with self._lock:
                self._outstanding -= 1

        if self._executor is None:  # inline
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 — relayed via future
                future.set_exception(exc)
            _release(future)
            return future
        future = self._executor.submit(fn, *args)
        future.add_done_callback(_release)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running cells."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
