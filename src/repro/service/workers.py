"""Worker pool and the cell task the workers execute.

The expensive part of a prediction is the discrete-event simulation of the
measurement protocol (isolated kernels, chain windows, one-shots) plus the
full application run. :func:`execute_cell` packages exactly that work for
one (benchmark, class, nprocs) cell; :class:`WorkerPool` runs cells in
parallel on a bounded ``concurrent.futures`` pool, rejecting new work with
a retry-after hint once the queue is full (backpressure instead of
unbounded buffering).

``execute_cell`` is a module-level function over picklable dataclasses so
the pool can be process-based (``kind="process"``); with processes the
persistent tier must be a database *file* (``db_path``) — each worker opens
its own connection, and ``INSERT OR IGNORE`` semantics in
:class:`~repro.instrument.database.PerformanceDatabase` make concurrent
writers safe.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro import faults, obs
from repro.core.predictor import PredictionInputs
from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceSaturatedError,
    WorkerCrashError,
)
from repro.instrument.database import PerformanceDatabase
from repro.instrument.runner import ApplicationRunner, Measurement, MeasurementConfig
from repro.instrument.sweeps import Campaign, CampaignPlan
from repro.service.cache import ACTUAL_KEY
from repro.simmachine.machine import MachineConfig

__all__ = ["CellTask", "CellOutcome", "execute_cell", "WorkerPool"]


@dataclass(frozen=True)
class CellTask:
    """One unit of worker-pool work: measure a single sweep cell."""

    plan: CampaignPlan
    machine: MachineConfig
    measurement: MeasurementConfig
    application_seed: int = 7
    db_path: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.plan.configurations()) != 1:
            raise ServiceError(
                "a cell task needs a single-cell plan; "
                f"got {len(self.plan.configurations())} cells"
            )


@dataclass(frozen=True)
class CellOutcome:
    """What a worker hands back: inputs + actual + work accounting."""

    benchmark: str
    problem_class: str
    nprocs: int
    inputs: PredictionInputs
    actual: float
    simulations: int
    reused: int


def execute_cell(
    task: CellTask, database: Optional[PerformanceDatabase] = None
) -> CellOutcome:
    """Measure one cell through the persistent tier.

    Thread pools pass the service's shared ``database``; process pools leave
    it ``None`` and the worker opens ``task.db_path`` itself. A fully
    archived cell runs zero simulations — the campaign memoization *is* the
    L2 cache replay.
    """
    stall = faults.check("worker.cell.stall")
    if stall is not None:
        time.sleep(stall.param)
    if faults.check("worker.cell.crash") is not None:
        raise WorkerCrashError("injected worker crash (worker.cell.crash)")
    # NB: PerformanceDatabase defines __len__, so an empty one is falsy —
    # the `is None` test (not truthiness) picks the shared instance.
    owns_database = database is None
    db = (
        PerformanceDatabase(task.db_path or ":memory:")
        if database is None
        else database
    )
    try:
        campaign = Campaign(
            plan=task.plan,
            machine=task.machine,
            measurement=task.measurement,
            database=db,
        )
        (problem_class, nprocs) = task.plan.configurations()[0]
        inputs = campaign.run_configuration(problem_class, nprocs)
        simulations = campaign.measurements_run
        reused = campaign.measurements_reused
        benchmark = task.plan.benchmark
        cached_actual = db.get(benchmark, problem_class, nprocs, ACTUAL_KEY)
        if cached_actual is not None:
            actual = cached_actual.mean
            reused += 1
        else:
            bench_run = ApplicationRunner(
                campaign_benchmark(benchmark, problem_class, nprocs),
                task.machine,
                seed=task.application_seed,
            ).run()
            actual = bench_run.total_time
            db.store_if_absent(
                Measurement(
                    benchmark=benchmark,
                    problem_class=problem_class,
                    nprocs=nprocs,
                    kernels=ACTUAL_KEY,
                    samples=(actual,),
                    overhead=0.0,
                )
            )
            simulations += 1
        return CellOutcome(
            benchmark=benchmark,
            problem_class=problem_class,
            nprocs=nprocs,
            inputs=inputs,
            actual=actual,
            simulations=simulations,
            reused=reused,
        )
    finally:
        if owns_database:
            db.close()


def campaign_benchmark(benchmark: str, problem_class: str, nprocs: int):
    """Build the benchmark object a cell task refers to."""
    from repro.npb import make_benchmark

    return make_benchmark(benchmark, problem_class, nprocs)


class WorkerPool:
    """Bounded ``concurrent.futures`` pool with reject-on-saturation.

    ``queue_depth`` caps *outstanding* (queued + running) cells; a submit
    beyond that raises
    :class:`~repro.errors.ServiceSaturatedError` carrying a retry-after
    estimate instead of queueing unboundedly. ``kind`` selects
    ``"thread"`` (default — shares the in-process database),
    ``"process"`` (true parallel simulation; needs a file database), or
    ``"inline"`` (synchronous, for debugging and deterministic tests).

    **Worker death.** A task failing with
    :class:`~repro.errors.WorkerCrashError` (or an executor breaking
    outright, e.g. a killed worker process) counts as a worker death: the
    pool records a respawn (recreating a broken executor in place), and
    after ``crash_threshold`` *consecutive* deaths declares itself
    unhealthy (:attr:`healthy` — the engine's degraded-mode signal). Any
    successfully completed task restores health.
    """

    def __init__(
        self,
        max_workers: int = 2,
        queue_depth: int = 8,
        kind: str = "thread",
        retry_after: Union[float, Callable[[], float]] = 1.0,
        crash_threshold: int = 3,
    ):
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if queue_depth < 1:
            raise ServiceError(f"queue_depth must be >= 1, got {queue_depth}")
        if kind not in ("thread", "process", "inline"):
            raise ServiceError(
                f"worker kind must be thread/process/inline, got {kind!r}"
            )
        if crash_threshold < 1:
            raise ServiceError(
                f"crash_threshold must be >= 1, got {crash_threshold}"
            )
        self.kind = kind
        self.max_workers = max_workers
        self.queue_depth = queue_depth
        self.crash_threshold = crash_threshold
        self._retry_after = retry_after
        self._outstanding = 0
        self._lock = threading.Lock()
        self._closed = False
        self._consecutive_crashes = 0
        self._crashes = 0
        self._respawns = 0
        self._executor = self._make_executor()

    def _make_executor(self):
        if self.kind == "thread":
            return ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-service",
            )
        if self.kind == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return None

    @property
    def outstanding(self) -> int:
        """Cells queued or running right now."""
        return self._outstanding

    @property
    def saturated(self) -> bool:
        return self._outstanding >= self.queue_depth

    @property
    def healthy(self) -> bool:
        """False once ``crash_threshold`` consecutive workers have died."""
        return self._consecutive_crashes < self.crash_threshold

    @property
    def respawns(self) -> int:
        """Workers replaced after dying (also ``worker_respawns`` in obs)."""
        return self._respawns

    @property
    def crashes(self) -> int:
        """Total worker deaths observed."""
        return self._crashes

    @property
    def consecutive_crashes(self) -> int:
        return self._consecutive_crashes

    def _note_outcome(self, future: Future) -> None:
        """Health bookkeeping from a finished task (runs in _release)."""
        if future.cancelled():
            return
        exc = future.exception()
        if isinstance(exc, (WorkerCrashError, BrokenExecutor)):
            self._record_crash()
        elif exc is None:
            with self._lock:
                self._consecutive_crashes = 0

    def _record_crash(self) -> None:
        """One worker died: respawn it and update the health state."""
        with self._lock:
            self._crashes += 1
            self._consecutive_crashes += 1
            self._respawns += 1
            if (
                not self._closed
                and self._executor is not None
                and getattr(self._executor, "_broken", False)
            ):
                # A broken executor (killed worker process) cannot run
                # further tasks — replace it wholesale. Thread workers
                # survive exceptions, so only the accounting applies.
                try:
                    self._executor.shutdown(wait=False)
                except Exception:  # pragma: no cover — best effort
                    pass
                self._executor = self._make_executor()
            unhealthy = self._consecutive_crashes >= self.crash_threshold
        obs.get_registry().counter("worker_respawns").inc()
        obs.log(
            "pool.worker_respawn",
            consecutive=self._consecutive_crashes,
            healthy=not unhealthy,
        )

    def retry_after_hint(self) -> float:
        """Seconds a rejected client should wait before retrying."""
        hint = self._retry_after
        return float(hint() if callable(hint) else hint)

    def submit(self, fn: Callable, *args) -> Future:
        """Run ``fn(*args)`` on the pool; reject when saturated/closed."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("worker pool is shut down")
            if self._outstanding >= self.queue_depth:
                raise ServiceSaturatedError(
                    f"worker queue full ({self._outstanding} outstanding, "
                    f"depth {self.queue_depth})",
                    retry_after=self.retry_after_hint(),
                )
            executor = self._executor
            self._outstanding += 1

        def _release(fut: Future) -> None:
            with self._lock:
                self._outstanding -= 1
            self._note_outcome(fut)

        try:
            if faults.check("pool.submit.reject") is not None:
                raise ServiceSaturatedError(
                    "injected queue-full rejection (pool.submit.reject)",
                    retry_after=self.retry_after_hint(),
                )
            if executor is None:  # inline
                future: Future = Future()
                try:
                    future.set_result(fn(*args))
                except BaseException as exc:  # noqa: BLE001 — via future
                    future.set_exception(exc)
                _release(future)
                return future
            future = executor.submit(fn, *args)
        except BaseException:  # noqa: BLE001 — undo the reservation, re-raise
            with self._lock:
                self._outstanding -= 1
            raise
        future.add_done_callback(_release)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running cells."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
