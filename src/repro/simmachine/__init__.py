"""Discrete-event simulated parallel machine.

This subpackage is the hardware substrate of the reproduction: an
event-driven simulator (:mod:`repro.simmachine.engine`) on which simulated
ranks run as Python generators, a two-level cache / memory-hierarchy model
(:mod:`repro.simmachine.memory`) whose state persists *across kernels* —
the physical origin of kernel coupling — an interconnect model with
latency, bandwidth and contention (:mod:`repro.simmachine.network`), and a
seeded load-imbalance noise model (:mod:`repro.simmachine.noise`).

The machine presets (:func:`repro.simmachine.machine.ibm_sp_argonne`)
approximate the Argonne IBM SP used in the paper: 120 MHz P2SC processors
and a multistage switch.
"""

from repro.simmachine._backend import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.simmachine.machine import (
    CacheLevelConfig,
    MachineConfig,
    commodity_cluster_2002,
    NetworkConfig,
    ProcessorConfig,
    ibm_sp_argonne,
    linear_test_machine,
)
from repro.simmachine.memory import DataRegion, MemoryHierarchy, TouchResult
from repro.simmachine.network import NetworkModel
from repro.simmachine.noise import NoiseModel
from repro.simmachine.process import Machine, RankContext

__all__ = [
    "AllOf",
    "AnyOf",
    "CacheLevelConfig",
    "DataRegion",
    "Event",
    "Machine",
    "MachineConfig",
    "MemoryHierarchy",
    "NetworkConfig",
    "NetworkModel",
    "NoiseModel",
    "Process",
    "ProcessorConfig",
    "RankContext",
    "Simulator",
    "Timeout",
    "TouchResult",
    "commodity_cluster_2002",
    "ibm_sp_argonne",
    "linear_test_machine",
]
