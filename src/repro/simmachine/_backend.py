"""Engine backend selection: compiled extension or pure Python.

The discrete-event engine exists twice: the reference implementation in
:mod:`repro.simmachine.engine` (pure Python, always present) and the
optional compiled extension :mod:`repro.simmachine._cengine` (a C
implementation of the same classes, bit-identical by construction —
same IEEE-754 arithmetic order, same ``(time, seq)`` tie-breaking, same
exception types and messages).  This module picks one at import time
and every call site imports the engine classes from here, so the whole
stack — core, analytic ground truth, parallel workers, the serving
exact tier — transparently gets the fast engine when it is available.

Selection rules:

* ``REPRO_ENGINE`` unset or ``auto``: use the compiled extension if it
  imports, otherwise fall back to pure Python (``selected_by="auto"``);
* ``REPRO_ENGINE=pure``: always use the pure engine;
* ``REPRO_ENGINE=compiled``: require the extension; raise
  :class:`repro.errors.ConfigurationError` if it cannot be imported;
* any other value: :class:`repro.errors.ConfigurationError`.

Build the extension with ``REPRO_BUILD_EXT=1 python setup.py
build_ext --inplace`` (see DEVELOPMENT.md); a checkout without it is
fully functional on the pure backend.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigurationError

__all__ = [
    "AllOf",
    "AnyOf",
    "BACKEND_NAME",
    "Event",
    "Process",
    "SELECTED_BY",
    "Simulator",
    "Timeout",
    "backend_info",
]

if TYPE_CHECKING:
    # The static surface is the pure engine's; the compiled classes
    # mirror it exactly.  Typing against the reference implementation
    # keeps `mypy --strict` meaningful for every call site.
    from repro.simmachine.engine import (
        AllOf,
        AnyOf,
        Event,
        Process,
        Simulator,
        Timeout,
    )

    BACKEND_NAME: str = "pure"
    SELECTED_BY: str = "auto"
    _BUILD_INFO: Optional[dict[str, str]] = None
else:
    # Selection is configuration, not simulation: the env read happens
    # once at import, never inside the deterministic tiers' call paths.
    _requested = os.environ.get("REPRO_ENGINE")  # repro: ignore[REP010] — one-time backend selection, not simulation state

    def _import_compiled():
        from repro.simmachine import _cengine

        return _cengine

    if _requested in (None, "", "auto"):
        SELECTED_BY = "auto"
        try:
            _mod = _import_compiled()
            BACKEND_NAME = "compiled"
        except ImportError:
            from repro.simmachine import engine as _mod

            BACKEND_NAME = "pure"
    elif _requested == "pure":
        from repro.simmachine import engine as _mod

        BACKEND_NAME = "pure"
        SELECTED_BY = "env"
    elif _requested == "compiled":
        try:
            _mod = _import_compiled()
        except ImportError as exc:
            raise ConfigurationError(
                "REPRO_ENGINE=compiled but the compiled engine extension "
                "is not importable; build it with "
                "'REPRO_BUILD_EXT=1 python setup.py build_ext --inplace' "
                f"or unset REPRO_ENGINE ({exc})"
            ) from exc
        BACKEND_NAME = "compiled"
        SELECTED_BY = "env"
    else:
        raise ConfigurationError(
            f"invalid REPRO_ENGINE value {_requested!r}: "
            "expected 'pure', 'compiled', or 'auto'"
        )

    Event = _mod.Event
    Timeout = _mod.Timeout
    AllOf = _mod.AllOf
    AnyOf = _mod.AnyOf
    Process = _mod.Process
    Simulator = _mod.Simulator
    _BUILD_INFO = getattr(_mod, "BUILD_INFO", None)


def backend_info() -> dict[str, Any]:
    """Describe the selected engine backend (for ``repro doctor``)."""
    info: dict[str, Any] = {
        "backend": BACKEND_NAME,
        "selected_by": SELECTED_BY,
    }
    if _BUILD_INFO is not None:
        info["build"] = dict(_BUILD_INFO)
    return info
